"""Fetch-group arithmetic.

The PAP predictor is indexed with the fetch group address (FGA) as a
proxy for the load PC (Section 3.1.1), and up to two loads per fetch
group are predicted per cycle using FGA and FGA+1.  These helpers keep
that arithmetic in one place.
"""

from __future__ import annotations

INSTRUCTION_BYTES = 4
FETCH_GROUP_INSTRUCTIONS = 4          # 4-wide in-order front-end (Table 4)
FETCH_GROUP_BYTES = INSTRUCTION_BYTES * FETCH_GROUP_INSTRUCTIONS


def fetch_group_address(pc: int) -> int:
    """Address of the fetch group containing ``pc``."""
    return pc & ~(FETCH_GROUP_BYTES - 1)


def fetch_group_slot(pc: int) -> int:
    """Index of ``pc`` within its fetch group (0..3)."""
    return (pc & (FETCH_GROUP_BYTES - 1)) // INSTRUCTION_BYTES


def path_history_bit(pc: int) -> int:
    """The load-path history bit contributed by a load at ``pc``.

    Section 3.1: the least-significant non-zero bit of a 4-byte-aligned
    PC is bit 2, so that is the bit shifted into the load-path history
    register.
    """
    return (pc >> 2) & 1
