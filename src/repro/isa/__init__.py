"""ARM-like instruction-set model used by the trace-driven simulator.

The paper evaluates on ARMv7/ARMv8 binaries.  We do not interpret real
machine code; instead, workload generators emit :class:`Instruction`
records that carry everything the microarchitecture model needs: PC,
operation class, register operands, memory address/size, the values read
or written, and branch outcomes.

Multi-destination loads (LDP, LDM, VLD) are modelled explicitly because
the paper's ISA-specific VTAGE findings (Section 5.2.2) hinge on them.
"""

from repro.isa.instructions import (
    EXECUTION_LATENCY,
    Instruction,
    OpClass,
    is_memory_op,
    is_branch_op,
)
from repro.isa.registers import (
    NUM_GENERAL_REGS,
    NUM_VECTOR_REGS,
    REG_SP,
    REG_LR,
    RegisterFile,
    general_reg,
    vector_reg,
)
from repro.isa.fetch import (
    INSTRUCTION_BYTES,
    FETCH_GROUP_INSTRUCTIONS,
    FETCH_GROUP_BYTES,
    fetch_group_address,
    fetch_group_slot,
)

__all__ = [
    "EXECUTION_LATENCY",
    "Instruction",
    "OpClass",
    "is_memory_op",
    "is_branch_op",
    "NUM_GENERAL_REGS",
    "NUM_VECTOR_REGS",
    "REG_SP",
    "REG_LR",
    "RegisterFile",
    "general_reg",
    "vector_reg",
    "INSTRUCTION_BYTES",
    "FETCH_GROUP_INSTRUCTIONS",
    "FETCH_GROUP_BYTES",
    "fetch_group_address",
    "fetch_group_slot",
]
