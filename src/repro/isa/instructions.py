"""Dynamic instruction records.

An :class:`Instruction` is one *dynamic* instance in a trace.  Static
instructions are identified by their PC; dynamic instances of the same
static instruction share a PC but may differ in operands, addresses and
values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpClass(enum.IntEnum):
    """Coarse operation classes, enough to drive the timing model.

    The classes mirror the execution-lane taxonomy of the baseline core
    (Table 4): 2 lanes support load/store operations and 6 lanes are
    generic.  ``LOAD``/``STORE`` need a load-store lane; everything else
    runs on a generic lane.
    """

    ALU = 0
    MUL = 1
    DIV = 2
    FP = 3
    LOAD = 4
    STORE = 5
    BRANCH = 6          # conditional direct branch
    JUMP = 7            # unconditional direct branch
    CALL = 8            # direct call (pushes return address)
    RETURN = 9          # return (pops return address; indirect)
    INDIRECT = 10       # indirect branch (e.g. switch dispatch)
    BARRIER = 11        # memory barrier / fence
    ATOMIC = 12         # atomic or exclusive memory access
    NOP = 13


_MEMORY_OPS = frozenset({OpClass.LOAD, OpClass.STORE, OpClass.ATOMIC})
_BRANCH_OPS = frozenset(
    {OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RETURN, OpClass.INDIRECT}
)


def is_memory_op(op: OpClass) -> bool:
    """Return True for operations that touch memory."""
    return op in _MEMORY_OPS


def is_branch_op(op: OpClass) -> bool:
    """Return True for operations that redirect control flow."""
    return op in _BRANCH_OPS


# Execution latencies in cycles, keyed by operation class.  Loads take the
# cache-determined latency instead (the timing model asks the hierarchy).
EXECUTION_LATENCY: dict[OpClass, int] = {
    OpClass.ALU: 1,
    OpClass.MUL: 3,
    OpClass.DIV: 12,
    OpClass.FP: 4,
    OpClass.LOAD: 1,       # address-generation portion; cache adds the rest
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.CALL: 1,
    OpClass.RETURN: 1,
    OpClass.INDIRECT: 1,
    OpClass.BARRIER: 1,
    OpClass.ATOMIC: 2,
    OpClass.NOP: 1,
}


@dataclass(slots=True)
class Instruction:
    """One dynamic instruction.

    Attributes:
        pc: Byte address of the instruction (4-byte aligned).
        op: Operation class.
        srcs: Source register identifiers.
        dests: Destination register identifiers.  Loads may have several
            destinations (LDP has 2, LDM up to 16); each destination gets
            its own value in ``values``.
        mem_addr: Effective (base) memory address for memory operations,
            else ``None``.  Multi-destination loads read consecutive
            ``mem_size``-byte chunks starting here.
        mem_size: Bytes read/written *per destination register*.
        values: For a load, the value loaded into each destination (same
            order as ``dests``).  For a store, a single-element tuple with
            the stored value.  For other ops, the computed result (one per
            destination), used only for value-predictor bookkeeping.
        taken: Branch outcome, ``None`` for non-branches.
        target: Branch target PC when taken (or fall-through when not).
        is_vector: True for VLD-style 128-bit vector loads; a conventional
            value predictor must burn two 64-bit entries per value.
    """

    pc: int
    op: OpClass
    srcs: tuple[int, ...] = ()
    dests: tuple[int, ...] = ()
    mem_addr: int | None = None
    mem_size: int = 8
    values: tuple[int, ...] = ()
    taken: bool | None = None
    target: int | None = None
    is_vector: bool = False

    def __post_init__(self) -> None:
        if self.op == OpClass.LOAD:
            if self.mem_addr is None:
                raise ValueError("load requires a memory address")
            if len(self.values) != len(self.dests):
                raise ValueError(
                    "load needs one value per destination register "
                    f"(got {len(self.values)} values, {len(self.dests)} dests)"
                )
        if self.op == OpClass.STORE and self.mem_addr is None:
            raise ValueError("store requires a memory address")

    @property
    def is_load(self) -> bool:
        return self.op == OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op == OpClass.STORE

    @property
    def is_branch(self) -> bool:
        return is_branch_op(self.op)

    @property
    def num_dests(self) -> int:
        return len(self.dests)

    @property
    def footprint_bytes(self) -> int:
        """Total bytes touched in memory by this instruction."""
        if self.mem_addr is None:
            return 0
        return self.mem_size * max(1, len(self.dests)) if self.is_load else self.mem_size

    def value_prediction_slots(self) -> int:
        """How many 64-bit value-predictor entries this instruction needs.

        A conventional value predictor (Section 5.2.2) spends one entry per
        destination register, and two entries per 128-bit vector value.
        """
        per_dest = 2 if self.is_vector else 1
        return per_dest * len(self.dests)

    def loaded_addresses(self) -> tuple[int, ...]:
        """Addresses of each chunk a multi-destination load reads."""
        if self.mem_addr is None:
            return ()
        return tuple(
            self.mem_addr + i * self.mem_size for i in range(max(1, len(self.dests)))
        )
