"""Architectural register model.

We use a flat integer namespace: general-purpose registers are
``0..NUM_GENERAL_REGS-1`` (X0..X30 plus SP), vector registers follow.
The timing model only needs register identities for dependence tracking,
and the workload generators need a small interpreter-grade register file
to produce self-consistent values.
"""

from __future__ import annotations

NUM_GENERAL_REGS = 32
NUM_VECTOR_REGS = 32

REG_SP = 31          # stack pointer (by AArch64 convention, X31/SP)
REG_LR = 30          # link register (X30)

_VECTOR_BASE = NUM_GENERAL_REGS


def general_reg(index: int) -> int:
    """Identifier of general-purpose register ``Xindex``."""
    if not 0 <= index < NUM_GENERAL_REGS:
        raise ValueError(f"general register index out of range: {index}")
    return index


def vector_reg(index: int) -> int:
    """Identifier of vector register ``Vindex``."""
    if not 0 <= index < NUM_VECTOR_REGS:
        raise ValueError(f"vector register index out of range: {index}")
    return _VECTOR_BASE + index


def is_vector_reg(reg: int) -> bool:
    """True when ``reg`` names a vector register."""
    return reg >= _VECTOR_BASE


class RegisterFile:
    """Minimal architectural register file for workload generation.

    Values are Python ints truncated to 64 bits.  Reads of never-written
    registers return 0, matching a zeroed initial machine state.
    """

    _MASK = (1 << 64) - 1

    def __init__(self) -> None:
        self._values: dict[int, int] = {}

    def read(self, reg: int) -> int:
        return self._values.get(reg, 0)

    def write(self, reg: int, value: int) -> None:
        self._values[reg] = value & self._MASK

    def snapshot(self) -> dict[int, int]:
        """Copy of the current register state (for tests)."""
        return dict(self._values)
