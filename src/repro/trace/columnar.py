"""Struct-of-arrays trace representation.

A :class:`ColumnarTrace` stores the same information as a
:class:`~repro.trace.trace.Trace`, but as parallel ``array.array``
columns instead of one :class:`~repro.isa.Instruction` object per
dynamic instruction.  Two things fall out of that layout:

* the ``simulate()`` hot loop can read plain machine integers straight
  from the columns (no per-instruction attribute lookups, no object
  allocation) and only materialize an :class:`Instruction` *view* for
  the few instructions a prediction scheme actually inspects;
* fixed-size chunks of a columnar trace are cheap to concatenate and
  serialize, which is what lets workload generation and the v2 trace
  format stream million-instruction traces in bounded memory.

Ragged per-instruction fields (``srcs``, ``dests``, ``values``) use the
classic prefix-index encoding: ``srcs_index`` has ``n + 1`` entries and
instruction ``i``'s sources live in ``srcs[srcs_index[i]:
srcs_index[i + 1]]``.  Values may be up to 128 bits wide (vector
loads), so the flat value column is split into ``values_lo``/
``values_hi`` 64-bit halves sharing one index.

Scalar optional fields are flag-encoded (``flags`` bit layout below)
with ``0`` stored in the column when absent, so every column stays a
fixed-width numeric array.  Conversion is lossless both ways — the
hypothesis round-trip suite in ``tests/test_columnar.py`` pins that.

Columns do not have to be ``array.array``: any buffer exposing the
array read surface works, and :meth:`from_columns` accepts typed
``memoryview``\\ s — which is how :mod:`repro.trace.share` attaches a
trace zero-copy out of a shared-memory segment.  A view-backed trace is
read-only (``append``/``extend`` raise), but the whole simulate() read
surface — indexing, slicing, ``tolist()``, iteration — is identical,
and the golden suite's "shared" leg pins the outcomes bit-identical.

The module depends only on the stdlib ``array``; :func:`numpy_columns`
exposes zero-copy numpy views when numpy is importable.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Iterator

from repro.isa import Instruction, OpClass
from repro.trace.trace import Trace, TraceSummary

_MASK64 = (1 << 64) - 1

# flags bit layout (one byte per instruction)
F_MEM = 1          # mem_addr is present (column holds the address)
F_TARGET = 2       # target is present
F_VECTOR = 4       # is_vector
F_TAKEN_KNOWN = 8  # taken is not None
F_TAKEN = 16       # taken is True (only meaningful with F_TAKEN_KNOWN)

# OpClass reconstruction table: OpClass(v) walks the enum's value map on
# every call; indexing a tuple is one C-level operation.
OPCLASS_BY_VALUE: tuple[OpClass, ...] = tuple(
    OpClass(v) for v in sorted(op.value for op in OpClass)
)

# (attribute, typecode) in serialization order; itemsizes are validated
# by the v2 reader so a platform with exotic array widths fails loudly
# instead of mis-decoding.
COLUMNS: tuple[tuple[str, str], ...] = (
    ("pc", "Q"),
    ("op", "B"),
    ("flags", "B"),
    ("mem_addr", "Q"),
    ("mem_size", "I"),
    ("target", "Q"),
    ("srcs_index", "Q"),
    ("srcs", "I"),
    ("dests_index", "Q"),
    ("dests", "I"),
    ("values_index", "Q"),
    ("values_lo", "Q"),
    ("values_hi", "Q"),
)


def column_typecode(col) -> str:
    """The element typecode of a column: ``array.array`` or memoryview."""
    code = getattr(col, "typecode", None)
    if code is None:
        code = col.format       # typed memoryview (shared-memory attach)
    return code


class ColumnarTrace:
    """An ordered instruction sequence stored column-wise.

    Supports the read surface the simulator and profilers need
    (``name``, ``len``, iteration, ``instruction(i)``, ``summary()``)
    plus append/extend so it doubles as the chunk type for streaming
    generation and the v2 serializer.
    """

    __slots__ = tuple(name for name, _ in COLUMNS) + ("name", "_snapshots")

    def __init__(self, name: str, instructions: Iterable[Instruction] = ()) -> None:
        self.name = name
        self._snapshots = None
        self.pc = array("Q")
        self.op = array("B")
        self.flags = array("B")
        self.mem_addr = array("Q")
        self.mem_size = array("I")
        self.target = array("Q")
        self.srcs_index = array("Q", (0,))
        self.srcs = array("I")
        self.dests_index = array("Q", (0,))
        self.dests = array("I")
        self.values_index = array("Q", (0,))
        self.values_lo = array("Q")
        self.values_hi = array("Q")
        for inst in instructions:
            self.append(inst)

    # -- construction ----------------------------------------------------

    def append(self, inst: Instruction) -> None:
        self._check_writable()
        flags = 0
        if inst.mem_addr is not None:
            flags |= F_MEM
        if inst.target is not None:
            flags |= F_TARGET
        if inst.is_vector:
            flags |= F_VECTOR
        if inst.taken is not None:
            flags |= F_TAKEN_KNOWN
            if inst.taken:
                flags |= F_TAKEN
        self.pc.append(inst.pc)
        self.op.append(inst.op)
        self.flags.append(flags)
        self.mem_addr.append(inst.mem_addr if inst.mem_addr is not None else 0)
        self.mem_size.append(inst.mem_size)
        self.target.append(inst.target if inst.target is not None else 0)
        self.srcs.extend(inst.srcs)
        self.srcs_index.append(len(self.srcs))
        self.dests.extend(inst.dests)
        self.dests_index.append(len(self.dests))
        for v in inst.values:
            self.values_lo.append(v & _MASK64)
            self.values_hi.append((v >> 64) & _MASK64)
        self.values_index.append(len(self.values_lo))

    def extend(self, other: "ColumnarTrace") -> None:
        """Concatenate ``other``'s instructions (chunk reassembly)."""
        self._check_writable()
        src_base = self.srcs_index[-1]
        dst_base = self.dests_index[-1]
        val_base = self.values_index[-1]
        for col in ("pc", "op", "flags", "mem_addr", "mem_size", "target",
                    "srcs", "dests", "values_lo", "values_hi"):
            getattr(self, col).extend(getattr(other, col))
        # prefix indexes rebase onto this trace's flat lengths
        self.srcs_index.extend(src_base + x for x in other.srcs_index[1:])
        self.dests_index.extend(dst_base + x for x in other.dests_index[1:])
        self.values_index.extend(val_base + x for x in other.values_index[1:])

    def _check_writable(self) -> None:
        """Reject mutation of view-backed (attached) traces; drop memos.

        A trace attached out of a shared-memory segment holds read-only
        memoryviews — ``append`` on one would die deep inside with an
        ``AttributeError``; failing here names the actual contract.
        Mutation also invalidates the :meth:`snapshots` memo, so it is
        dropped before any column changes.
        """
        if not isinstance(self.pc, array):
            raise TypeError(
                f"ColumnarTrace {self.name!r} is read-only "
                f"(attached from a shared segment)"
            )
        self._snapshots = None

    @classmethod
    def from_trace(cls, trace: Trace) -> "ColumnarTrace":
        return cls(trace.name, trace.instructions)

    @classmethod
    def from_columns(cls, name: str, columns: dict) -> "ColumnarTrace":
        """Adopt pre-built columns: the v2 deserializer's entry point.

        Columns are normally ``array.array``\\ s; typed memoryviews
        (e.g. cast over a shared-memory segment) are accepted too and
        produce a read-only trace.
        """
        out = cls(name)
        n = len(columns["pc"])
        for attr, typecode in COLUMNS:
            col = columns[attr]
            if column_typecode(col) != typecode:
                raise ValueError(
                    f"column {attr!r}: expected typecode {typecode!r}, "
                    f"got {column_typecode(col)!r}"
                )
            setattr(out, attr, col)
        if len(columns["values_hi"]) != len(columns["values_lo"]):
            raise ValueError(
                f"values_hi length {len(columns['values_hi'])} != "
                f"values_lo length {len(columns['values_lo'])}"
            )
        flat_for_index = {
            "srcs_index": "srcs",
            "dests_index": "dests",
            "values_index": "values_lo",
        }
        for attr in ("srcs_index", "dests_index", "values_index"):
            idx = columns[attr]
            if len(idx) != n + 1 or idx[0] != 0:
                raise ValueError(f"column {attr!r}: malformed prefix index")
            flat = columns[flat_for_index[attr]]
            if idx[-1] != len(flat):
                raise ValueError(
                    f"column {attr!r}: final index {idx[-1]} != flat "
                    f"column length {len(flat)}"
                )
            prev = 0
            for x in idx:
                if x < prev:
                    raise ValueError(
                        f"column {attr!r}: prefix index not monotonic"
                    )
                prev = x
        return out

    # -- read surface ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.pc)

    def __iter__(self) -> Iterator[Instruction]:
        for i in range(len(self.pc)):
            yield self.instruction(i)

    def __getitem__(self, index: int) -> Instruction:
        return self.instruction(index)

    def instruction(self, i: int) -> Instruction:
        """Materialize instruction ``i`` as an :class:`Instruction` view.

        Hot path for the columnar simulate() loop (one view per
        predicted load), so it bypasses ``Instruction.__init__`` — the
        columns were populated from already-validated instructions, and
        ``__post_init__`` would re-check invariants the encoding cannot
        violate.
        """
        flags = self.flags[i]
        vs = self.values_index[i]
        ve = self.values_index[i + 1]
        lo = self.values_lo
        hi = self.values_hi
        inst = Instruction.__new__(Instruction)
        inst.pc = self.pc[i]
        inst.op = OPCLASS_BY_VALUE[self.op[i]]
        inst.srcs = tuple(self.srcs[self.srcs_index[i]:self.srcs_index[i + 1]])
        inst.dests = tuple(self.dests[self.dests_index[i]:self.dests_index[i + 1]])
        inst.mem_addr = self.mem_addr[i] if flags & F_MEM else None
        inst.mem_size = self.mem_size[i]
        inst.values = tuple(
            (hi[k] << 64) | lo[k] if hi[k] else lo[k] for k in range(vs, ve)
        )
        inst.taken = bool(flags & F_TAKEN) if flags & F_TAKEN_KNOWN else None
        inst.target = self.target[i] if flags & F_TARGET else None
        inst.is_vector = bool(flags & F_VECTOR)
        return inst

    def to_trace(self) -> Trace:
        return Trace(self.name, iter(self))

    def summary(self) -> TraceSummary:
        """Columnar twin of :meth:`Trace.summary` (same counts)."""
        return self.to_trace().summary()

    def snapshots(self) -> tuple:
        """Plain-list snapshots of every column, memoized per trace.

        The columnar simulate() loop indexes columns millions of times;
        ``array.array`` (and memoryview) indexing boxes a fresh int on
        every read, while a plain list returns the already-boxed
        object.  ``tolist()`` converts at C speed once — and because a
        trace is immutable for the duration of a sweep group, the
        lists are cached here so *every scheme* simulated over the same
        trace shares one conversion instead of paying it per run.
        Mutation (:meth:`append`/:meth:`extend`) drops the memo.

        Returns the columns in ``COLUMNS`` order as a tuple of lists.
        """
        snap = self._snapshots
        if snap is None:
            snap = tuple(getattr(self, attr).tolist() for attr, _ in COLUMNS)
            self._snapshots = snap
        return snap

    def numpy_columns(self) -> "dict[str, object]":
        """Zero-copy numpy views of every column (requires numpy)."""
        import numpy as np

        return {
            attr: np.frombuffer(getattr(self, attr), dtype=typecode)
            for attr, typecode in COLUMNS
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarTrace):
            return NotImplemented
        return self.name == other.name and all(
            getattr(self, attr) == getattr(other, attr) for attr, _ in COLUMNS
        )

    def __repr__(self) -> str:
        return f"ColumnarTrace({self.name!r}, {len(self)} instructions)"
