"""Trace container and summary statistics."""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.isa import Instruction, OpClass


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate counts over a trace."""

    name: str
    instructions: int
    loads: int
    stores: int
    branches: int
    multi_dest_loads: int
    vector_loads: int
    static_loads: int
    atomics: int = 0

    @property
    def load_fraction(self) -> float:
        return self.loads / self.instructions if self.instructions else 0.0


class Trace:
    """An ordered sequence of dynamic instructions.

    Traces are produced by the workload generators
    (:mod:`repro.workloads`) and consumed by the timing model, the
    predictors' standalone drivers, and the trace profilers.
    """

    def __init__(self, name: str, instructions: Iterable[Instruction]) -> None:
        self.name = name
        self.instructions: list[Instruction] = list(instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def loads(self) -> Iterator[tuple[int, Instruction]]:
        """Yield ``(dynamic_index, instruction)`` for every load."""
        for i, inst in enumerate(self.instructions):
            if inst.op == OpClass.LOAD:
                yield i, inst

    def stores(self) -> Iterator[tuple[int, Instruction]]:
        """Yield ``(dynamic_index, instruction)`` for every store."""
        for i, inst in enumerate(self.instructions):
            if inst.op == OpClass.STORE:
                yield i, inst

    def summary(self) -> TraceSummary:
        loads = stores = branches = multi = vec = atomics = 0
        static_load_pcs: set[int] = set()
        for inst in self.instructions:
            if inst.op == OpClass.LOAD:
                loads += 1
                static_load_pcs.add(inst.pc)
                if len(inst.dests) > 1:
                    multi += 1
                if inst.is_vector:
                    vec += 1
            elif inst.op == OpClass.STORE:
                stores += 1
            elif inst.op == OpClass.ATOMIC:
                # is_memory_op() counts atomics as memory traffic; the
                # summary must too, or ATOMIC-bearing traces under-report
                # their memory-op totals.
                atomics += 1
            elif inst.is_branch:
                branches += 1
        return TraceSummary(
            name=self.name,
            instructions=len(self.instructions),
            loads=loads,
            stores=stores,
            branches=branches,
            multi_dest_loads=multi,
            vector_loads=vec,
            static_loads=len(static_load_pcs),
            atomics=atomics,
        )
