"""Compact, line-oriented trace serialization.

The format is a plain-text header line followed by one line per
instruction.  It is intentionally simple: traces here are synthetic and
regenerable, so the serializer exists for caching and for interchange
with external tools, not as an archival format.

Line grammar (space-separated fields; ``-`` means absent)::

    pc op srcs dests mem_addr mem_size values taken target vector

``srcs``/``dests``/``values`` are comma-joined integers (or ``-``).
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.isa import Instruction, OpClass
from repro.trace.trace import Trace

_MAGIC = "repro-trace-v1"


def _join(items: tuple[int, ...]) -> str:
    return ",".join(str(i) for i in items) if items else "-"


def _split(field: str) -> tuple[int, ...]:
    return () if field == "-" else tuple(int(x) for x in field.split(","))


def _opt(field: str) -> int | None:
    return None if field == "-" else int(field)


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` in the v1 line format."""
    buf = io.StringIO()
    buf.write(f"{_MAGIC} {trace.name} {len(trace)}\n")
    for inst in trace:
        taken = "-" if inst.taken is None else ("1" if inst.taken else "0")
        target = "-" if inst.target is None else str(inst.target)
        mem_addr = "-" if inst.mem_addr is None else str(inst.mem_addr)
        buf.write(
            f"{inst.pc} {int(inst.op)} {_join(inst.srcs)} {_join(inst.dests)} "
            f"{mem_addr} {inst.mem_size} {_join(inst.values)} "
            f"{taken} {target} {1 if inst.is_vector else 0}\n"
        )
    Path(path).write_text(buf.getvalue())


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise ValueError(f"empty trace file: {path}")
    header = lines[0].split()
    if len(header) != 3 or header[0] != _MAGIC:
        raise ValueError(f"not a {_MAGIC} file: {path}")
    name, count = header[1], int(header[2])
    body = lines[1:]
    if len(body) != count:
        raise ValueError(
            f"trace {path} declares {count} instructions but has {len(body)}"
        )
    instructions = []
    for line in body:
        fields = line.split()
        if len(fields) != 10:
            raise ValueError(f"malformed trace line: {line!r}")
        taken_field = fields[7]
        instructions.append(
            Instruction(
                pc=int(fields[0]),
                op=OpClass(int(fields[1])),
                srcs=_split(fields[2]),
                dests=_split(fields[3]),
                mem_addr=_opt(fields[4]),
                mem_size=int(fields[5]),
                values=_split(fields[6]),
                taken=None if taken_field == "-" else taken_field == "1",
                target=_opt(fields[8]),
                is_vector=fields[9] == "1",
            )
        )
    return Trace(name, instructions)
