"""Trace serialization: v1 line format and v2 binary columnar format.

Two on-disk formats, one sniffing loader:

* **v1** (``repro-trace-v1``) — the original plain-text format: a header
  line followed by one line per instruction.  Kept for interchange and
  for old cache entries.  Reads and writes now stream line-by-line;
  the original implementation buffered the whole trace as one string on
  save *and* ``read_text().splitlines()`` on load, double-materializing
  O(trace) memory.

* **v2** (``repro-trace-v2``) — binary columnar: the header is followed
  by framed chunks, each chunk the raw little-endian bytes of a
  :class:`~repro.trace.columnar.ColumnarTrace`'s columns.  Both the
  writer and the reader work chunk-at-a-time, so a million-instruction
  trace round-trips within a bounded RSS envelope, and the writer
  accepts a chunk *iterator* so streamed workload generation can be
  serialized without ever holding the full trace.

v1 line grammar (space-separated fields; ``-`` means absent)::

    pc op srcs dests mem_addr mem_size values taken target vector

``srcs``/``dests``/``values`` are comma-joined integers (or ``-``).
"""

from __future__ import annotations

import struct
import sys
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.isa import Instruction, OpClass
from repro.trace.columnar import COLUMNS, ColumnarTrace
from repro.trace.trace import Trace

_MAGIC = "repro-trace-v1"
_MAGIC_V2 = b"repro-trace-v2\n"

# v2 framing: after the magic comes one header line
# ``<name> <itemsizes>\n`` (itemsizes as B:Q:I byte widths, validated on
# read), then chunks of ``<u32 count>`` + per-column ``<u64 nbytes> +
# raw bytes`` in COLUMNS order, a ``count == 0`` terminator, and a
# ``<u64 total>`` footer cross-checked against the chunk sum.
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_CHUNK_END = 0

DEFAULT_CHUNK_SIZE = 8192


def _join(items: tuple[int, ...]) -> str:
    return ",".join(str(i) for i in items) if items else "-"


def _split(field: str) -> tuple[int, ...]:
    return () if field == "-" else tuple(int(x) for x in field.split(","))


def _opt(field: str) -> int | None:
    return None if field == "-" else int(field)


def _format_line(inst: Instruction) -> str:
    taken = "-" if inst.taken is None else ("1" if inst.taken else "0")
    target = "-" if inst.target is None else str(inst.target)
    mem_addr = "-" if inst.mem_addr is None else str(inst.mem_addr)
    return (
        f"{inst.pc} {int(inst.op)} {_join(inst.srcs)} {_join(inst.dests)} "
        f"{mem_addr} {inst.mem_size} {_join(inst.values)} "
        f"{taken} {target} {1 if inst.is_vector else 0}\n"
    )


def _parse_line(line: str) -> Instruction:
    fields = line.split()
    if len(fields) != 10:
        raise ValueError(f"malformed trace line: {line!r}")
    taken_field = fields[7]
    return Instruction(
        pc=int(fields[0]),
        op=OpClass(int(fields[1])),
        srcs=_split(fields[2]),
        dests=_split(fields[3]),
        mem_addr=_opt(fields[4]),
        mem_size=int(fields[5]),
        values=_split(fields[6]),
        taken=None if taken_field == "-" else taken_field == "1",
        target=_opt(fields[8]),
        is_vector=fields[9] == "1",
    )


# -- v1 ------------------------------------------------------------------


def _save_trace_v1(trace: Trace | ColumnarTrace, path: str | Path) -> None:
    """Write the v1 line format, one line at a time (bounded memory)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"{_MAGIC} {trace.name} {len(trace)}\n")
        for inst in trace:
            fh.write(_format_line(inst))


def _iter_v1(path: str | Path) -> Iterator[Instruction]:
    """Yield instructions from a v1 file, validating the declared count."""
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline().split()
        if len(header) != 3 or header[0] != _MAGIC:
            raise ValueError(f"not a {_MAGIC} file: {path}")
        count = int(header[2])
        seen = 0
        for line in fh:
            if line.strip():
                yield _parse_line(line)
                seen += 1
        if seen != count:
            raise ValueError(
                f"trace {path} declares {count} instructions but has {seen}"
            )


def _v1_name(path: str | Path) -> str:
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline().split()
    if len(header) != 3 or header[0] != _MAGIC:
        raise ValueError(f"not a {_MAGIC} file: {path}")
    return header[1]


# -- v2 ------------------------------------------------------------------


def _column_bytes(col) -> bytes:
    if sys.byteorder == "little":
        return col.tobytes()
    swapped = col[:]
    swapped.byteswap()
    return swapped.tobytes()


def _chunks_of(source: Trace | ColumnarTrace, chunk_size: int) -> Iterator[ColumnarTrace]:
    """Slice any trace container into ColumnarTrace chunks.

    A :class:`ColumnarTrace` that already fits one chunk is yielded
    as-is: its columns *are* the wire format, so re-materializing an
    ``Instruction`` view per row just to append it into an identical
    container would cost ~10x the serialization itself (this is the
    path ``v2_bytes`` — and with it every fabric publish — takes).
    """
    if isinstance(source, ColumnarTrace) and len(source) <= chunk_size:
        if len(source):
            yield source
        return
    chunk = ColumnarTrace(source.name)
    for inst in source:
        chunk.append(inst)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = ColumnarTrace(source.name)
    if len(chunk):
        yield chunk


def _save_trace_v2(
    source: Trace | ColumnarTrace | Iterable[ColumnarTrace],
    path: str | Path,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> None:
    """Write the v2 binary columnar format, chunk by chunk.

    ``source`` may be a full trace (sliced into chunks here) or an
    iterator of :class:`ColumnarTrace` chunks — e.g. the generator from
    ``build_workload(..., stream=True)`` — in which case nothing larger
    than one chunk is ever resident.
    """
    with open(path, "wb") as fh:
        _write_v2(fh, source, chunk_size)


def _write_v2(fh, source, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
    """Stream the v2 byte layout into any binary file object."""
    name: str | None = None
    if isinstance(source, (Trace, ColumnarTrace)):
        # The name is known up front, so even a zero-instruction trace
        # serializes to a well-formed header + terminator + footer.
        name = source.name
        chunks: Iterable[ColumnarTrace] = _chunks_of(source, chunk_size)
    else:
        chunks = iter(source)
    total = 0
    wrote_header = False
    if name is not None:
        fh.write(_MAGIC_V2)
        fh.write(f"{name} {_platform_itemsizes()}\n".encode())
        wrote_header = True
    for chunk in chunks:
        if not wrote_header:
            fh.write(_MAGIC_V2)
            fh.write(f"{chunk.name} {_platform_itemsizes()}\n".encode())
            wrote_header = True
        n = len(chunk)
        if not n:
            continue
        total += n
        fh.write(_U32.pack(n))
        for attr, _ in COLUMNS:
            data = _column_bytes(getattr(chunk, attr))
            fh.write(_U64.pack(len(data)))
            fh.write(data)
    if not wrote_header:
        raise ValueError("cannot serialize an empty chunk stream (no name)")
    fh.write(_U32.pack(_CHUNK_END))
    fh.write(_U64.pack(total))


def _platform_itemsizes() -> str:
    from array import array

    return ":".join(
        str(array(tc).itemsize) for tc in sorted({tc for _, tc in COLUMNS})
    )


def v2_bytes(trace: Trace | ColumnarTrace) -> bytes:
    """The whole trace as one *single-chunk* v2 image, in memory.

    This is the payload :mod:`repro.trace.share` copies into a shared
    segment: exactly the on-disk v2 format, but with every column in
    one contiguous frame so :func:`map_v2_columns` can hand out
    zero-copy views.  Peak memory is one extra copy of the columns —
    fine for sweep-scale traces; stream to a file for anything bigger.
    """
    import io

    buf = io.BytesIO()
    _write_v2(buf, trace, chunk_size=max(1, len(trace)))
    return buf.getvalue()


def map_v2_columns(buf) -> tuple[str, int, dict[str, tuple[int, int]]]:
    """Column offsets of a single-chunk v2 image, without copying it.

    ``buf`` is any buffer holding bytes produced by :func:`v2_bytes`
    (a shared-memory segment, an mmap of a v2 file, plain bytes).
    Returns ``(name, count, {column: (offset, nbytes)})`` — the
    attacher casts ``memoryview(buf)[off:off + nbytes]`` per column,
    which only works losslessly on little-endian hosts (the byte order
    v2 is defined in), so big-endian platforms are rejected here the
    same way a mismatched itemsize is.

    Multi-chunk files are rejected: a shared segment is written as one
    frame precisely so its columns are contiguous.
    """
    if sys.byteorder != "little":
        raise ValueError(
            "zero-copy v2 column mapping requires a little-endian host"
        )
    view = memoryview(buf)
    magic_len = len(_MAGIC_V2)
    if bytes(view[:magic_len]) != _MAGIC_V2:
        raise ValueError("not a v2 trace image")
    # header line: "<name> <itemsizes>\n", bounded by the format
    head = bytes(view[magic_len:magic_len + 4096])
    nl = head.find(b"\n")
    if nl < 0:
        raise ValueError("malformed v2 image: unterminated header")
    parts = head[:nl].decode().split()
    if len(parts) != 2:
        raise ValueError(f"malformed v2 header: {head[:nl]!r}")
    name, itemsizes = parts
    if itemsizes != _platform_itemsizes():
        raise ValueError(
            f"v2 image written with array itemsizes {itemsizes}, "
            f"this platform has {_platform_itemsizes()}"
        )
    pos = magic_len + nl + 1
    count = _U32.unpack_from(view, pos)[0]
    pos += _U32.size
    offsets: dict[str, tuple[int, int]] = {}
    if count != _CHUNK_END:
        for attr, _ in COLUMNS:
            nbytes = _U64.unpack_from(view, pos)[0]
            pos += _U64.size
            offsets[attr] = (pos, nbytes)
            pos += nbytes
        terminator = _U32.unpack_from(view, pos)[0]
        if terminator != _CHUNK_END:
            raise ValueError(
                "v2 image has more than one chunk; shared segments are "
                "written single-chunk"
            )
        pos += _U32.size
    footer = _U64.unpack_from(view, pos)[0]
    if footer != count:
        raise ValueError(
            f"v2 image footer declares {footer} instructions, "
            f"chunk holds {count}"
        )
    return name, count, offsets


def _read_exact(fh, n: int) -> bytes:
    data = fh.read(n)
    if len(data) != n:
        raise ValueError(f"truncated v2 trace: wanted {n} bytes, got {len(data)}")
    return data


def iter_trace_chunks(
    path: str | Path, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[ColumnarTrace]:
    """Yield the chunks of a v2 trace file one at a time (bounded memory).

    For v1 files, re-chunks the line stream into ``chunk_size``-
    instruction columnar chunks, so callers get a uniform streaming
    interface over both formats.  (v2 files yield their on-disk chunk
    boundaries; ``chunk_size`` only shapes the v1 re-chunking.)
    """
    from array import array

    version = sniff_trace_format(path)
    if version == 1:
        name = _v1_name(path)
        chunk = ColumnarTrace(name)
        for inst in _iter_v1(path):
            chunk.append(inst)
            if len(chunk) >= chunk_size:
                yield chunk
                chunk = ColumnarTrace(name)
        if len(chunk):
            yield chunk
        return

    expected_sizes = {tc: array(tc).itemsize for _, tc in COLUMNS}
    with open(path, "rb") as fh:
        _read_exact(fh, len(_MAGIC_V2))
        header = fh.readline().decode()
        parts = header.split()
        if len(parts) != 2:
            raise ValueError(f"malformed v2 header in {path}: {header!r}")
        name, itemsizes = parts
        declared = ":".join(
            str(expected_sizes[tc]) for tc in sorted(expected_sizes)
        )
        if itemsizes != declared:
            raise ValueError(
                f"v2 trace {path} written with array itemsizes {itemsizes}, "
                f"this platform has {declared}"
            )
        total = 0
        while True:
            n = _U32.unpack(_read_exact(fh, 4))[0]
            if n == _CHUNK_END:
                break
            columns: dict[str, array] = {}
            for attr, typecode in COLUMNS:
                nbytes = _U64.unpack(_read_exact(fh, 8))[0]
                col = array(typecode)
                col.frombytes(_read_exact(fh, nbytes))
                if sys.byteorder != "little":
                    col.byteswap()
                columns[attr] = col
            chunk = ColumnarTrace.from_columns(name, columns)
            if len(chunk) != n:
                raise ValueError(
                    f"v2 chunk in {path} declares {n} instructions, "
                    f"columns hold {len(chunk)}"
                )
            total += n
            yield chunk
        footer = _U64.unpack(_read_exact(fh, 8))[0]
        if footer != total:
            raise ValueError(
                f"v2 trace {path} footer declares {footer} instructions, "
                f"chunks held {total}"
            )


def sniff_trace_format(path: str | Path) -> int:
    """Return the on-disk format version (1 or 2) of a trace file."""
    with open(path, "rb") as fh:
        head = fh.read(len(_MAGIC_V2))
    if head == _MAGIC_V2:
        return 2
    if head.startswith(_MAGIC.encode()):
        return 1
    raise ValueError(f"not a repro trace file: {path}")


# -- public API ----------------------------------------------------------


def save_trace(
    trace: Trace | ColumnarTrace | Iterable[ColumnarTrace],
    path: str | Path,
    format: str = "v1",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> None:
    """Write ``trace`` to ``path``.

    ``format`` selects ``"v1"`` (line text) or ``"v2"`` (binary
    columnar).  Chunk iterators (streamed generation) require v2.
    """
    if format == "v1":
        if not isinstance(trace, (Trace, ColumnarTrace)):
            raise ValueError("v1 serialization needs a full trace, not a chunk stream")
        _save_trace_v1(trace, path)
    elif format == "v2":
        _save_trace_v2(trace, path, chunk_size)
    else:
        raise ValueError(f"unknown trace format: {format!r}")


def _v2_name(path: str | Path) -> str:
    """Read just the trace name from a v2 header (no chunk decoding)."""
    with open(path, "rb") as fh:
        _read_exact(fh, len(_MAGIC_V2))
        header = fh.readline().decode()
    parts = header.split()
    if len(parts) != 2:
        raise ValueError(f"malformed v2 header in {path}: {header!r}")
    return parts[0]


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace` (either format)."""
    if sniff_trace_format(path) == 1:
        return Trace(_v1_name(path), _iter_v1(path))
    # name comes from the header, not the chunks, so a valid
    # zero-instruction file keeps its identity
    name = _v2_name(path)
    instructions: list[Instruction] = []
    for chunk in iter_trace_chunks(path):
        instructions.extend(chunk)
    return Trace(name, instructions)


def load_trace_columnar(path: str | Path) -> ColumnarTrace:
    """Read a trace file (either format) into a :class:`ColumnarTrace`."""
    out: ColumnarTrace | None = None
    for chunk in iter_trace_chunks(path):
        if out is None:
            out = chunk
        else:
            out.extend(chunk)
    if out is None:
        # zero-instruction (but valid) trace: recover the name via the
        # full loader
        return ColumnarTrace.from_trace(load_trace(path))
    return out
