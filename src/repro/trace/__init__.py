"""Dynamic instruction traces and trace-level analyses.

The paper's Figures 1 and 2 are properties of the workloads themselves
(load-store conflict mix and address/value repeatability); they are
computed here directly from traces, independent of any predictor.
"""

from repro.trace.trace import Trace, TraceSummary
from repro.trace.profiling import (
    ConflictProfile,
    RepeatabilityProfile,
    load_store_conflicts,
    repeatability,
)
from repro.trace.serialization import load_trace, save_trace

__all__ = [
    "Trace",
    "TraceSummary",
    "ConflictProfile",
    "RepeatabilityProfile",
    "load_store_conflicts",
    "repeatability",
    "load_trace",
    "save_trace",
]
