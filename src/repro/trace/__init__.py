"""Dynamic instruction traces and trace-level analyses.

The paper's Figures 1 and 2 are properties of the workloads themselves
(load-store conflict mix and address/value repeatability); they are
computed here directly from traces, independent of any predictor.

Two trace containers share one read surface: :class:`Trace` (a list of
:class:`~repro.isa.Instruction` objects) and :class:`ColumnarTrace`
(struct-of-arrays, the simulator's fast path).  Conversion between them
is lossless; serialization speaks both the v1 line format and the v2
binary columnar format.
"""

from repro.trace.trace import Trace, TraceSummary
from repro.trace.columnar import ColumnarTrace
from repro.trace.profiling import (
    ConflictProfile,
    RepeatabilityProfile,
    load_store_conflicts,
    repeatability,
)
from repro.trace.serialization import (
    iter_trace_chunks,
    load_trace,
    load_trace_columnar,
    map_v2_columns,
    save_trace,
    sniff_trace_format,
    v2_bytes,
)
from repro.trace.share import (
    TraceHandle,
    TraceStore,
    attach,
    gc_orphans,
    shm_available,
)

__all__ = [
    "Trace",
    "TraceSummary",
    "ColumnarTrace",
    "ConflictProfile",
    "RepeatabilityProfile",
    "load_store_conflicts",
    "repeatability",
    "iter_trace_chunks",
    "load_trace",
    "load_trace_columnar",
    "map_v2_columns",
    "save_trace",
    "sniff_trace_format",
    "v2_bytes",
    "TraceHandle",
    "TraceStore",
    "attach",
    "gc_orphans",
    "shm_available",
]
