"""Trace-level analyses behind the paper's motivation figures.

``load_store_conflicts`` reproduces Figure 1: the fraction of dynamic
loads whose value was produced by a store executed since the prior
dynamic instance of that same static load, split into *committed* and
*in-flight* conflicting stores.  The paper reports that about two thirds
of such conflicts involve already-committed stores — exactly the ones
DLVP neutralises by reading the data cache instead of a stale predictor
table.

``repeatability`` reproduces Figure 2: for each dynamic load, how many
times its address (or value) is observed for that static load over the
whole trace.  The paper's headline statistics: 91% of loads have
addresses repeating >= 8 times while only 80% have values repeating
>= 64 times, which is why an address predictor can afford a much lower
confidence threshold.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.trace.trace import Trace

_WORD_BYTES = 4


def _touched_words(addr: int, nbytes: int) -> range:
    """Aligned 4-byte word indices covered by ``[addr, addr + nbytes)``."""
    first = addr // _WORD_BYTES
    last = (addr + max(1, nbytes) - 1) // _WORD_BYTES
    return range(first, last + 1)


@dataclass(frozen=True)
class ConflictProfile:
    """Figure 1 numbers for one trace.

    Fractions are of *dynamic loads that have a prior dynamic instance*;
    first-occurrence loads cannot conflict by the paper's definition and
    are excluded from the denominator of the conflict split but included
    in ``total_loads``.
    """

    name: str
    total_loads: int
    repeat_loads: int
    conflict_committed: int
    conflict_inflight: int

    @property
    def conflicts(self) -> int:
        return self.conflict_committed + self.conflict_inflight

    @property
    def fraction_conflicting(self) -> float:
        """Fraction of all dynamic loads that conflict with any store."""
        return self.conflicts / self.total_loads if self.total_loads else 0.0

    @property
    def fraction_committed(self) -> float:
        """Fraction of all dynamic loads conflicting with committed stores."""
        return self.conflict_committed / self.total_loads if self.total_loads else 0.0

    @property
    def fraction_inflight(self) -> float:
        """Fraction of all dynamic loads conflicting with in-flight stores."""
        return self.conflict_inflight / self.total_loads if self.total_loads else 0.0

    @property
    def committed_share(self) -> float:
        """Share of conflicts attributable to committed stores (paper: ~67%)."""
        return self.conflict_committed / self.conflicts if self.conflicts else 0.0


def load_store_conflicts(trace: Trace, window: int = 224) -> ConflictProfile:
    """Classify every dynamic load by conflicting-store recency.

    Args:
        trace: The trace to profile.
        window: Instruction-window size separating *in-flight* from
            *committed* conflicting stores.  A store within ``window``
            dynamic instructions before the load is considered still in
            the pipeline when the load is fetched (the paper's baseline
            has a 224-entry ROB).

    Returns:
        A :class:`ConflictProfile` with the Figure 1 breakdown.
    """
    last_load_index: dict[int, int] = {}
    last_store_index: dict[int, int] = {}
    total = repeats = committed = inflight = 0

    for i, inst in enumerate(trace):
        if inst.is_store:
            assert inst.mem_addr is not None
            for word in _touched_words(inst.mem_addr, inst.mem_size):
                last_store_index[word] = i
            continue
        if not inst.is_load:
            continue
        total += 1
        assert inst.mem_addr is not None
        prior = last_load_index.get(inst.pc)
        last_load_index[inst.pc] = i
        if prior is None:
            continue
        repeats += 1
        newest_store = -1
        for word in _touched_words(inst.mem_addr, inst.footprint_bytes):
            newest_store = max(newest_store, last_store_index.get(word, -1))
        if newest_store <= prior:
            continue
        if i - newest_store <= window:
            inflight += 1
        else:
            committed += 1

    return ConflictProfile(
        name=trace.name,
        total_loads=total,
        repeat_loads=repeats,
        conflict_committed=committed,
        conflict_inflight=inflight,
    )


@dataclass(frozen=True)
class RepeatabilityProfile:
    """Figure 2 numbers for one trace.

    ``address_buckets[k]`` / ``value_buckets[k]`` count dynamic loads
    whose address/value occurs exactly ``k`` times for that static load.
    """

    name: str
    total_loads: int
    address_buckets: dict[int, int]
    value_buckets: dict[int, int]

    def fraction_repeating(self, kind: str, at_least: int) -> float:
        """Fraction of dynamic loads whose address/value repeats >= N times.

        Args:
            kind: ``"address"`` or ``"value"``.
            at_least: Minimum occurrence count.
        """
        buckets = self._buckets(kind)
        if not self.total_loads:
            return 0.0
        hits = sum(count for k, count in buckets.items() if k >= at_least)
        return hits / self.total_loads

    def breakdown(self, kind: str, thresholds: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)) -> dict[int, float]:
        """Cumulative Figure 2 series: fraction repeating >= each threshold."""
        return {t: self.fraction_repeating(kind, t) for t in thresholds}

    def _buckets(self, kind: str) -> dict[int, int]:
        if kind == "address":
            return self.address_buckets
        if kind == "value":
            return self.value_buckets
        raise ValueError(f"kind must be 'address' or 'value', got {kind!r}")


def repeatability(trace: Trace) -> RepeatabilityProfile:
    """Compute the Figure 2 address/value repeatability breakdown."""
    addr_counts: dict[int, Counter[int]] = defaultdict(Counter)
    value_counts: dict[int, Counter[tuple[int, ...]]] = defaultdict(Counter)
    dynamic: list[tuple[int, int, tuple[int, ...]]] = []

    for _, inst in trace.loads():
        assert inst.mem_addr is not None
        addr_counts[inst.pc][inst.mem_addr] += 1
        value_counts[inst.pc][inst.values] += 1
        dynamic.append((inst.pc, inst.mem_addr, inst.values))

    address_buckets: Counter[int] = Counter()
    value_buckets: Counter[int] = Counter()
    for pc, addr, values in dynamic:
        address_buckets[addr_counts[pc][addr]] += 1
        value_buckets[value_counts[pc][values]] += 1

    return RepeatabilityProfile(
        name=trace.name,
        total_loads=len(dynamic),
        address_buckets=dict(address_buckets),
        value_buckets=dict(value_buckets),
    )
