"""The shared trace fabric: generate a trace once, simulate everywhere.

A sweep runs many schemes over the same deterministic trace; before
this module every grid cell paid to rebuild (or re-deserialize) it.
:class:`TraceStore` publishes a :class:`~repro.trace.ColumnarTrace`
into a ``multiprocessing.shared_memory`` segment exactly once, and any
process on the machine :func:`attach`\\ es it *zero-copy*: the attached
trace's columns are typed memoryviews straight over the segment, and
the golden suite's "shared" leg pins its simulated outcomes
bit-identical to a locally built trace.

Segment layout (one header + per-column buffers, as a single buffer)::

    b"repro-shmtrace1\\n"   fabric magic
    <u64 owner pid>         who may unlink; orphan GC checks liveness
    <v2 single-chunk image> repro.trace.serialization.v2_bytes()

Reusing the v2 byte layout means one parser
(:func:`~repro.trace.serialization.map_v2_columns`) serves both
transports: a POSIX shared-memory segment when the platform has one,
or an ``mmap`` over a regular file under the store root when it does
not (``use_shm=False``, or :func:`shm_available` says no).  Refs are
self-describing strings — ``"shm:<segment>"`` / ``"file:<path>"`` —
so a pool worker can attach from nothing but the ref.

Lifecycle and failure matrix:

* **publish** is owner-side and idempotent per key; the segment name
  embeds the owner pid, so two concurrent stores never collide.
* **attach** is refcounted in-process (:meth:`TraceStore.attach`
  tracks open handles; module-level :func:`attach` is what workers
  use) and *must not* let the attaching process's resource tracker
  unlink the segment on exit — CPython < 3.13 registers attach-only
  handles too (bpo-39959), so they are explicitly unregistered here.
* **close()** releases every handle this store opened and unlinks
  every segment it owns.  Closing a handle twice is a no-op.
* **attacher crash** (SIGKILL'd worker) leaks nothing: the owner still
  unlinks at ``close()``.
* **owner crash** leaves the segment behind; :func:`gc_orphans` — run
  by every ``TraceStore()`` construction — scans for fabric segments
  whose embedded owner pid is dead and unlinks them.
* **attach after unlink** (or of a torn segment) raises; callers fall
  back to building the trace locally, trading the speedup for the
  result, never the result itself.

Everything here is stdlib-only — the fabric must work in the no-numpy
environment.
"""

from __future__ import annotations

import errno
import hashlib
import mmap
import os
import struct
import tempfile
from pathlib import Path

from repro.trace.columnar import COLUMNS, ColumnarTrace
from repro.trace.serialization import map_v2_columns, v2_bytes

MAGIC = b"repro-shmtrace1\n"
# /dev/shm-visible namespace for fabric segments; orphan GC globs it.
SEGMENT_PREFIX = "repro-shmtr-"
_OWNER = struct.Struct("<Q")
_HEADER = len(MAGIC) + _OWNER.size

_shm_probe: bool | None = None


def shm_available() -> bool:
    """True when POSIX shared memory actually works here (probed once)."""
    global _shm_probe
    if _shm_probe is None:
        try:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(create=True, size=16)
            seg.close()
            seg.unlink()
            _shm_probe = True
        except (ImportError, OSError):
            _shm_probe = False
    return _shm_probe


def _attach_segment(name: str):
    """Open an existing segment *without* resource-tracker registration.

    On CPython < 3.13 ``SharedMemory(name=..., create=False)`` registers
    the segment with a resource tracker, which *unlinks it at process
    exit* — destroying the segment for every other attacher (bpo-39959).
    Unregistering afterwards is not enough: pool workers inherit the
    parent's tracker daemon, whose registration cache is one set per
    name, so an attacher's unregister would silently delete the owning
    store's entry and break the owner's own unlink bookkeeping.  The
    only uniformly safe move is to keep the tracker out of the attach
    entirely — 3.13's ``track=False`` where available, else a scoped
    suppression of ``register`` for the duration of the open.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass      # no track= on this CPython: suppress register instead
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shm(rname, rtype):
        if rtype != "shared_memory":
            original(rname, rtype)

    resource_tracker.register = _skip_shm
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True      # exists, owned by someone else
    except OSError:
        return True      # be conservative: never GC on an odd errno
    return True


class TraceHandle:
    """One attachment: a read-only trace plus the views/mmap behind it.

    ``trace`` is a :class:`ColumnarTrace` whose columns are typed
    memoryviews over the segment.  :meth:`close` releases every view
    before closing the transport (a live exported view would make the
    close a ``BufferError``), after which the trace must not be read.
    """

    def __init__(self, trace: ColumnarTrace, ref: str, views, closer) -> None:
        self.trace = trace
        self.ref = ref
        self._views = list(views)
        self._closer = closer
        self._on_close = None       # set by TraceStore.attach (refcount)

    def close(self) -> None:
        """Release the attachment (idempotent)."""
        closer, self._closer = self._closer, None
        if closer is None:
            return
        for view in self._views:
            view.release()
        self._views = []
        closer()
        if self._on_close is not None:
            self._on_close(self)
            self._on_close = None

    @property
    def closed(self) -> bool:
        return self._closer is None

    def __enter__(self) -> "TraceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _trace_from_buffer(buf, ref: str):
    """(trace, views) mapped zero-copy out of one fabric payload.

    On a torn/foreign payload every view opened so far is released
    *before* raising — a view left exported (even one only reachable
    through the raised traceback) would turn the caller's transport
    ``close()`` into a ``BufferError`` and leak the mapping.
    """
    base = memoryview(buf)
    views = [base]
    try:
        if bytes(base[:len(MAGIC)]) != MAGIC:
            raise ValueError(f"{ref}: not a trace fabric segment")
        image = base[_HEADER:]
        views.append(image)
        name, count, offsets = map_v2_columns(image)
        if count == 0:
            # a valid empty trace has no column frames to view; a plain
            # (owned, zero-copy-irrelevant) empty trace is bit-identical
            return ColumnarTrace(name), views
        columns = {}
        for attr, typecode in COLUMNS:
            off, nbytes = offsets[attr]
            col = image[off:off + nbytes].cast(typecode)
            views.append(col)
            columns[attr] = col
        return ColumnarTrace.from_columns(name, columns), views
    except Exception:
        for view in reversed(views):
            view.release()
        raise


def attach(ref: str) -> TraceHandle:
    """Attach a published trace by ref; zero-copy, read-only.

    ``ref`` is the string :meth:`TraceStore.publish` returned —
    ``"shm:<segment>"`` or ``"file:<path>"``.  Raises ``ValueError``
    for a malformed ref or torn segment and ``FileNotFoundError`` when
    the segment is already unlinked; callers are expected to fall back
    to building the trace locally.
    """
    kind, _, ident = ref.partition(":")
    if kind == "shm" and ident:
        try:
            shm = _attach_segment(ident)
        except FileNotFoundError:
            raise
        except OSError as exc:
            if exc.errno == errno.ENOENT:
                raise FileNotFoundError(ref) from exc
            raise
        try:
            trace, views = _trace_from_buffer(shm.buf, ref)
        except Exception:
            shm.close()
            raise
        return TraceHandle(trace, ref, views, shm.close)
    if kind == "file" and ident:
        fh = open(ident, "rb")
        try:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            fh.close()
            raise
        try:
            trace, views = _trace_from_buffer(mapped, ref)
        except Exception:
            mapped.close()
            fh.close()
            raise

        def _close(mapped=mapped, fh=fh) -> None:
            mapped.close()
            fh.close()

        return TraceHandle(trace, ref, views, _close)
    raise ValueError(f"malformed trace fabric ref: {ref!r}")


def gc_orphans(root: str | Path | None = None) -> list[str]:
    """Unlink fabric segments whose owning process is dead.

    Scans ``/dev/shm`` (where Linux exposes POSIX shared memory as
    files; elsewhere the scan is a no-op) and, when given, the file-
    fallback ``root`` directory.  A segment whose embedded owner pid no
    longer exists was leaked by a crashed owner — nobody will ever
    unlink it, so this does.  Returns the names it removed.
    """
    removed: list[str] = []
    candidates: list[Path] = []
    shm_dir = Path("/dev/shm")
    if shm_dir.is_dir():
        candidates.extend(shm_dir.glob(SEGMENT_PREFIX + "*"))
    if root is not None:
        root = Path(root)
        if root.is_dir():
            candidates.extend(root.glob(SEGMENT_PREFIX + "*"))
    for path in candidates:
        try:
            with open(path, "rb") as fh:
                head = fh.read(_HEADER)
            if len(head) < _HEADER or head[:len(MAGIC)] != MAGIC:
                continue      # not ours (prefix collision): leave it
            owner = _OWNER.unpack_from(head, len(MAGIC))[0]
            if not _pid_alive(owner):
                path.unlink()
                removed.append(path.name)
        except OSError:
            continue          # vanished or unreadable: nothing to do
    return removed


def _segment_name(key: str) -> str:
    """A collision-free segment name: fabric prefix + owner pid + key."""
    digest = hashlib.sha256(key.encode()).hexdigest()[:16]
    return f"{SEGMENT_PREFIX}{os.getpid():x}-{digest}"


class TraceStore:
    """Owner-side fabric endpoint: publish, attach, clean up.

    One store per run (the runtime makes one for a fabric-enabled
    grid).  ``root`` hosts the file-fallback segments — default a
    private temporary directory the store deletes on close — and is
    also swept for dead-owner orphans at construction, together with
    ``/dev/shm``.  Force ``use_shm=False`` to exercise the mmap
    fallback on a machine that does have shared memory.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        use_shm: bool | None = None,
    ) -> None:
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        if root is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-fabric-")
            root = self._tmpdir.name
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.use_shm = shm_available() if use_shm is None else bool(use_shm)
        self.orphans_removed = gc_orphans(self.root)
        self._refs: dict[str, str] = {}          # key -> ref
        self._segments: dict[str, object] = {}   # ref -> SharedMemory|Path
        self._handles: list[TraceHandle] = []
        self._closed = False

    # -- publish ---------------------------------------------------------

    def publish(
        self,
        key: str,
        trace: ColumnarTrace,
        image: bytes | None = None,
    ) -> str:
        """Publish one trace under ``key``; returns its attach ref.

        Idempotent per key (the second publish returns the first ref
        without looking at ``trace``).  The segment is sized exactly:
        header + owner pid + single-chunk v2 image.  Pass ``image``
        (``v2_bytes(trace)``, precomputed) to reuse a serialization the
        caller already paid for — e.g. the runtime serializes each
        trace once and feeds the same image to the disk cache and here.
        """
        if self._closed:
            raise RuntimeError("TraceStore is closed")
        ref = self._refs.get(key)
        if ref is not None:
            return ref
        payload = MAGIC + _OWNER.pack(os.getpid()) + (
            v2_bytes(trace) if image is None else image
        )
        name = _segment_name(key)
        if self.use_shm:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(
                name=name, create=True, size=len(payload)
            )
            seg.buf[:len(payload)] = payload
            ref = f"shm:{seg.name}"
            self._segments[ref] = seg
        else:
            path = self.root / name
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_bytes(payload)
            tmp.replace(path)        # atomic: attachers never see a torn file
            ref = f"file:{path}"
            self._segments[ref] = path
        self._refs[key] = ref
        return ref

    def ref_for(self, key: str) -> str | None:
        return self._refs.get(key)

    # -- attach ----------------------------------------------------------

    def attach(self, ref: str) -> TraceHandle:
        """Attach with store-side refcounting (closed with the store)."""
        if self._closed:
            raise RuntimeError("TraceStore is closed")
        handle = attach(ref)
        handle._on_close = self._handles.remove
        self._handles.append(handle)
        return handle

    def attachments(self, ref: str | None = None) -> int:
        """Open handles this store tracks (for ``ref``, or in total)."""
        if ref is None:
            return len(self._handles)
        return sum(1 for h in self._handles if h.ref == ref)

    # -- lifecycle -------------------------------------------------------

    def unlink(self, key: str) -> None:
        """Retire one published segment early (attached handles keep
        the mapping alive until they close; new attaches fail)."""
        ref = self._refs.pop(key, None)
        if ref is None:
            return
        self._unlink_ref(ref)

    def _unlink_ref(self, ref: str) -> None:
        seg = self._segments.pop(ref, None)
        if seg is None:
            return
        if isinstance(seg, Path):
            try:
                seg.unlink()
            except OSError:
                pass
        else:
            try:
                seg.close()
                seg.unlink()
            except (OSError, FileNotFoundError):
                pass

    def close(self) -> None:
        """Release every handle, unlink every owned segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in list(self._handles):
            handle.close()
        self._handles = []
        for ref in list(self._segments):
            self._unlink_ref(ref)
        self._refs = {}
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "TraceStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"TraceStore({len(self._refs)} published, "
            f"{len(self._handles)} attached, "
            f"{'shm' if self.use_shm else 'file'})"
        )
