"""Memory dependence prediction substrate (store sets).

The baseline back-end uses an MDP "similar to Alpha 21264" (Section
4.2).  We implement the store-sets scheme of Chrysos & Emer: an SSIT
maps instruction PCs to store-set identifiers and an LFST tracks the
last fetched store of each set, so predicted-dependent loads are held
until that store executes.

The paper leans on this substrate in one specific way: the MDP is
*back-end coupled* and therefore cannot be used to stop DLVP's
front-end probes from racing in-flight stores — that is why DLVP adds
the tiny LSCD filter (Section 3.2.2).  We model the same separation.
"""

from repro.mdp.store_sets import StoreSetsPredictor, StoreSetsConfig

__all__ = ["StoreSetsPredictor", "StoreSetsConfig"]
