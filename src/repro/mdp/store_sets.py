"""Store-sets memory dependence predictor (Chrysos & Emer, ISCA 1998)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StoreSetsConfig:
    ssit_entries: int = 1024       # store-set ID table (PC-indexed)
    lfst_entries: int = 128        # last-fetched-store table (set-indexed)
    clear_interval: int = 30000    # periodic clearing combats staleness


class StoreSetsPredictor:
    """Store sets with periodic invalidation.

    Usage protocol (mirrors the hardware events):

    * ``store_fetched(pc, seq)`` — every store, in fetch order.
    * ``load_dependence(pc)`` — at load issue; returns the sequence
      number of the store the load must wait for, or ``None``.
    * ``store_executed(pc)`` — clears the LFST entry when the store
      leaves the execution stage.
    * ``report_violation(load_pc, store_pc)`` — on a memory-order
      violation; merges both PCs into one store set.
    """

    def __init__(self, config: StoreSetsConfig | None = None) -> None:
        self.config = config or StoreSetsConfig()
        self._ssit: dict[int, int] = {}
        self._lfst: dict[int, tuple[int, int]] = {}   # set -> (store pc, seq)
        self._next_set = 0
        self._events = 0
        self.violations = 0
        self.dependencies_predicted = 0

    def _tick(self) -> None:
        self._events += 1
        if self._events % self.config.clear_interval == 0:
            self._ssit.clear()
            self._lfst.clear()

    def _ssit_slot(self, pc: int) -> int:
        return (pc >> 2) % self.config.ssit_entries

    def store_fetched(self, pc: int, seq: int) -> None:
        self._tick()
        store_set = self._ssit.get(self._ssit_slot(pc))
        if store_set is not None:
            self._lfst[store_set % self.config.lfst_entries] = (pc, seq)

    def store_executed(self, pc: int) -> None:
        store_set = self._ssit.get(self._ssit_slot(pc))
        if store_set is None:
            return
        slot = store_set % self.config.lfst_entries
        entry = self._lfst.get(slot)
        if entry is not None and entry[0] == pc:
            del self._lfst[slot]

    def load_dependence(self, pc: int) -> int | None:
        """Sequence number of the store this load should wait for."""
        self._tick()
        store_set = self._ssit.get(self._ssit_slot(pc))
        if store_set is None:
            return None
        entry = self._lfst.get(store_set % self.config.lfst_entries)
        if entry is None:
            return None
        self.dependencies_predicted += 1
        return entry[1]

    def report_violation(self, load_pc: int, store_pc: int) -> None:
        """Merge the load and store into a common store set."""
        self.violations += 1
        load_slot = self._ssit_slot(load_pc)
        store_slot = self._ssit_slot(store_pc)
        load_set = self._ssit.get(load_slot)
        store_set = self._ssit.get(store_slot)
        if load_set is None and store_set is None:
            new_set = self._next_set
            self._next_set += 1
            self._ssit[load_slot] = new_set
            self._ssit[store_slot] = new_set
        elif load_set is None:
            assert store_set is not None
            self._ssit[load_slot] = store_set
        elif store_set is None:
            self._ssit[store_slot] = load_set
        else:
            # Convention: both move to the smaller set ID.
            winner = min(load_set, store_set)
            self._ssit[load_slot] = winner
            self._ssit[store_slot] = winner
