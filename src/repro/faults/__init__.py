"""repro.faults — deterministic fault injection for chaos testing.

Lets tests and the ``repro chaos`` CLI make chosen jobs crash their
worker, hang past their timeout, raise, run slow, or have their cache
entry corrupted — deterministically, so every runtime recovery path
(pool break -> isolation round -> bounded retries, timeout kill, cache
quarantine) is exercisable on demand and reproducible run to run.

Typical use::

    from repro.faults import FaultPlan
    from repro.runtime import Runtime

    plan = FaultPlan.parse("crash@gzip/dlvp:1")   # first attempt dies
    runtime = Runtime(jobs=4, faults=plan)
    grid = runtime.run_grid(["baseline", "dlvp"], ["gzip", "nat"], 4_000)

or, with zero plumbing, ``REPRO_FAULT_SPEC=crash@gzip/dlvp`` in the
environment of any ``python -m repro`` invocation.
"""

from repro.faults.plan import (
    CRASH_EXIT_CODE,
    FAULT_KINDS,
    FAULT_SPEC_ENV,
    FaultInjected,
    FaultPlan,
    FaultRule,
    active_plan,
    corrupt_file,
    inject,
)

__all__ = [
    "FaultPlan",
    "FaultRule",
    "FaultInjected",
    "active_plan",
    "inject",
    "corrupt_file",
    "FAULT_KINDS",
    "FAULT_SPEC_ENV",
    "CRASH_EXIT_CODE",
]
