"""Deterministic, seeded fault plans for chaos-testing the runtime.

A :class:`FaultPlan` names which jobs misbehave and how, so every
recovery path in :mod:`repro.runtime` — shared-pool break, isolation
rounds, bounded retries, timeout enforcement, cache quarantine — can be
exercised on demand from tests and from the ``repro chaos`` CLI.
Plans are pure data: the same spec against the same grid always faults
the same cells on the same attempts, which is what makes chaos runs
reproducible and their journals comparable.

Spec grammar (``;``-separated clauses)::

    spec    := clause (";" clause)*
    clause  := "seed=" int | "rate=" float | rule
    rule    := kind "@" workload "/" scheme [":" attempts] ["=" seconds]
    kind    := "crash" | "hang" | "raise" | "slow" | "corrupt_cache"
    attempts:= int ("," int)*          # 1-based; omitted = every attempt

Examples::

    crash@gzip/dlvp          kill the gzip/dlvp worker on every attempt
    raise@*/vtage:1          first attempt raises; the retry succeeds
    slow@*/*=0.2             every job sleeps 200 ms, then runs normally
    hang@nat/*               nat jobs sleep far past any timeout
    corrupt_cache@gzip/*     garble the cache entry after it is written
    rate=0.25;seed=7;crash@*/*   crash a deterministic ~25% of jobs

``workload`` and ``scheme`` are :mod:`fnmatch` patterns.  ``rate``
selects a deterministic subset of jobs by hashing ``seed`` with the
job's content key — no randomness at injection time, so reruns and
resumed runs see identical faults.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from fnmatch import fnmatchcase
from pathlib import Path

FAULT_KINDS = ("crash", "hang", "raise", "slow", "corrupt_cache")
FAULT_SPEC_ENV = "REPRO_FAULT_SPEC"
CRASH_EXIT_CODE = 86          # distinctive worker os._exit status
HANG_SECONDS = 3600.0         # default "hang": far past any sane timeout
SLOW_SECONDS = 0.1            # default "slow" delay


class FaultInjected(RuntimeError):
    """Raised by an injected ``raise`` fault (so tests can match it)."""


@dataclass(frozen=True)
class FaultRule:
    """One fault clause: what happens to which cells on which attempts."""

    kind: str
    workload: str = "*"
    scheme: str = "*"
    attempts: tuple[int, ...] = ()
    seconds: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; have {FAULT_KINDS}"
            )

    def matches(self, workload: str, scheme_id: str, attempt: int) -> bool:
        """True when this rule fires for (workload, scheme, attempt)."""
        if self.attempts and attempt not in self.attempts:
            return False
        return fnmatchcase(workload, self.workload) and fnmatchcase(
            scheme_id, self.scheme
        )

    def clause(self) -> str:
        """This rule rendered back into spec-grammar text."""
        text = f"{self.kind}@{self.workload}/{self.scheme}"
        if self.attempts:
            text += ":" + ",".join(str(a) for a in self.attempts)
        if self.seconds is not None:
            text += f"={self.seconds:g}"
        return text


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of fault rules plus seeded job sampling."""

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0
    rate: float = 1.0

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULT_SPEC`` string into a plan."""
        rules: list[FaultRule] = []
        seed, rate = 0, 1.0
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                seed = int(clause[5:])
                continue
            if clause.startswith("rate="):
                rate = float(clause[5:])
                continue
            rules.append(cls._parse_rule(clause))
        return cls(rules=tuple(rules), seed=seed, rate=rate)

    @staticmethod
    def _parse_rule(clause: str) -> FaultRule:
        seconds = None
        if "=" in clause:
            clause, _, tail = clause.partition("=")
            seconds = float(tail)
        attempts: tuple[int, ...] = ()
        if ":" in clause:
            clause, _, tail = clause.partition(":")
            attempts = tuple(int(a) for a in tail.split(",") if a)
        kind, _, target = clause.partition("@")
        workload, scheme = "*", "*"
        if target:
            workload, _, scheme = target.partition("/")
            workload = workload or "*"
            scheme = scheme or "*"
        return FaultRule(
            kind=kind.strip(), workload=workload, scheme=scheme,
            attempts=attempts, seconds=seconds,
        )

    def spec(self) -> str:
        """Serialize back to spec text (round-trips through :meth:`parse`)."""
        clauses = []
        if self.seed:
            clauses.append(f"seed={self.seed}")
        if self.rate != 1.0:
            clauses.append(f"rate={self.rate:g}")
        clauses.extend(rule.clause() for rule in self.rules)
        return ";".join(clauses)

    def selects(self, key: str) -> bool:
        """Seeded, deterministic job sampling by content key."""
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        digest = hashlib.sha256(f"{self.seed}:{key}".encode()).hexdigest()
        return int(digest[:8], 16) / float(0xFFFFFFFF) < self.rate

    def rule_for(
        self, workload: str, scheme_id: str, attempt: int, key: str
    ) -> FaultRule | None:
        """The first rule firing for this (job, attempt), if any."""
        if not self.rules or not self.selects(key):
            return None
        for rule in self.rules:
            if rule.matches(workload, scheme_id, attempt):
                return rule
        return None


def active_plan(spec: str | None = None) -> FaultPlan | None:
    """The plan for ``spec``, falling back to ``$REPRO_FAULT_SPEC``.

    Returns None when neither names any faults — the common case, kept
    cheap because it runs on every worker-side job execution.
    """
    if spec is None:
        spec = os.environ.get(FAULT_SPEC_ENV)
    if not spec:
        return None
    plan = FaultPlan.parse(spec)
    return plan if plan.rules else None


def inject(
    workload: str, scheme_id: str, attempt: int, key: str, plan: FaultPlan
) -> None:
    """Worker-side injection point: act out the matching rule, if any.

    ``crash`` hard-exits the worker process (exercising pool-break and
    isolation recovery), ``hang`` sleeps past any timeout, ``raise``
    raises :class:`FaultInjected` (exercising bounded retries), and
    ``slow`` delays then lets the job run normally.  ``corrupt_cache``
    is a no-op here — it is applied parent-side after the cache write
    (see :meth:`repro.runtime.Runtime.run_jobs`).
    """
    rule = plan.rule_for(workload, scheme_id, attempt, key)
    if rule is None:
        return
    if rule.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    elif rule.kind == "hang":
        time.sleep(rule.seconds if rule.seconds is not None else HANG_SECONDS)
    elif rule.kind == "raise":
        raise FaultInjected(
            f"injected fault: {workload}/{scheme_id} attempt {attempt}"
        )
    elif rule.kind == "slow":
        time.sleep(rule.seconds if rule.seconds is not None else SLOW_SECONDS)
    # corrupt_cache: parent-side, nothing to do in the worker


def corrupt_file(path: str | Path) -> None:
    """Garble a file in place (torn-write simulation for cache entries).

    Truncates to half length and appends bytes that break both JSON and
    the checksum, so integrity checking must catch it.
    """
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2] + b"\x00{torn-write}")
