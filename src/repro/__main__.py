"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                         — list the workload suite
* ``run <workload> [...]``         — simulate workloads under a scheme
* ``figure <id>``                  — regenerate one paper figure/table
* ``profile <workload> [...]``     — Figure 1/2 trace profiles

Examples::

    python -m repro run perlbmk nat --scheme dlvp --instructions 20000
    python -m repro figure 6 --instructions 8000
    python -m repro figure table2
    python -m repro profile gzip
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import SuiteRunner
from repro.experiments.runner import default_scheme_factories, format_table
from repro.pipeline import DvtageScheme, RecoveryMode, simulate
from repro.trace import load_store_conflicts, repeatability
from repro.workloads import SUITE, build_workload, workload_names


def _scheme_factories():
    factories = default_scheme_factories()
    factories["dvtage"] = DvtageScheme
    return factories


def cmd_list(args: argparse.Namespace) -> int:
    rows = [
        [spec.name, spec.group, spec.kernel.__name__]
        for spec in sorted(SUITE.values(), key=lambda s: (s.group, s.name))
    ]
    print(format_table(["workload", "group", "kernel"], rows))
    print(f"\n{len(SUITE)} workloads")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    factories = _scheme_factories()
    if args.scheme not in factories:
        print(f"unknown scheme {args.scheme!r}; have {sorted(factories)}",
              file=sys.stderr)
        return 2
    recovery = RecoveryMode(args.recovery)
    rows = []
    for name in args.workloads:
        trace = build_workload(name, args.instructions)
        baseline = simulate(trace)
        result = simulate(trace, scheme=factories[args.scheme](),
                          recovery=recovery)
        rows.append([
            name,
            f"{baseline.ipc:5.2f}",
            f"{result.ipc:5.2f}",
            f"{result.speedup_over(baseline):+7.2%}",
            f"{result.value_coverage:6.1%}",
            f"{result.value_accuracy:7.2%}",
            str(result.flushes.value),
        ])
    print(format_table(
        ["workload", "base ipc", "ipc", "speedup", "coverage", "accuracy",
         "value flushes"],
        rows,
    ))
    return 0


_FIGURES = {
    "1": ("fig1_conflicts", "run"),
    "2": ("fig2_repeatability", "run"),
    "4": ("fig4_address_prediction", "run"),
    "5": ("fig5_prefetch", "run"),
    "6": ("fig6_value_prediction", "run"),
    "7": ("fig7_vtage_flavors", "run"),
    "8": ("fig8_tournament", "run"),
    "9": ("fig9_selected", "run"),
    "10": ("fig10_recovery", "run"),
}
_TABLES = {"table1", "table2", "table3", "table4"}


def cmd_figure(args: argparse.Namespace) -> int:
    import importlib
    target = args.id.lower()
    if target in _TABLES:
        tables = importlib.import_module("repro.experiments.tables")
        print(getattr(tables, target)().render())
        return 0
    if target not in _FIGURES:
        print(f"unknown figure {args.id!r}; have "
              f"{sorted(_FIGURES)} and {sorted(_TABLES)}", file=sys.stderr)
        return 2
    module_name, func = _FIGURES[target]
    module = importlib.import_module(f"repro.experiments.{module_name}")
    names = args.workloads or None
    runner = SuiteRunner(n_instructions=args.instructions, names=names)
    print(getattr(module, func)(runner).render())
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    for name in args.workloads:
        trace = build_workload(name, args.instructions)
        conflicts = load_store_conflicts(trace, window=64)
        repeats = repeatability(trace)
        print(f"{name}: {len(trace)} instructions, "
              f"{conflicts.total_loads} loads")
        print(f"  conflicting loads: {conflicts.fraction_conflicting:6.1%} "
              f"(committed {conflicts.fraction_committed:.1%}, "
              f"in-flight {conflicts.fraction_inflight:.1%})")
        print(f"  addresses repeating >= 8:  "
              f"{repeats.fraction_repeating('address', 8):6.1%}")
        print(f"  values repeating >= 64:    "
              f"{repeats.fraction_repeating('value', 64):6.1%}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DLVP/PAP reproduction (MICRO 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload suite")

    run = sub.add_parser("run", help="simulate workloads under a scheme")
    run.add_argument("workloads", nargs="+", choices=workload_names(),
                     metavar="workload")
    run.add_argument("--scheme", default="dlvp",
                     help="dlvp | cap | vtage | dvtage | tournament")
    run.add_argument("--recovery", default="flush",
                     choices=[m.value for m in RecoveryMode])
    run.add_argument("--instructions", type=int, default=16_000)

    fig = sub.add_parser("figure", help="regenerate one figure or table")
    fig.add_argument("id", help="1,2,4..10 or table1..table4")
    fig.add_argument("--instructions", type=int, default=8_000)
    fig.add_argument("--workloads", nargs="*", default=None,
                     help="optional workload subset")

    prof = sub.add_parser("profile", help="Figure 1/2 trace profiles")
    prof.add_argument("workloads", nargs="+", choices=workload_names(),
                      metavar="workload")
    prof.add_argument("--instructions", type=int, default=16_000)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "figure": cmd_figure,
        "profile": cmd_profile,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
