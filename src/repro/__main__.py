"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                         — list the workload suite
* ``run <workload> [...]``         — simulate workloads under a scheme
* ``figure <id>``                  — regenerate one paper figure/table
* ``profile <workload> [...]``     — Figure 1/2 trace profiles
* ``sweep``                        — run a scheme x workload grid

``run``, ``figure`` and ``sweep`` go through :mod:`repro.runtime`:
``--jobs N`` fans simulation out over N worker processes, results are
cached content-addressed under ``--cache-dir`` (default
``$REPRO_CACHE_DIR`` or ``~/.cache/repro``; disable with
``--no-cache``), and a JSONL run journal is written (``--journal``,
default ``<cache-dir>/last-run.jsonl``).  Tables go to stdout, the
run summary to stderr, so output stays pipe- and diff-friendly.

Examples::

    python -m repro run perlbmk nat --scheme dlvp --instructions 20000
    python -m repro figure 6 --instructions 8000 --jobs 4
    python -m repro figure table2
    python -m repro profile gzip
    python -m repro sweep --schemes dlvp vtage --workloads gzip nat crc
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments import SuiteRunner, arithmetic_mean, geometric_mean
from repro.experiments.runner import format_table
from repro.pipeline import RecoveryMode
from repro.runtime import Runtime, default_cache_dir, scheme_ids
from repro.trace import load_store_conflicts, repeatability
from repro.workloads import SUITE, build_workload, workload_names

_RUN_SCHEMES = ("dlvp", "cap", "vtage", "dvtage", "tournament")


def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("runtime")
    group.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (1 = serial, the default)")
    group.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="result/trace cache root "
                            "(default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    group.add_argument("--no-cache", action="store_true",
                       help="always simulate; do not read or write the cache")
    group.add_argument("--journal", default=None, metavar="FILE",
                       help="JSONL run journal path "
                            "(default: <cache-dir>/last-run.jsonl)")
    group.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="per-job wall-clock limit")


def _runtime_from_args(args: argparse.Namespace) -> Runtime:
    cache_dir = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    journal_path = args.journal
    if journal_path is None and not args.no_cache:
        journal_path = cache_dir / "last-run.jsonl"
    return Runtime(
        jobs=args.jobs,
        cache_dir=cache_dir,
        use_cache=not args.no_cache,
        journal_path=journal_path,
        timeout=args.timeout,
    )


def _print_summary(runtime: Runtime) -> None:
    print(runtime.journal.format_summary(), file=sys.stderr)


def cmd_list(args: argparse.Namespace) -> int:
    rows = [
        [spec.name, spec.group, spec.kernel.__name__]
        for spec in sorted(SUITE.values(), key=lambda s: (s.group, s.name))
    ]
    print(format_table(["workload", "group", "kernel"], rows))
    print(f"\n{len(SUITE)} workloads")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.scheme not in scheme_ids():
        print(f"unknown scheme {args.scheme!r}; have {sorted(_RUN_SCHEMES)}",
              file=sys.stderr)
        return 2
    recovery = RecoveryMode(args.recovery)
    runtime = _runtime_from_args(args)
    grid = runtime.run_grid(
        ["baseline", args.scheme], args.workloads, args.instructions,
        recovery=recovery,
    )
    if grid.failures():
        for outcome in grid.failures():
            print(f"FAILED {outcome.job.workload}/{outcome.job.scheme_id}: "
                  f"{outcome.error}", file=sys.stderr)
        return 1
    rows = []
    for name in args.workloads:
        baseline = grid.result("baseline", name)
        result = grid.result(args.scheme, name)
        rows.append([
            name,
            f"{baseline.ipc:5.2f}",
            f"{result.ipc:5.2f}",
            f"{result.speedup_over(baseline):+7.2%}",
            f"{result.value_coverage:6.1%}",
            f"{result.value_accuracy:7.2%}",
            str(result.flushes.value),
        ])
    print(format_table(
        ["workload", "base ipc", "ipc", "speedup", "coverage", "accuracy",
         "value flushes"],
        rows,
    ))
    _print_summary(runtime)
    return 0


_FIGURES = {
    "1": ("fig1_conflicts", "run"),
    "2": ("fig2_repeatability", "run"),
    "4": ("fig4_address_prediction", "run"),
    "5": ("fig5_prefetch", "run"),
    "6": ("fig6_value_prediction", "run"),
    "7": ("fig7_vtage_flavors", "run"),
    "8": ("fig8_tournament", "run"),
    "9": ("fig9_selected", "run"),
    "10": ("fig10_recovery", "run"),
}
_TABLES = {"table1", "table2", "table3", "table4"}


def cmd_figure(args: argparse.Namespace) -> int:
    import importlib
    target = args.id.lower()
    if target in _TABLES:
        tables = importlib.import_module("repro.experiments.tables")
        print(getattr(tables, target)().render())
        return 0
    if target not in _FIGURES:
        print(f"unknown figure {args.id!r}; have "
              f"{sorted(_FIGURES)} and {sorted(_TABLES)}", file=sys.stderr)
        return 2
    module_name, func = _FIGURES[target]
    module = importlib.import_module(f"repro.experiments.{module_name}")
    names = args.workloads or None
    runtime = _runtime_from_args(args)
    runner = SuiteRunner(
        n_instructions=args.instructions, names=names, runtime=runtime
    )
    print(getattr(module, func)(runner).render())
    _print_summary(runtime)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    known = scheme_ids()
    unknown = [s for s in args.schemes if s not in known]
    if unknown:
        print(f"unknown scheme(s) {unknown}; registered: {known}",
              file=sys.stderr)
        return 2
    workloads = args.workloads or workload_names()
    recovery = RecoveryMode(args.recovery)
    runtime = _runtime_from_args(args)
    schemes = [s for s in args.schemes if s != "baseline"]
    grid = runtime.run_grid(
        ["baseline"] + schemes, workloads, args.instructions, recovery=recovery
    )
    rows = []
    speedups = {scheme: grid.speedups(scheme) for scheme in schemes}
    for name in workloads:
        rows.append([name] + [f"{speedups[s][name]:+8.2%}" for s in schemes])
    rows.append(["(arith mean)"]
                + [f"{arithmetic_mean(speedups[s].values()):+8.2%}"
                   for s in schemes])
    rows.append(["(geo mean)"]
                + [f"{geometric_mean(speedups[s].values()):+8.2%}"
                   for s in schemes])
    print(f"sweep — {len(schemes)} scheme(s) x {len(workloads)} workload(s), "
          f"{args.instructions} instructions, recovery={recovery.value}")
    print(format_table(["workload"] + schemes, rows))
    if grid.failures():
        for outcome in grid.failures():
            print(f"FAILED {outcome.job.workload}/{outcome.job.scheme_id}: "
                  f"{outcome.error}", file=sys.stderr)
    _print_summary(runtime)
    return 1 if grid.failures() else 0


def cmd_profile(args: argparse.Namespace) -> int:
    for name in args.workloads:
        trace = build_workload(name, args.instructions)
        conflicts = load_store_conflicts(trace, window=64)
        repeats = repeatability(trace)
        print(f"{name}: {len(trace)} instructions, "
              f"{conflicts.total_loads} loads")
        print(f"  conflicting loads: {conflicts.fraction_conflicting:6.1%} "
              f"(committed {conflicts.fraction_committed:.1%}, "
              f"in-flight {conflicts.fraction_inflight:.1%})")
        print(f"  addresses repeating >= 8:  "
              f"{repeats.fraction_repeating('address', 8):6.1%}")
        print(f"  values repeating >= 64:    "
              f"{repeats.fraction_repeating('value', 64):6.1%}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DLVP/PAP reproduction (MICRO 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload suite")

    run = sub.add_parser("run", help="simulate workloads under a scheme")
    run.add_argument("workloads", nargs="+", choices=workload_names(),
                     metavar="workload")
    run.add_argument("--scheme", default="dlvp",
                     help="dlvp | cap | vtage | dvtage | tournament")
    run.add_argument("--recovery", default="flush",
                     choices=[m.value for m in RecoveryMode])
    run.add_argument("--instructions", type=int, default=16_000)
    _add_runtime_flags(run)

    fig = sub.add_parser("figure", help="regenerate one figure or table")
    fig.add_argument("id", help="1,2,4..10 or table1..table4")
    fig.add_argument("--instructions", type=int, default=8_000)
    fig.add_argument("--workloads", nargs="*", default=None,
                     help="optional workload subset")
    _add_runtime_flags(fig)

    sweep = sub.add_parser(
        "sweep", help="run a scheme x workload grid and print speedups"
    )
    sweep.add_argument("--schemes", nargs="+", required=True,
                       metavar="scheme",
                       help="registered scheme ids (see also: figure modules "
                            "register their sweep points on import)")
    sweep.add_argument("--workloads", nargs="*", default=None,
                       choices=workload_names(), metavar="workload",
                       help="workload subset (default: whole suite)")
    sweep.add_argument("--recovery", default="flush",
                       choices=[m.value for m in RecoveryMode])
    sweep.add_argument("--instructions", type=int, default=8_000)
    _add_runtime_flags(sweep)

    prof = sub.add_parser("profile", help="Figure 1/2 trace profiles")
    prof.add_argument("workloads", nargs="+", choices=workload_names(),
                      metavar="workload")
    prof.add_argument("--instructions", type=int, default=16_000)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "figure": cmd_figure,
        "profile": cmd_profile,
        "sweep": cmd_sweep,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
