"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                         — list the workload suite
* ``run <workload> [...]``         — simulate workloads under a scheme
* ``figure <id>``                  — regenerate one paper figure/table
* ``profile <workload> [...]``     — Figure 1/2 trace profiles
* ``sweep``                        — run a scheme x workload grid
* ``chaos``                        — sweep under deterministic fault injection
* ``cache verify|gc``              — audit / prune the result cache
* ``bench throughput``             — simulator inst/s report (``BENCH_*.json``)
* ``trace <workload>``             — one traced simulation (Chrome trace +
  interval metrics + flight recorder; see :mod:`repro.observe`)
* ``observe report``               — interval-metrics report from a journal
* ``serve start|submit|watch|status|shutdown`` — the multi-tenant
  simulation farm (see :mod:`repro.serve`): ``start`` runs the
  gateway, ``submit`` sends a grid to it (falling back to in-process
  execution when no server is reachable), ``watch`` streams the farm's
  live journal, ``shutdown`` drains it gracefully

``run``, ``figure``, ``sweep`` and ``chaos`` go through
:mod:`repro.runtime`: ``--jobs N`` fans simulation out over N worker
processes, results are cached content-addressed under ``--cache-dir``
(default ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``; disable with
``--no-cache``), and a JSONL run journal is written (``--journal``,
default ``<cache-dir>/last-run.jsonl``).  Tables go to stdout, the
run summary to stderr, so output stays pipe- and diff-friendly.

Fault tolerance: Ctrl-C (or SIGTERM) prints a partial-grid report —
completed cells stay cached and journaled — and exits 130; relaunching
with ``--resume <journal>`` skips everything the journal already shows
finished, even under ``--no-cache``.  ``--retries``, ``--backoff`` and
``--timeout-escalation`` tune the retry policy; ``chaos --fault SPEC``
(or ``$REPRO_FAULT_SPEC``) injects deterministic worker crashes,
hangs, raises, slowdowns and cache corruption to prove the recovery
paths on demand.

Examples::

    python -m repro run perlbmk nat --scheme dlvp --instructions 20000
    python -m repro figure 6 --instructions 8000 --jobs 4
    python -m repro figure table2
    python -m repro profile gzip
    python -m repro sweep --schemes dlvp vtage --workloads gzip nat crc
    python -m repro sweep --schemes dlvp --resume ~/.cache/repro/last-run.jsonl
    python -m repro chaos --fault 'crash@gzip/dlvp:1' --jobs 4
    python -m repro trace aifirf --scheme dlvp --out trace.json
    python -m repro observe report
    python -m repro run aifirf --scheme dlvp --trace traces/
    python -m repro bench throughput --output BENCH_pr9.json
    python -m repro cache verify
    python -m repro cache gc --max-age-days 30 --max-size-mb 512
    python -m repro serve start --workers 4 --max-cache-mb 512
    python -m repro serve submit --schemes dlvp vtage --workloads gzip nat
    python -m repro serve status
    python -m repro serve shutdown
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments import SuiteRunner, arithmetic_mean, geometric_mean
from repro.experiments.runner import format_table
from repro.faults import FAULT_SPEC_ENV, FaultPlan, active_plan
from repro.pipeline import RecoveryMode
from repro.runtime import (
    ResultCache,
    RunInterrupted,
    Runtime,
    default_cache_dir,
    scheme_ids,
)
from repro.trace import load_store_conflicts, repeatability
from repro.workloads import SUITE, build_workload, workload_names

_RUN_SCHEMES = ("dlvp", "cap", "vtage", "dvtage", "tournament")


def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("runtime")
    group.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (1 = serial, the default)")
    group.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="result/trace cache root "
                            "(default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    group.add_argument("--no-cache", action="store_true",
                       help="always simulate; do not read or write the cache")
    group.add_argument("--journal", default=None, metavar="FILE",
                       help="JSONL run journal path "
                            "(default: <cache-dir>/last-run.jsonl)")
    group.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="per-job wall-clock limit")
    group.add_argument("--retries", type=int, default=1, metavar="N",
                       help="extra attempts for a job whose worker raised "
                            "or died (default: 1)")
    group.add_argument("--backoff", type=float, default=0.0, metavar="SECONDS",
                       help="deterministic exponential retry delay base "
                            "(attempt n waits backoff * 2**(n-2))")
    group.add_argument("--timeout-escalation", type=float, default=None,
                       metavar="FACTOR",
                       help="retry timed-out jobs with their timeout "
                            "multiplied by FACTOR (default: no retry)")
    group.add_argument("--resume", default=None, metavar="JOURNAL",
                       help="skip jobs a previous run's journal already "
                            "shows finished (works with --no-cache)")


def _runtime_from_args(
    args: argparse.Namespace, faults: FaultPlan | None = None
) -> Runtime:
    cache_dir = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    journal_path = args.journal
    if journal_path is None and not args.no_cache:
        journal_path = cache_dir / "last-run.jsonl"
    return Runtime(
        jobs=args.jobs,
        cache_dir=cache_dir,
        use_cache=not args.no_cache,
        journal_path=journal_path,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        timeout_factor=args.timeout_escalation,
        faults=faults,
        resume_from=args.resume,
        trace_dir=getattr(args, "trace", None),
        trace_format=(
            "shared" if getattr(args, "fabric", False)
            else "columnar" if getattr(args, "columnar", False)
            else "object"
        ),
    )


def _interrupted(grid_or_exc) -> int:
    """Print an interrupted run's partial-grid report; exit code 130."""
    report = (
        grid_or_exc.grid.partial_report()
        if isinstance(grid_or_exc, RunInterrupted)
        else grid_or_exc.partial_report()
    )
    print(report, file=sys.stderr)
    return 130


def _print_summary(runtime: Runtime) -> None:
    print(runtime.journal.format_summary(), file=sys.stderr)


def cmd_list(args: argparse.Namespace) -> int:
    rows = [
        [spec.name, spec.group, spec.kernel.__name__]
        for spec in sorted(SUITE.values(), key=lambda s: (s.group, s.name))
    ]
    print(format_table(["workload", "group", "kernel"], rows))
    n_paper = len(workload_names())
    print(f"\n{len(SUITE)} workloads ({n_paper} paper, "
          f"{len(SUITE) - n_paper} adversarial)")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.scheme not in scheme_ids():
        print(f"unknown scheme {args.scheme!r}; have {sorted(_RUN_SCHEMES)}",
              file=sys.stderr)
        return 2
    recovery = RecoveryMode(args.recovery)
    runtime = _runtime_from_args(args)
    grid = runtime.run_grid(
        ["baseline", args.scheme], args.workloads, args.instructions,
        recovery=recovery,
    )
    if not grid.complete:
        _print_summary(runtime)
        return _interrupted(grid)
    if grid.failures():
        for outcome in grid.failures():
            print(f"FAILED {outcome.job.workload}/{outcome.job.scheme_id}: "
                  f"{outcome.error}", file=sys.stderr)
        return 1
    rows = []
    for name in args.workloads:
        baseline = grid.result("baseline", name)
        result = grid.result(args.scheme, name)
        rows.append([
            name,
            f"{baseline.ipc:5.2f}",
            f"{result.ipc:5.2f}",
            f"{result.speedup_over(baseline):+7.2%}",
            f"{result.value_coverage:6.1%}",
            f"{result.value_accuracy:7.2%}",
            str(result.flushes.value),
        ])
    print(format_table(
        ["workload", "base ipc", "ipc", "speedup", "coverage", "accuracy",
         "value flushes"],
        rows,
    ))
    _print_summary(runtime)
    return 0


_FIGURES = {
    "1": ("fig1_conflicts", "run"),
    "2": ("fig2_repeatability", "run"),
    "4": ("fig4_address_prediction", "run"),
    "5": ("fig5_prefetch", "run"),
    "6": ("fig6_value_prediction", "run"),
    "7": ("fig7_vtage_flavors", "run"),
    "8": ("fig8_tournament", "run"),
    "9": ("fig9_selected", "run"),
    "10": ("fig10_recovery", "run"),
}
_TABLES = {"table1", "table2", "table3", "table4"}


def cmd_figure(args: argparse.Namespace) -> int:
    import importlib
    target = args.id.lower()
    if target in _TABLES:
        tables = importlib.import_module("repro.experiments.tables")
        print(getattr(tables, target)().render())
        return 0
    if target not in _FIGURES:
        print(f"unknown figure {args.id!r}; have "
              f"{sorted(_FIGURES)} and {sorted(_TABLES)}", file=sys.stderr)
        return 2
    module_name, func = _FIGURES[target]
    module = importlib.import_module(f"repro.experiments.{module_name}")
    names = args.workloads or None
    runtime = _runtime_from_args(args)
    runner = SuiteRunner(
        n_instructions=args.instructions, names=names, runtime=runtime
    )
    try:
        print(getattr(module, func)(runner).render())
    except RunInterrupted as exc:
        _print_summary(runtime)
        return _interrupted(exc)
    _print_summary(runtime)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    known = scheme_ids()
    unknown = [s for s in args.schemes if s not in known]
    if unknown:
        print(f"unknown scheme(s) {unknown}; registered: {known}",
              file=sys.stderr)
        return 2
    workloads = args.workloads or workload_names()
    recovery = RecoveryMode(args.recovery)
    runtime = _runtime_from_args(args)
    schemes = [s for s in args.schemes if s != "baseline"]
    grid = runtime.run_grid(
        ["baseline"] + schemes, workloads, args.instructions, recovery=recovery
    )
    if not grid.complete:
        _print_summary(runtime)
        return _interrupted(grid)
    # failed/timed-out cells render as their status; means cover the
    # cells whose scheme AND baseline runs both succeeded
    speedups = {
        s: {
            w: grid.result(s, w).speedup_over(grid.result("baseline", w))
            for w in workloads
            if grid.outcome(s, w).ok and grid.outcome("baseline", w).ok
        }
        for s in schemes
    }
    rows = []
    for name in workloads:
        row = [name]
        for s in schemes:
            if name in speedups[s]:
                row.append(f"{speedups[s][name]:+8.2%}")
            else:
                bad = grid.outcome(s, name)
                if bad.ok:
                    bad = grid.outcome("baseline", name)
                row.append(bad.status.upper())
        rows.append(row)
    for label, mean in (("(arith mean)", arithmetic_mean),
                        ("(geo mean)", geometric_mean)):
        rows.append([label] + [
            f"{mean(speedups[s].values()):+8.2%}" if speedups[s] else "n/a"
            for s in schemes
        ])
    print(f"sweep — {len(schemes)} scheme(s) x {len(workloads)} workload(s), "
          f"{args.instructions} instructions, recovery={recovery.value}")
    print(format_table(["workload"] + schemes, rows))
    if grid.failures():
        for outcome in grid.failures():
            print(f"FAILED {outcome.job.workload}/{outcome.job.scheme_id}: "
                  f"{outcome.error}", file=sys.stderr)
    _print_summary(runtime)
    return 1 if grid.failures() else 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a sweep under an explicit fault plan and report per-cell fates."""
    spec = args.fault if args.fault is not None else None
    plan = FaultPlan.parse(spec) if spec else active_plan()
    if plan is None or not plan.rules:
        print(f"chaos: no fault plan; pass --fault SPEC or set "
              f"${FAULT_SPEC_ENV}", file=sys.stderr)
        return 2
    known = scheme_ids()
    unknown = [s for s in args.schemes if s not in known]
    if unknown:
        print(f"unknown scheme(s) {unknown}; registered: {known}",
              file=sys.stderr)
        return 2
    workloads = args.workloads or workload_names()
    runtime = _runtime_from_args(args, faults=plan)
    print(f"chaos — plan '{plan.spec()}', {len(args.schemes)} scheme(s) x "
          f"{len(workloads)} workload(s), {args.instructions} instructions")
    grid = runtime.run_grid(args.schemes, workloads, args.instructions)
    rows = []
    for workload in workloads:
        for scheme in args.schemes:
            outcome = grid.outcome(scheme, workload)
            rows.append([
                workload, scheme, outcome.status, str(outcome.attempts),
                (outcome.error or "")[:60],
            ])
    print(format_table(["workload", "scheme", "status", "attempts", "error"],
                       rows))
    statuses = [o.status for o in grid.cells.values()]
    print(f"chaos: {statuses.count('ok')} ok, "
          f"{statuses.count('error')} error, "
          f"{statuses.count('timeout')} timeout, "
          f"{statuses.count('interrupted')} interrupted", file=sys.stderr)
    _print_summary(runtime)
    if not grid.complete:
        return _interrupted(grid)
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """``cache verify``: audit + quarantine; ``cache gc``: age/size prune."""
    root = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    cache = ResultCache(
        root,
        on_corrupt=lambda key, reason, dest: print(
            f"quarantined {key[:12]}…: {reason} -> {dest}", file=sys.stderr
        ),
    )
    if args.action == "verify":
        report = cache.verify()
        print(f"cache {root}: {report['results']} results "
              f"({report['ok']} ok, {report['stale']} stale, "
              f"{report['corrupt']} quarantined), "
              f"{report['traces']} traces "
              f"({report['trace_corrupt']} quarantined)")
        return 1 if report["corrupt"] or report["trace_corrupt"] else 0
    report = cache.gc(max_age_days=args.max_age_days,
                      max_size_mb=args.max_size_mb)
    print(f"cache {root}: reclaimed {report['bytes_freed']} bytes — "
          f"removed {report['removed']} entries "
          f"({report['results_removed']} results, "
          f"{report['traces_removed']} traces, "
          f"{report['quarantined_removed']} quarantined), "
          f"kept {report['kept']} ({report['bytes_kept']} bytes)")
    return 0


def _bench_report_checks(args: argparse.Namespace, report: dict) -> int:
    """Shared ``--output`` / ``--check`` tail of both bench targets."""
    from repro import bench

    if args.output:
        path = bench.write_report(report, args.output)
        print(f"wrote {path}", file=sys.stderr)
    if args.check:
        committed = bench.load_report(args.check)
        warnings: list[str] = []
        failures = bench.check_regression(
            report, committed, args.max_regression, warnings=warnings
        )
        for warning in warnings:
            print(f"WARNING {warning}", file=sys.stderr)
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"{args.target} within {args.max_regression:.0%} of "
              f"{args.check}", file=sys.stderr)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``bench throughput`` / ``bench sweep``: benchmark the simulator."""
    from repro import bench

    unknown = [s for s in args.schemes if s not in scheme_ids()]
    if unknown:
        print(f"unknown scheme(s) {unknown}; registered: {scheme_ids()}",
              file=sys.stderr)
        return 2
    if args.target == "sweep":
        return _cmd_bench_sweep(args)
    instructions = args.instructions or 24_000
    if args.columnar and args.object:
        engines = ("object", "columnar")
    elif args.columnar:
        engines = ("columnar",)
    elif args.object:
        engines = ("object",)
    else:
        engines = bench.DEFAULT_ENGINES
    print(f"bench throughput — {args.workload} x {instructions} "
          f"instructions, best of {args.repeats}, "
          f"engines: {'+'.join(engines)}", file=sys.stderr)
    report = bench.run_throughput(
        workload=args.workload,
        instructions=instructions,
        schemes=args.schemes,
        repeats=args.repeats,
        engines=engines,
        progress=lambda sid, entry: print(
            f"  {sid:<21} {entry['inst_per_s']:>9,} inst/s "
            f"({entry['wall_s']:.2f}s)", file=sys.stderr),
    )
    rows = []
    for engine in engines:
        section = "schemes" if engine == "object" else "columnar_schemes"
        for sid, entry in report.get(section, {}).items():
            rows.append([
                engine, sid, f"{entry['inst_per_s']:,}",
                f"{entry['inst_per_s_mean']:,}", f"{entry['wall_s']:.2f}",
            ])
    print(format_table(
        ["engine", "scheme", "inst/s (best)", "inst/s (mean)", "wall s"], rows
    ))
    print(f"peak RSS {report['peak_rss_kib']} KiB, "
          f"total wall {report['wall_s']:.1f}s")
    return _bench_report_checks(args, report)


def _cmd_bench_sweep(args: argparse.Namespace) -> int:
    """``bench sweep``: grid wall-clock, shared trace fabric off vs on."""
    from repro import bench

    workloads = args.workloads or list(bench.DEFAULT_SWEEP_WORKLOADS)
    instructions = args.instructions or bench.DEFAULT_SWEEP_INSTRUCTIONS
    print(f"bench sweep — {len(args.schemes)} schemes x "
          f"{len(workloads)} workloads x {instructions} instructions, "
          f"jobs={args.jobs}", file=sys.stderr)
    try:
        report = bench.run_sweep(
            workloads=workloads,
            schemes=args.schemes,
            instructions=instructions,
            jobs=args.jobs,
            progress=lambda mode, entry: print(
                f"  {mode:<11} ({entry['engine']:<7} engine) "
                f"{entry['wall_s']:.2f}s  "
                f"{entry['inst_per_s']:>9,} inst/s", file=sys.stderr),
        )
    except RuntimeError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    sweep = report["sweep"]
    rows = [
        [mode, sweep[mode]["engine"], f"{sweep[mode]['wall_s']:.2f}",
         f"{sweep[mode]['inst_per_s']:,}"]
        for mode in ("fabric_off", "fabric_on")
    ]
    print(format_table(["mode", "engine", "wall s", "inst/s"], rows))
    print(f"speedup {sweep['speedup']:.2f}x, identical results: "
          f"{sweep['identical_results']}")
    return _bench_report_checks(args, report)


def cmd_trace(args: argparse.Namespace) -> int:
    """One traced simulation with the full observability stack.

    Writes a ``chrome://tracing``-loadable JSON to ``--out``, prints the
    interval-metrics report, and journals the run like any runtime job
    (so ``observe report`` finds it later).  A ``raise`` rule in
    ``--fault`` (or ``$REPRO_FAULT_SPEC``) arms a deterministic mid-run
    tripwire; the flight-recorder tail then lands beside ``--out`` and
    in the journal.
    """
    from repro import faults as faults_mod
    from repro.observe import FaultTripwire, render_report, run_traced
    from repro.runtime.jobs import make_job
    from repro.runtime.journal import RunJournal
    from repro.runtime.registry import get_scheme

    if args.scheme not in scheme_ids():
        print(f"unknown scheme {args.scheme!r}; registered: {scheme_ids()}",
              file=sys.stderr)
        return 2
    recovery = RecoveryMode(args.recovery)
    cache_dir = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    journal_path = args.journal or cache_dir / "last-run.jsonl"
    journal = RunJournal(journal_path)
    job = make_job(args.workload, args.instructions, args.scheme,
                   recovery=recovery, trace_dir=str(Path(args.out).parent))
    journal.event("job_submitted", **job.identity())
    journal.event("job_started", key=job.key, workload=job.workload,
                  scheme=job.scheme_id, attempt=1)

    tripwire = None
    plan = faults_mod.active_plan(args.fault)
    if plan is not None:
        rule = plan.rule_for(job.workload, job.scheme_id, 1, job.key)
        if rule is not None and rule.kind == "raise":
            tripwire = FaultTripwire(rule)
            journal.event("fault_injected", key=job.key, fault=rule.kind,
                          rule=rule.clause())
        elif rule is not None:
            # crash/hang/slow act out exactly as in a runtime worker
            faults_mod.inject(job.workload, job.scheme_id, 1, job.key, plan)

    trace = build_workload(args.workload, args.instructions)
    try:
        run = run_traced(
            trace,
            scheme=get_scheme(args.scheme).build(),
            recovery=recovery,
            interval=args.interval,
            flight_capacity=args.flight,
            tripwire=tripwire,
            out=args.out,
            journal=journal,
        )
    except Exception as exc:
        journal.event("job_finished", key=job.key, workload=job.workload,
                      scheme=job.scheme_id, status="error", duration=0.0,
                      attempts=1, error=f"{type(exc).__name__}: {exc}")
        dump = Path(args.out).with_suffix(".flight.json")
        print(f"trace failed: {exc}", file=sys.stderr)
        if dump.exists():
            print(f"flight recorder tail: {dump}", file=sys.stderr)
        return 1
    result = run.result
    journal.event("job_finished", key=job.key, workload=job.workload,
                  scheme=job.scheme_id, status="ok", duration=0.0,
                  attempts=1, error=None, result=result.to_dict())
    print(f"trace — {args.workload}/{args.scheme}, "
          f"{result.instructions} instructions, {result.cycles} cycles, "
          f"ipc {result.ipc:.3f}")
    print(render_report(result.intervals))
    print(f"wrote {args.out} ({len(run.chrome.events)} events; "
          f"load in chrome://tracing)", file=sys.stderr)
    return 0


def cmd_observe(args: argparse.Namespace) -> int:
    """``observe report``: interval metrics from journaled traced runs."""
    from repro.observe import render_report
    from repro.runtime.journal import read_journal

    cache_dir = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    journal_path = Path(args.journal or cache_dir / "last-run.jsonl")
    if not journal_path.exists():
        print(f"no journal at {journal_path}", file=sys.stderr)
        return 2
    events = read_journal(journal_path)
    traced = [
        e for e in events
        if e.get("event") == "job_finished" and e.get("status") == "ok"
        and isinstance(e.get("result"), dict)
        and e["result"].get("intervals")
    ]
    dumps = [e for e in events if e.get("event") == "flight_recorder_dump"]
    if not traced and not dumps:
        print("no traced runs with interval data in this journal",
              file=sys.stderr)
        return 1
    for entry in traced[-args.last:]:
        result = entry["result"]
        print(f"{entry.get('workload')}/{entry.get('scheme')} — "
              f"{result['instructions']} instructions, "
              f"{result['cycles']} cycles")
        print(render_report(result["intervals"]))
        print()
    for entry in dumps[-args.last:]:
        print(f"flight dump: {entry.get('trace')}/{entry.get('scheme')} — "
              f"{entry.get('error')} ({entry.get('events_seen')} events seen"
              + (f", {entry.get('dump_path')}" if entry.get("dump_path")
                 else "") + ")")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """The simulation-farm verbs: start, submit, watch, status, shutdown.

    ``start`` blocks running the gateway (SIGINT/SIGTERM drain it
    gracefully); the other verbs are thin protocol clients resolving
    the server address from ``--host/--port``, then the ``serve.addr``
    advertisement under the cache root.  ``submit`` degrades to
    in-process execution when no server is reachable (unless
    ``--no-fallback``), so scripts written against the farm also run
    on a bare laptop.
    """
    from repro import serve

    cache_dir = Path(args.cache_dir) if args.cache_dir else None

    if args.verb == "start":
        server = serve.SweepServer(
            host=args.host or serve.DEFAULT_HOST,
            port=args.port if args.port is not None else serve.DEFAULT_PORT,
            workers=args.workers,
            cache_dir=cache_dir,
            use_cache=not args.no_cache,
            journal_path=args.journal,
            timeout=args.timeout,
            retries=args.retries,
            backoff=args.backoff,
            timeout_factor=args.timeout_escalation,
            fault_spec=args.fault,
            max_cache_mb=args.max_cache_mb,
            max_pending_per_tenant=args.max_pending,
            max_pending_total=args.max_queued,
            max_pending_cost=args.max_queued_cost,
            lease_timeout=args.lease_timeout,
            heartbeat=args.heartbeat,
            grace=args.grace,
        )

        def ready(host: str, port: int) -> None:
            print(f"serving on {host}:{port} ({args.workers} workers); "
                  f"stop with Ctrl-C or 'repro serve shutdown'",
                  file=sys.stderr)

        return server.run(ready=ready)

    def show_event(event: dict) -> None:
        kind = event.get("event") or event.get("type")
        key = (event.get("key") or "")[:12]
        where = (f"{event.get('workload')}/{event.get('scheme')}"
                 if event.get("workload") else event.get("tenant", ""))
        print(f"  [{kind}] {where} {key}", file=sys.stderr)

    def show_response(response) -> int:
        rows = [
            [cell.workload, cell.scheme, cell.status,
             "resumed" if cell.resumed else
             ("hit" if cell.cache_hit else
              ("shared" if cell.shared else f"x{cell.attempts}")),
             f"{cell.result.ipc:5.2f}" if cell.result else "-",
             (cell.error or "")[:48]]
            for cell in response.cells.values()
        ]
        print(format_table(
            ["workload", "scheme", "status", "via", "ipc", "error"], rows
        ))
        print(response.format_summary())
        return 0 if response.complete else 1

    try:
        if args.verb == "submit":
            on_event = None if args.quiet else show_event
            if args.no_fallback:
                client = serve.ServeClient(host=args.host, port=args.port,
                                           cache_dir=cache_dir)
                response = client.submit(
                    args.schemes, args.workloads or workload_names(),
                    n_instructions=args.instructions, recovery=args.recovery,
                    tenant=args.tenant, on_event=on_event,
                    reconnects=args.reconnects,
                )
            else:
                response = serve.submit_or_local(
                    args.schemes, args.workloads or workload_names(),
                    n_instructions=args.instructions, recovery=args.recovery,
                    tenant=args.tenant, host=args.host, port=args.port,
                    cache_dir=cache_dir, jobs=args.local_jobs,
                    on_event=on_event, reconnects=args.reconnects,
                )
            return show_response(response)
        if args.verb == "resume":
            client = serve.ServeClient(host=args.host, port=args.port,
                                       cache_dir=cache_dir)
            response = client.resume(
                args.ticket,
                on_event=None if args.quiet else show_event,
                reconnects=args.reconnects,
            )
            return show_response(response)
        if args.verb == "watch":
            client = serve.ServeClient(host=args.host, port=args.port,
                                       cache_dir=cache_dir)
            terminal = client.watch(show_event)
            print(f"server shut down ({terminal.get('reason')}): "
                  f"{terminal.get('completed', 0)} completed, "
                  f"{terminal.get('interrupted', 0)} interrupted",
                  file=sys.stderr)
            return 0
        client = serve.ServeClient(host=args.host, port=args.port,
                                   cache_dir=cache_dir)
        if args.verb == "status":
            status = client.status()
            print(f"server {status.get('server')} at "
                  f"{status.get('host')}:{status.get('port')} — "
                  f"up {status.get('uptime_s', 0):.0f}s, "
                  f"{status.get('busy')}/{status.get('workers')} workers busy, "
                  f"{status.get('queued')} queued, "
                  f"{status.get('inflight')} in flight, "
                  f"{status.get('watchers')} watchers, "
                  f"{status.get('tickets', 0)} live tickets")
            overload = status.get("overload") or {}
            if overload.get("overloaded"):
                print(f"OVERLOADED: {overload.get('queued')} cells queued "
                      f"(bound {overload.get('bound')}), retry_after "
                      f"{overload.get('retry_after')}s, "
                      f"{overload.get('rejected', 0)} rejected so far")
            cache_stats = status.get("cache") or {}
            if cache_stats:
                print(f"cache: {cache_stats.get('results', 0)} results, "
                      f"{cache_stats.get('traces', 0)} traces, "
                      f"{cache_stats.get('quarantined', 0)} quarantined, "
                      f"{cache_stats.get('bytes', 0)} bytes")
            counters = status.get("counters") or {}
            if counters:
                print("counters: " + ", ".join(
                    f"{k}={v}" for k, v in sorted(counters.items())
                ))
            return 0
        # verb == "shutdown"
        client.shutdown(grace=args.grace)
        print("server draining", file=sys.stderr)
        return 0
    except serve.ServeUnavailable as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    except serve.ServeError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 1


def cmd_profile(args: argparse.Namespace) -> int:
    for name in args.workloads:
        trace = build_workload(name, args.instructions)
        conflicts = load_store_conflicts(trace, window=64)
        repeats = repeatability(trace)
        print(f"{name}: {len(trace)} instructions, "
              f"{conflicts.total_loads} loads")
        print(f"  conflicting loads: {conflicts.fraction_conflicting:6.1%} "
              f"(committed {conflicts.fraction_committed:.1%}, "
              f"in-flight {conflicts.fraction_inflight:.1%})")
        print(f"  addresses repeating >= 8:  "
              f"{repeats.fraction_repeating('address', 8):6.1%}")
        print(f"  values repeating >= 64:    "
              f"{repeats.fraction_repeating('value', 64):6.1%}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DLVP/PAP reproduction (MICRO 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload suite")

    run = sub.add_parser("run", help="simulate workloads under a scheme")
    run.add_argument("workloads", nargs="+", choices=sorted(SUITE),
                     metavar="workload")
    run.add_argument("--scheme", default="dlvp",
                     help="dlvp | cap | vtage | dvtage | tournament")
    run.add_argument("--recovery", default="flush",
                     choices=[m.value for m in RecoveryMode])
    run.add_argument("--instructions", type=int, default=16_000)
    run.add_argument("--trace", default=None, metavar="DIR",
                     help="run under the observability stack; write Chrome "
                          "traces (and flight dumps on failure) into DIR")
    run.add_argument("--columnar", action="store_true",
                     help="simulate from the struct-of-arrays trace engine "
                          "(bit-identical results, bounded memory)")
    run.add_argument("--fabric", action="store_true",
                     help="publish each trace once into shared memory and "
                          "attach it from every worker (implies columnar)")
    _add_runtime_flags(run)

    fig = sub.add_parser("figure", help="regenerate one figure or table")
    fig.add_argument("id", help="1,2,4..10 or table1..table4")
    fig.add_argument("--instructions", type=int, default=8_000)
    fig.add_argument("--workloads", nargs="*", default=None,
                     help="optional workload subset")
    _add_runtime_flags(fig)

    sweep = sub.add_parser(
        "sweep", help="run a scheme x workload grid and print speedups"
    )
    sweep.add_argument("--schemes", nargs="+", required=True,
                       metavar="scheme",
                       help="registered scheme ids (see also: figure modules "
                            "register their sweep points on import)")
    sweep.add_argument("--workloads", nargs="*", default=None,
                       choices=sorted(SUITE), metavar="workload",
                       help="workload subset (default: whole suite)")
    sweep.add_argument("--recovery", default="flush",
                       choices=[m.value for m in RecoveryMode])
    sweep.add_argument("--instructions", type=int, default=8_000)
    sweep.add_argument("--trace", default=None, metavar="DIR",
                       help="run under the observability stack; write Chrome "
                            "traces (and flight dumps on failure) into DIR")
    sweep.add_argument("--columnar", action="store_true",
                       help="simulate from the struct-of-arrays trace engine "
                            "(bit-identical results, bounded memory)")
    sweep.add_argument("--fabric", action="store_true",
                       help="publish each trace once into shared memory and "
                            "attach it from every worker (implies columnar)")
    _add_runtime_flags(sweep)

    chaos = sub.add_parser(
        "chaos",
        help="run a sweep under deterministic fault injection and report "
             "how the runtime recovered",
    )
    chaos.add_argument("--fault", default=None, metavar="SPEC",
                       help="fault spec, e.g. 'crash@gzip/dlvp:1' "
                            f"(default: ${FAULT_SPEC_ENV})")
    chaos.add_argument("--schemes", nargs="+", default=["baseline", "dlvp"],
                       metavar="scheme")
    chaos.add_argument("--workloads", nargs="*", default=None,
                       choices=sorted(SUITE), metavar="workload")
    chaos.add_argument("--instructions", type=int, default=2_000)
    _add_runtime_flags(chaos)

    cache = sub.add_parser(
        "cache", help="audit (verify) or prune (gc) the result cache"
    )
    cache.add_argument("action", choices=["verify", "gc"])
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache root (default: $REPRO_CACHE_DIR or "
                            "~/.cache/repro)")
    cache.add_argument("--max-age-days", type=float, default=None,
                       help="gc: drop entries older than this")
    cache.add_argument("--max-size-mb", type=float, default=None,
                       help="gc: prune oldest entries until under this size")

    bench = sub.add_parser(
        "bench",
        help="benchmark the simulator itself (inst/s per scheme)",
    )
    bench.add_argument("target", choices=["throughput", "sweep"],
                       help="throughput: simulate() inst/s per scheme; "
                            "sweep: end-to-end grid wall-clock, shared trace "
                            "fabric off vs on")
    bench.add_argument("--workload", default="gzip",
                       choices=sorted(SUITE),
                       help="throughput: the single workload to time")
    bench.add_argument("--workloads", nargs="+", default=None,
                       choices=sorted(SUITE), metavar="workload",
                       help="sweep: the grid's workload axis "
                            "(default: gzip perlbmk nat)")
    bench.add_argument("--instructions", type=int, default=None,
                       help="default: 24000 (throughput) / 40000 (sweep)")
    bench.add_argument("--jobs", type=int, default=1,
                       help="sweep: worker processes per grid run")
    bench.add_argument("--schemes", nargs="+", metavar="scheme",
                       default=["baseline"] + list(_RUN_SCHEMES),
                       help="scheme ids to time (default: all built-ins)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="simulate() runs per scheme; best is reported")
    bench.add_argument("--columnar", action="store_true",
                       help="time the columnar (struct-of-arrays) engine "
                            "(default: both engines)")
    bench.add_argument("--object", action="store_true",
                       help="time the object (Instruction-list) engine "
                            "(default: both engines)")
    bench.add_argument("--output", default=None, metavar="FILE",
                       help="write the JSON report (e.g. BENCH_pr10.json)")
    bench.add_argument("--check", default=None, metavar="FILE",
                       help="fail if inst/s regresses versus this "
                            "committed report")
    bench.add_argument("--max-regression", type=float, default=0.20,
                       metavar="FRACTION",
                       help="allowed best-of-N inst/s drop for --check "
                            "(default 0.20, the same value CI enforces)")

    tr = sub.add_parser(
        "trace",
        help="run one traced simulation (Chrome trace + interval metrics "
             "+ flight recorder)",
    )
    tr.add_argument("workload", choices=sorted(SUITE), metavar="workload")
    tr.add_argument("--scheme", default="dlvp",
                    help="dlvp | cap | vtage | dvtage | tournament | baseline")
    tr.add_argument("--out", default="trace.json", metavar="FILE",
                    help="Chrome trace output path (default: trace.json)")
    tr.add_argument("--instructions", type=int, default=16_000)
    tr.add_argument("--interval", type=int, default=10_000,
                    help="interval-metrics bin size in instructions")
    tr.add_argument("--flight", type=int, default=256,
                    help="flight-recorder ring capacity (events)")
    tr.add_argument("--recovery", default="flush",
                    choices=[m.value for m in RecoveryMode])
    tr.add_argument("--fault", default=None, metavar="SPEC",
                    help="fault spec; a matching raise rule trips mid-run "
                         f"(default: ${FAULT_SPEC_ENV})")
    tr.add_argument("--cache-dir", default=None, metavar="DIR")
    tr.add_argument("--journal", default=None, metavar="FILE",
                    help="JSONL journal (default: <cache-dir>/last-run.jsonl)")

    obs = sub.add_parser(
        "observe", help="report on journaled traced runs"
    )
    obs.add_argument("action", choices=["report"])
    obs.add_argument("--journal", default=None, metavar="FILE",
                     help="journal to read (default: <cache-dir>/last-run.jsonl)")
    obs.add_argument("--cache-dir", default=None, metavar="DIR")
    obs.add_argument("--last", type=int, default=8,
                     help="show at most the last N traced runs (default 8)")

    srv = sub.add_parser(
        "serve",
        help="multi-tenant simulation farm: start the gateway, submit "
             "grids to it, watch its journal, drain it",
    )
    srv_sub = srv.add_subparsers(dest="verb", required=True)

    start = srv_sub.add_parser("start", help="run the farm gateway (blocks)")
    start.add_argument("--host", default=None,
                       help="bind address (default 127.0.0.1)")
    start.add_argument("--port", type=int, default=None,
                       help="bind port (default 8790; 0 = ephemeral)")
    start.add_argument("--workers", type=int, default=2, metavar="N",
                       help="crash-isolated worker leases (default 2)")
    start.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="shared store root; its serve.addr file "
                            "advertises this server to clients")
    start.add_argument("--no-cache", action="store_true",
                       help="serve without the shared result store")
    start.add_argument("--journal", default=None, metavar="FILE",
                       help="farm journal (default: <cache-dir>/serve.jsonl)")
    start.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS", help="per-job wall-clock limit")
    start.add_argument("--retries", type=int, default=1, metavar="N")
    start.add_argument("--backoff", type=float, default=0.0,
                       metavar="SECONDS")
    start.add_argument("--timeout-escalation", type=float, default=None,
                       metavar="FACTOR")
    start.add_argument("--fault", default=None, metavar="SPEC",
                       help="inject deterministic faults into farm workers "
                            f"(default: ${FAULT_SPEC_ENV})")
    start.add_argument("--max-cache-mb", type=float, default=None,
                       help="LRU-evict the shared store past this size")
    start.add_argument("--max-pending", type=int, default=512, metavar="N",
                       help="per-tenant queue bound (default 512)")
    start.add_argument("--max-queued", type=int, default=None, metavar="N",
                       help="global queued-cell bound; submissions past it "
                            "are shed with a retry_after hint")
    start.add_argument("--max-queued-cost", type=int, default=None,
                       metavar="INSTRUCTIONS",
                       help="global queued-work bound in simulated "
                            "instructions (admission control)")
    start.add_argument("--lease-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="watchdog: reap a worker attempt running "
                            "longer than this (hung-worker recovery)")
    start.add_argument("--heartbeat", type=float, default=None,
                       metavar="SECONDS",
                       help="journal a worker_heartbeat at this interval "
                            "while an attempt runs")
    start.add_argument("--grace", type=float, default=10.0, metavar="SECONDS",
                       help="shutdown drain window before in-flight work "
                            "is interrupted (default 10)")

    submit = srv_sub.add_parser(
        "submit", help="submit a sweep grid (falls back to in-process "
                       "execution when no server is reachable)"
    )
    submit.add_argument("--schemes", nargs="+", required=True,
                        metavar="scheme")
    submit.add_argument("--workloads", nargs="*", default=None,
                        choices=sorted(SUITE), metavar="workload",
                        help="workload subset (default: whole suite)")
    submit.add_argument("--instructions", type=int, default=8_000)
    submit.add_argument("--recovery", default="flush",
                        choices=[m.value for m in RecoveryMode])
    submit.add_argument("--tenant", default="default",
                        help="fairness/accounting identity (default: "
                             "'default')")
    submit.add_argument("--quiet", action="store_true",
                        help="do not stream per-job progress to stderr")
    submit.add_argument("--no-fallback", action="store_true",
                        help="fail instead of running in-process when no "
                             "server is reachable")
    submit.add_argument("--local-jobs", type=int, default=1, metavar="N",
                        help="worker processes for the in-process fallback")
    submit.add_argument("--reconnects", type=int, default=0, metavar="N",
                        help="on a dropped connection, reconnect and resume "
                             "by ticket up to N times (jittered backoff)")

    resume = srv_sub.add_parser(
        "resume", help="re-attach to a submitted ticket: replay settled "
                       "cells and stream the rest (survives client drops "
                       "and gateway restarts)"
    )
    resume.add_argument("ticket", help="ticket id from a prior submit")
    resume.add_argument("--quiet", action="store_true",
                        help="do not stream per-job progress to stderr")
    resume.add_argument("--reconnects", type=int, default=0, metavar="N",
                        help="further reconnect attempts while resuming")

    for verb in (submit, resume):
        verb.add_argument("--host", default=None)
        verb.add_argument("--port", type=int, default=None)
        verb.add_argument("--cache-dir", default=None, metavar="DIR")

    for name, help_text in (
        ("watch", "stream the farm journal until the server shuts down"),
        ("status", "one-line farm status (queues, workers, cache)"),
        ("shutdown", "drain the farm gracefully and stop it"),
    ):
        verb = srv_sub.add_parser(name, help=help_text)
        verb.add_argument("--host", default=None)
        verb.add_argument("--port", type=int, default=None)
        verb.add_argument("--cache-dir", default=None, metavar="DIR")
        if name == "shutdown":
            verb.add_argument("--grace", type=float, default=None,
                              metavar="SECONDS",
                              help="override the server's drain window")

    prof = sub.add_parser("profile", help="Figure 1/2 trace profiles")
    prof.add_argument("workloads", nargs="+", choices=sorted(SUITE),
                      metavar="workload")
    prof.add_argument("--instructions", type=int, default=16_000)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "figure": cmd_figure,
        "profile": cmd_profile,
        "sweep": cmd_sweep,
        "chaos": cmd_chaos,
        "cache": cmd_cache,
        "bench": cmd_bench,
        "trace": cmd_trace,
        "observe": cmd_observe,
        "serve": cmd_serve,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        # backstop: the runtime normally absorbs the signal and returns
        # partial results, but a Ctrl-C outside run_jobs lands here
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
