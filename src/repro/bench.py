"""Simulator throughput benchmark — ``python -m repro bench throughput``.

Measures how many *simulated* instructions per second ``simulate()``
sustains for each registered scheme on one workload trace — through
both trace engines (the object path over ``Instruction`` lists and the
columnar struct-of-arrays path) — and writes the numbers to a
``BENCH_*.json`` report (inst/s per scheme and engine, wall time, peak
RSS) so the simulator's own performance trajectory is tracked in the
repository alongside its accuracy.

The committed report doubles as a regression baseline:
``--check BENCH_pr9.json`` re-measures and fails when any scheme's
best-of-N inst/s falls more than ``--max-regression`` below the
committed number.  The gate is **coherent by construction**: the
default here, the CI invocation and this docstring all say the same
20% — best-of-N absorbs scheduler noise (which only ever slows a run
down), and the remaining machine-to-machine variance on the hosted
runners measures well under that margin at ``--repeats 5``.

Simulated *outcomes* are deliberately out of scope here: bit-identical
``SimResult``\\ s are locked by ``tests/test_golden_simresults.py``
(which exercises both engines), so this module only has to care about
speed.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from pathlib import Path
from typing import Sequence

BENCH_REPORT_NAME = "BENCH_pr9.json"
DEFAULT_WORKLOAD = "gzip"
DEFAULT_INSTRUCTIONS = 24_000
DEFAULT_REPEATS = 3
# One number, used everywhere: the default for --max-regression AND the
# value CI passes explicitly.  Keep the docstring above in sync.
DEFAULT_MAX_REGRESSION = 0.20
# Every registered scheme id, cheapest first; ``tournament`` runs two
# sub-predictors per load and dominates the wall time.
DEFAULT_SCHEMES = ("baseline", "dlvp", "cap", "vtage", "dvtage", "tournament")
DEFAULT_ENGINES = ("object", "columnar")

# report section per engine; "object" keeps the historical "schemes"
# key so older reports stay comparable.
_ENGINE_SECTIONS = {"object": "schemes", "columnar": "columnar_schemes"}


def peak_rss_kib() -> int:
    """Peak resident set size of this process, in KiB.

    ``ru_maxrss`` is KiB on Linux but bytes on macOS; normalise so the
    JSON report is comparable across both.
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        rss //= 1024
    return rss


def measure_scheme(trace, scheme_id: str, repeats: int = DEFAULT_REPEATS) -> dict:
    """Time ``simulate(trace, scheme)`` ``repeats`` times; report best.

    ``trace`` may be a :class:`~repro.trace.Trace` or a
    :class:`~repro.trace.ColumnarTrace` — ``simulate()`` dispatches on
    the type, so the same timing harness measures either engine.  A
    fresh scheme instance is built per repeat so no predictor state
    leaks between rounds; best-of-N is reported as the headline inst/s
    because scheduler noise only ever slows a run down.
    """
    from repro.pipeline.core_model import simulate
    from repro.runtime.registry import get_scheme

    spec = get_scheme(scheme_id)
    n = len(trace)
    rates = []
    wall = 0.0
    for _ in range(max(1, repeats)):
        scheme = spec.build()
        start = time.perf_counter()
        simulate(trace, scheme)
        elapsed = time.perf_counter() - start
        wall += elapsed
        rates.append(n / elapsed)
    return {
        "inst_per_s": round(max(rates)),
        "inst_per_s_mean": round(sum(rates) / len(rates)),
        "wall_s": round(wall, 3),
        "repeats": len(rates),
    }


def run_throughput(
    workload: str = DEFAULT_WORKLOAD,
    instructions: int = DEFAULT_INSTRUCTIONS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    repeats: int = DEFAULT_REPEATS,
    engines: Sequence[str] = DEFAULT_ENGINES,
    progress=None,
) -> dict:
    """Run the full throughput bench; returns the JSON-safe report.

    ``engines`` selects which trace representations to time: the
    object path fills the report's ``"schemes"`` section (its
    historical home), the columnar path ``"columnar_schemes"``.  The
    trace is generated once and converted, so both engines measure the
    exact same instruction stream.
    """
    from repro.trace import ColumnarTrace
    from repro.workloads import build_workload

    unknown = [e for e in engines if e not in _ENGINE_SECTIONS]
    if unknown:
        raise ValueError(f"unknown engine(s): {unknown}")
    t0 = time.perf_counter()
    trace = build_workload(workload, instructions)
    trace_s = time.perf_counter() - t0
    traces = {"object": trace}
    if "columnar" in engines:
        traces["columnar"] = ColumnarTrace.from_trace(trace)
    report = {
        "bench": "throughput",
        "workload": workload,
        "instructions": instructions,
        "trace_length": len(trace),
        "trace_build_s": round(trace_s, 3),
        "engines": list(engines),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    for engine in engines:
        results = {}
        for scheme_id in schemes:
            results[scheme_id] = measure_scheme(
                traces[engine], scheme_id, repeats
            )
            if progress is not None:
                progress(f"{engine}/{scheme_id}", results[scheme_id])
        report[_ENGINE_SECTIONS[engine]] = results
    report["wall_s"] = round(time.perf_counter() - t0, 3)
    report["peak_rss_kib"] = peak_rss_kib()
    return report


def write_report(report: dict, path: str | Path) -> Path:
    """Write a bench report as stable (sorted-key) JSON; returns path."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: str | Path) -> dict:
    """Read back a report written by :func:`write_report`."""
    return json.loads(Path(path).read_text())


def _usable_rate(entry) -> float | None:
    """Best-of-N inst/s of a report cell, or None when malformed."""
    if not isinstance(entry, dict):
        return None
    rate = entry.get("inst_per_s")
    if isinstance(rate, bool) or not isinstance(rate, (int, float)):
        return None
    return rate


def check_regression(
    current: dict,
    committed: dict,
    max_regression: float = DEFAULT_MAX_REGRESSION,
    warnings: list[str] | None = None,
) -> list[str]:
    """Compare a fresh report against a committed one.

    Returns a list of human-readable failures — empty means every
    (engine, scheme) present in both reports is within
    ``max_regression`` of its committed best-of-N inst/s.

    Mismatches between the two reports are *warned and skipped*, never
    failed: cells present on only one side (adding a scheme or an
    engine must not break CI retroactively), engine sections missing
    from either report, and entries without a usable ``inst_per_s``
    number (a malformed cell is a report problem, not a performance
    regression).  Pass a list as ``warnings`` to collect one message
    per skipped mismatch; the CLI prints them.
    """
    failures = []
    warn = warnings.append if warnings is not None else (lambda _msg: None)
    for engine, section in _ENGINE_SECTIONS.items():
        current_schemes = current.get(section)
        committed_schemes = committed.get(section)
        if current_schemes and not committed_schemes:
            warn(f"{engine}: committed report has no {section!r} section; "
                 f"skipping the whole engine")
        if committed_schemes and not current_schemes:
            warn(f"{engine}: fresh report has no {section!r} section; "
                 f"nothing to compare")
        current_schemes = current_schemes or {}
        committed_schemes = committed_schemes or {}
        for scheme_id in committed_schemes:
            if scheme_id not in current_schemes and current_schemes:
                warn(f"{engine}/{scheme_id}: in the committed report only; "
                     f"skipping")
        for scheme_id, entry in current_schemes.items():
            base = committed_schemes.get(scheme_id)
            if base is None:
                if committed_schemes:
                    warn(f"{engine}/{scheme_id}: not in the committed "
                         f"report; skipping")
                continue
            baseline_rate = _usable_rate(base)
            if baseline_rate is None or baseline_rate <= 0:
                warn(f"{engine}/{scheme_id}: committed entry has no usable "
                     f"inst_per_s; skipping")
                continue
            rate = _usable_rate(entry)
            if rate is None:
                warn(f"{engine}/{scheme_id}: fresh entry has no usable "
                     f"inst_per_s; skipping")
                continue
            floor = baseline_rate * (1.0 - max_regression)
            if rate < floor:
                failures.append(
                    f"{engine}/{scheme_id}: {rate:.0f} inst/s is "
                    f"{1 - rate / baseline_rate:.0%} below the committed "
                    f"{baseline_rate:.0f} inst/s (allowed: {max_regression:.0%})"
                )
    return failures
