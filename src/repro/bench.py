"""Simulator throughput benchmark — ``python -m repro bench throughput``.

Measures how many *simulated* instructions per second ``simulate()``
sustains for each registered scheme on one workload trace, and writes
the numbers to a ``BENCH_*.json`` report (inst/s per scheme, wall time,
peak RSS) so the simulator's own performance trajectory is tracked in
the repository alongside its accuracy.

The committed report doubles as a regression baseline:
``--check BENCH_pr3.json`` re-measures and fails when any scheme's
inst/s falls more than ``--max-regression`` (default 30%) below the
committed number — loose enough to absorb machine-to-machine variance,
tight enough to catch an accidental O(n) regression on the hot path.

Simulated *outcomes* are deliberately out of scope here: bit-identical
``SimResult``\\ s are locked by ``tests/test_golden_simresults.py``, so
this module only has to care about speed.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from pathlib import Path
from typing import Sequence

BENCH_REPORT_NAME = "BENCH_pr3.json"
DEFAULT_WORKLOAD = "gzip"
DEFAULT_INSTRUCTIONS = 24_000
DEFAULT_REPEATS = 3
DEFAULT_MAX_REGRESSION = 0.30
# Every registered scheme id, cheapest first; ``tournament`` runs two
# sub-predictors per load and dominates the wall time.
DEFAULT_SCHEMES = ("baseline", "dlvp", "cap", "vtage", "dvtage", "tournament")


def peak_rss_kib() -> int:
    """Peak resident set size of this process, in KiB.

    ``ru_maxrss`` is KiB on Linux but bytes on macOS; normalise so the
    JSON report is comparable across both.
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        rss //= 1024
    return rss


def measure_scheme(trace, scheme_id: str, repeats: int = DEFAULT_REPEATS) -> dict:
    """Time ``simulate(trace, scheme)`` ``repeats`` times; report best.

    A fresh scheme instance is built per repeat so no predictor state
    leaks between rounds; best-of-N is reported as the headline inst/s
    because scheduler noise only ever slows a run down.
    """
    from repro.pipeline.core_model import simulate
    from repro.runtime.registry import get_scheme

    spec = get_scheme(scheme_id)
    n = len(trace)
    rates = []
    wall = 0.0
    for _ in range(max(1, repeats)):
        scheme = spec.build()
        start = time.perf_counter()
        simulate(trace, scheme)
        elapsed = time.perf_counter() - start
        wall += elapsed
        rates.append(n / elapsed)
    return {
        "inst_per_s": round(max(rates)),
        "inst_per_s_mean": round(sum(rates) / len(rates)),
        "wall_s": round(wall, 3),
        "repeats": len(rates),
    }


def run_throughput(
    workload: str = DEFAULT_WORKLOAD,
    instructions: int = DEFAULT_INSTRUCTIONS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    repeats: int = DEFAULT_REPEATS,
    progress=None,
) -> dict:
    """Run the full throughput bench; returns the JSON-safe report."""
    from repro.workloads import build_workload

    t0 = time.perf_counter()
    trace = build_workload(workload, instructions)
    trace_s = time.perf_counter() - t0
    results = {}
    for scheme_id in schemes:
        results[scheme_id] = measure_scheme(trace, scheme_id, repeats)
        if progress is not None:
            progress(scheme_id, results[scheme_id])
    return {
        "bench": "throughput",
        "workload": workload,
        "instructions": instructions,
        "trace_length": len(trace),
        "trace_build_s": round(trace_s, 3),
        "wall_s": round(time.perf_counter() - t0, 3),
        "peak_rss_kib": peak_rss_kib(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "schemes": results,
    }


def write_report(report: dict, path: str | Path) -> Path:
    """Write a bench report as stable (sorted-key) JSON; returns path."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: str | Path) -> dict:
    """Read back a report written by :func:`write_report`."""
    return json.loads(Path(path).read_text())


def check_regression(
    current: dict,
    committed: dict,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> list[str]:
    """Compare a fresh report against a committed one.

    Returns a list of human-readable failures — empty means every
    scheme present in both reports is within ``max_regression`` of its
    committed inst/s.  Schemes only on one side are skipped (adding a
    scheme must not break CI retroactively).
    """
    failures = []
    committed_schemes = committed.get("schemes", {})
    for scheme_id, entry in current.get("schemes", {}).items():
        base = committed_schemes.get(scheme_id)
        if base is None:
            continue
        baseline_rate = base.get("inst_per_s", 0)
        if baseline_rate <= 0:
            continue
        rate = entry["inst_per_s"]
        floor = baseline_rate * (1.0 - max_regression)
        if rate < floor:
            failures.append(
                f"{scheme_id}: {rate:.0f} inst/s is "
                f"{1 - rate / baseline_rate:.0%} below the committed "
                f"{baseline_rate:.0f} inst/s (allowed: {max_regression:.0%})"
            )
    return failures
