"""Simulator performance benchmarks — ``python -m repro bench ...``.

Two benches, one report file:

* ``bench throughput`` measures how many *simulated* instructions per
  second ``simulate()`` sustains for each registered scheme on one
  workload trace — through both trace engines (the object path over
  ``Instruction`` lists and the columnar struct-of-arrays path).
* ``bench sweep`` measures end-to-end multi-scheme grid wall-clock
  through the :class:`~repro.runtime.Runtime`, fabric off (stock
  per-cell dispatch) versus fabric on (``trace_format="shared"``:
  generate each trace once, publish to shared memory, dispatch cells
  grouped by trace) — asserting along the way that both modes produce
  bit-identical per-cell results.

Numbers land in a ``BENCH_*.json`` report (inst/s per scheme and
engine, sweep wall-clock per fabric mode, wall time, peak RSS of this
process and its workers) so the simulator's own performance trajectory
is tracked in the repository alongside its accuracy.

The committed report doubles as a regression baseline:
``--check BENCH_pr10.json`` re-measures and fails when any scheme's
(or sweep mode's) best inst/s falls more than ``--max-regression``
below the committed number.  The gate is **coherent by construction**:
the default here, the CI invocation and this docstring all say the
same 20% — best-of-N absorbs scheduler noise (which only ever slows a
run down), and the remaining machine-to-machine variance on the hosted
runners measures well under that margin at ``--repeats 5``.

Simulated *outcomes* are deliberately out of scope here: bit-identical
``SimResult``\\ s are locked by ``tests/test_golden_simresults.py``
(which exercises all engines, shared included), so this module only
has to care about speed.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from pathlib import Path
from typing import Sequence

BENCH_REPORT_NAME = "BENCH_pr10.json"
DEFAULT_WORKLOAD = "gzip"
DEFAULT_INSTRUCTIONS = 24_000
DEFAULT_REPEATS = 3
# One number, used everywhere: the default for --max-regression AND the
# value CI passes explicitly.  Keep the docstring above in sync.
DEFAULT_MAX_REGRESSION = 0.20
# Every registered scheme id, cheapest first; ``tournament`` runs two
# sub-predictors per load and dominates the wall time.
DEFAULT_SCHEMES = ("baseline", "dlvp", "cap", "vtage", "dvtage", "tournament")
DEFAULT_ENGINES = ("object", "columnar")
DEFAULT_SWEEP_WORKLOADS = ("gzip", "perlbmk", "nat")
# Large enough that per-process cold-start noise (allocator, bytecode
# warm-up) stops dominating the per-cell numbers; the measured fabric
# speedup climbs with instruction count and is near its asymptote here.
DEFAULT_SWEEP_INSTRUCTIONS = 40_000

# report section per engine; "object" keeps the historical "schemes"
# key so older reports stay comparable.
_ENGINE_SECTIONS = {"object": "schemes", "columnar": "columnar_schemes"}


def peak_rss_kib() -> int:
    """Peak resident set size of this process, in KiB.

    ``ru_maxrss`` is KiB on Linux but bytes on macOS; normalise so the
    JSON report is comparable across both.
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        rss //= 1024
    return rss


def child_peak_rss_kib() -> int:
    """Peak RSS over all reaped child processes of this process, KiB.

    ``RUSAGE_CHILDREN`` reports the *maximum* across terminated
    children, so for the sweep bench (whose simulation happens in pool
    workers) this is the worker-side memory headline that
    :func:`peak_rss_kib` — parent-only — cannot see.  Zero when no
    child has been reaped yet.
    """
    rss = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    if sys.platform == "darwin":
        rss //= 1024
    return rss


def measure_scheme(trace, scheme_id: str, repeats: int = DEFAULT_REPEATS) -> dict:
    """Time ``simulate(trace, scheme)`` ``repeats`` times; report best.

    ``trace`` may be a :class:`~repro.trace.Trace` or a
    :class:`~repro.trace.ColumnarTrace` — ``simulate()`` dispatches on
    the type, so the same timing harness measures either engine.  A
    fresh scheme instance is built per repeat so no predictor state
    leaks between rounds; best-of-N is reported as the headline inst/s
    because scheduler noise only ever slows a run down.
    """
    from repro.pipeline.core_model import simulate
    from repro.runtime.registry import get_scheme

    spec = get_scheme(scheme_id)
    n = len(trace)
    rates = []
    wall = 0.0
    for _ in range(max(1, repeats)):
        scheme = spec.build()
        start = time.perf_counter()
        simulate(trace, scheme)
        elapsed = time.perf_counter() - start
        wall += elapsed
        rates.append(n / elapsed)
    return {
        "inst_per_s": round(max(rates)),
        "inst_per_s_mean": round(sum(rates) / len(rates)),
        "wall_s": round(wall, 3),
        "repeats": len(rates),
    }


def run_throughput(
    workload: str = DEFAULT_WORKLOAD,
    instructions: int = DEFAULT_INSTRUCTIONS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    repeats: int = DEFAULT_REPEATS,
    engines: Sequence[str] = DEFAULT_ENGINES,
    progress=None,
) -> dict:
    """Run the full throughput bench; returns the JSON-safe report.

    ``engines`` selects which trace representations to time: the
    object path fills the report's ``"schemes"`` section (its
    historical home), the columnar path ``"columnar_schemes"``.  The
    trace is generated once and converted, so both engines measure the
    exact same instruction stream.
    """
    from repro.trace import ColumnarTrace
    from repro.workloads import build_workload

    unknown = [e for e in engines if e not in _ENGINE_SECTIONS]
    if unknown:
        raise ValueError(f"unknown engine(s): {unknown}")
    t0 = time.perf_counter()
    trace = build_workload(workload, instructions)
    trace_s = time.perf_counter() - t0
    traces = {"object": trace}
    if "columnar" in engines:
        traces["columnar"] = ColumnarTrace.from_trace(trace)
    report = {
        "bench": "throughput",
        "workload": workload,
        "instructions": instructions,
        "trace_length": len(trace),
        "trace_build_s": round(trace_s, 3),
        "engines": list(engines),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    for engine in engines:
        results = {}
        for scheme_id in schemes:
            results[scheme_id] = measure_scheme(
                traces[engine], scheme_id, repeats
            )
            if progress is not None:
                progress(f"{engine}/{scheme_id}", results[scheme_id])
        report[_ENGINE_SECTIONS[engine]] = results
    report["wall_s"] = round(time.perf_counter() - t0, 3)
    report["peak_rss_kib"] = peak_rss_kib()
    report["children_peak_rss_kib"] = child_peak_rss_kib()
    return report


def run_sweep(
    workloads: Sequence[str] = DEFAULT_SWEEP_WORKLOADS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    instructions: int = DEFAULT_SWEEP_INSTRUCTIONS,
    jobs: int = 1,
    progress=None,
) -> dict:
    """End-to-end grid wall-clock, trace fabric off vs on.

    Runs the same (scheme x workload) grid twice through
    :class:`~repro.runtime.Runtime`, each against a fresh temporary
    cache so neither mode inherits the other's traces or results:

    * ``fabric_off`` — stock defaults: object-trace engine, one worker
      dispatch per cell, every cell paying its own trace acquisition.
    * ``fabric_on`` — ``trace_format="shared"``: each distinct trace is
      generated once in the parent, published to shared memory, and the
      grid is dispatched in trace groups.

    The two grids must settle **bit-identical** per-cell results —
    a mismatch raises, because it would mean the fabric changed
    simulation outcomes, which no amount of speedup excuses.  The
    returned report's ``"sweep"`` section carries per-mode wall-clock
    and end-to-end inst/s (= cells x instructions / wall) plus their
    ratio as ``speedup``.
    """
    import tempfile

    from repro.runtime import Runtime

    workloads = list(workloads)
    schemes = list(schemes)
    cells = len(schemes) * len(workloads)
    t0 = time.perf_counter()
    modes: dict[str, dict] = {}
    results: dict[str, dict] = {}
    for mode, trace_format in (("fabric_off", "object"),
                               ("fabric_on", "shared")):
        with tempfile.TemporaryDirectory(
            prefix=f"repro-sweep-{mode}-"
        ) as cache_dir:
            runtime = Runtime(jobs=jobs, cache_dir=cache_dir,
                              trace_format=trace_format)
            start = time.perf_counter()
            grid = runtime.run_grid(schemes, workloads, instructions)
            wall = time.perf_counter() - start
        failures = grid.failures()
        if failures:
            first = failures[0]
            raise RuntimeError(
                f"sweep {mode}: {len(failures)} cell(s) failed, e.g. "
                f"{first.job.scheme_id}/{first.job.workload}: {first.error}"
            )
        results[mode] = {
            f"{scheme}/{workload}": grid.result(scheme, workload).to_dict()
            for scheme in schemes
            for workload in workloads
        }
        modes[mode] = {
            "engine": trace_format,
            "wall_s": round(wall, 3),
            "inst_per_s": round(cells * instructions / wall),
        }
        if progress is not None:
            progress(f"sweep/{mode}", modes[mode])
    if results["fabric_off"] != results["fabric_on"]:
        differing = sorted(
            cell for cell in results["fabric_off"]
            if results["fabric_off"][cell] != results["fabric_on"].get(cell)
        )
        raise RuntimeError(
            "sweep results differ between fabric modes — the fabric must "
            f"never change outcomes (differing cells: {differing})"
        )
    return {
        "bench": "sweep",
        "workloads": workloads,
        "schemes": schemes,
        "instructions": instructions,
        "cells": cells,
        "jobs": jobs,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "sweep": {
            "fabric_off": modes["fabric_off"],
            "fabric_on": modes["fabric_on"],
            "speedup": round(
                modes["fabric_off"]["wall_s"] / modes["fabric_on"]["wall_s"],
                3,
            ),
            "identical_results": True,
        },
        "wall_s": round(time.perf_counter() - t0, 3),
        "peak_rss_kib": peak_rss_kib(),
        "children_peak_rss_kib": child_peak_rss_kib(),
    }


def write_report(report: dict, path: str | Path) -> Path:
    """Write a bench report as stable (sorted-key) JSON; returns path."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: str | Path) -> dict:
    """Read back a report written by :func:`write_report`."""
    return json.loads(Path(path).read_text())


def _usable_rate(entry) -> float | None:
    """Best-of-N inst/s of a report cell, or None when malformed."""
    if not isinstance(entry, dict):
        return None
    rate = entry.get("inst_per_s")
    if isinstance(rate, bool) or not isinstance(rate, (int, float)):
        return None
    return rate


def check_regression(
    current: dict,
    committed: dict,
    max_regression: float = DEFAULT_MAX_REGRESSION,
    warnings: list[str] | None = None,
) -> list[str]:
    """Compare a fresh report against a committed one.

    Returns a list of human-readable failures — empty means every
    (engine, scheme) present in both reports is within
    ``max_regression`` of its committed best-of-N inst/s.

    Mismatches between the two reports are *warned and skipped*, never
    failed: cells present on only one side (adding a scheme or an
    engine must not break CI retroactively), engine sections missing
    from either report, and entries without a usable ``inst_per_s``
    number (a malformed cell is a report problem, not a performance
    regression).  Pass a list as ``warnings`` to collect one message
    per skipped mismatch; the CLI prints them.

    The same gate covers the ``"sweep"`` section's two fabric modes
    (end-to-end inst/s), with the same warn-and-skip treatment for
    reports that predate — or lack — the sweep bench.
    """
    failures = []
    warn = warnings.append if warnings is not None else (lambda _msg: None)
    for engine, section in _ENGINE_SECTIONS.items():
        # sweep-only reports carry a "schemes" *list* (the grid config),
        # not a per-scheme throughput mapping — treat it as absent
        current_schemes = current.get(section)
        if not isinstance(current_schemes, dict):
            current_schemes = None
        committed_schemes = committed.get(section)
        if not isinstance(committed_schemes, dict):
            committed_schemes = None
        if current_schemes and not committed_schemes:
            warn(f"{engine}: committed report has no {section!r} section; "
                 f"skipping the whole engine")
        if committed_schemes and not current_schemes:
            warn(f"{engine}: fresh report has no {section!r} section; "
                 f"nothing to compare")
        current_schemes = current_schemes or {}
        committed_schemes = committed_schemes or {}
        for scheme_id in committed_schemes:
            if scheme_id not in current_schemes and current_schemes:
                warn(f"{engine}/{scheme_id}: in the committed report only; "
                     f"skipping")
        for scheme_id, entry in current_schemes.items():
            base = committed_schemes.get(scheme_id)
            if base is None:
                if committed_schemes:
                    warn(f"{engine}/{scheme_id}: not in the committed "
                         f"report; skipping")
                continue
            baseline_rate = _usable_rate(base)
            if baseline_rate is None or baseline_rate <= 0:
                warn(f"{engine}/{scheme_id}: committed entry has no usable "
                     f"inst_per_s; skipping")
                continue
            rate = _usable_rate(entry)
            if rate is None:
                warn(f"{engine}/{scheme_id}: fresh entry has no usable "
                     f"inst_per_s; skipping")
                continue
            floor = baseline_rate * (1.0 - max_regression)
            if rate < floor:
                failures.append(
                    f"{engine}/{scheme_id}: {rate:.0f} inst/s is "
                    f"{1 - rate / baseline_rate:.0%} below the committed "
                    f"{baseline_rate:.0f} inst/s (allowed: {max_regression:.0%})"
                )
    current_sweep = current.get("sweep")
    committed_sweep = committed.get("sweep")
    if current_sweep and not isinstance(committed_sweep, dict):
        warn("sweep: committed report has no 'sweep' section; skipping")
        committed_sweep = {}
    if committed_sweep and not isinstance(current_sweep, dict):
        warn("sweep: fresh report has no 'sweep' section; nothing to compare")
        current_sweep = {}
    current_sweep = current_sweep if isinstance(current_sweep, dict) else {}
    committed_sweep = (
        committed_sweep if isinstance(committed_sweep, dict) else {}
    )
    for mode in ("fabric_off", "fabric_on"):
        base = committed_sweep.get(mode)
        if base is None:
            if mode in current_sweep and committed_sweep:
                warn(f"sweep/{mode}: not in the committed report; skipping")
            continue
        baseline_rate = _usable_rate(base)
        if baseline_rate is None or baseline_rate <= 0:
            warn(f"sweep/{mode}: committed entry has no usable inst_per_s; "
                 f"skipping")
            continue
        if mode not in current_sweep:
            if current_sweep:
                warn(f"sweep/{mode}: in the committed report only; skipping")
            continue
        rate = _usable_rate(current_sweep.get(mode))
        if rate is None:
            warn(f"sweep/{mode}: fresh entry has no usable inst_per_s; "
                 f"skipping")
            continue
        floor = baseline_rate * (1.0 - max_regression)
        if rate < floor:
            failures.append(
                f"sweep/{mode}: {rate:.0f} inst/s is "
                f"{1 - rate / baseline_rate:.0%} below the committed "
                f"{baseline_rate:.0f} inst/s (allowed: {max_regression:.0%})"
            )
    return failures
