"""Interval metrics — per-N-instruction time series of a traced run.

The paper's aggregate coverage/accuracy tables hide warm-up dynamics:
the FPC confidence ramp means DLVP predicts almost nothing for the
first few thousand instructions of a phase, then coverage climbs as
counters saturate.  Binning metrics per 10k committed instructions
makes that ramp (and phase changes in ``mixed_phases`` workloads)
visible; the rows land in ``SimResult.intervals`` and survive the
result cache round-trip.
"""

from __future__ import annotations

from typing import Any

from repro.observe.tracer import Tracer

DEFAULT_INTERVAL = 10_000


class IntervalMetricsCollector(Tracer):
    """Accumulate per-interval rows keyed by committed instruction count.

    Each row is a JSON-safe dict::

        {"start": int, "end": int, "cycles": int, "ipc": float,
         "loads": int, "value_predictions": int, "value_correct": int,
         "coverage": float, "accuracy": float,
         "probes": int, "probe_hits": int,
         "paq_peak_occupancy": int, "paq_flushes": int,
         "recoveries_branch": int, "recoveries_value": int}
    """

    def __init__(self, interval: int = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.rows: list[dict] = []
        self._reset_window()
        self._window_start = 0
        self._last_cycle = 0
        self._prev_cycle = 0

    def _reset_window(self) -> None:
        self._loads = 0
        self._predictions = 0
        self._correct = 0
        self._probes = 0
        self._probe_hits = 0
        self._paq_peak = 0
        self._paq_flushes = 0
        self._rec_branch = 0
        self._rec_value = 0

    def _close_window(self, end_index: int) -> None:
        cycles = self._last_cycle - self._prev_cycle
        insts = end_index - self._window_start
        self.rows.append(
            {
                "start": self._window_start,
                "end": end_index,
                "cycles": cycles,
                "ipc": insts / cycles if cycles else 0.0,
                "loads": self._loads,
                "value_predictions": self._predictions,
                "value_correct": self._correct,
                "coverage": self._predictions / self._loads if self._loads else 0.0,
                "accuracy": (
                    self._correct / self._predictions if self._predictions else 1.0
                ),
                "probes": self._probes,
                "probe_hits": self._probe_hits,
                "paq_peak_occupancy": self._paq_peak,
                "paq_flushes": self._paq_flushes,
                "recoveries_branch": self._rec_branch,
                "recoveries_value": self._rec_value,
            }
        )
        self._window_start = end_index
        self._prev_cycle = self._last_cycle
        self._reset_window()

    # ---- hooks -----------------------------------------------------------

    def on_run_start(self, trace_name: str, scheme_name: str, instructions: int) -> None:
        self.rows = []
        self._window_start = 0
        self._last_cycle = 0
        self._prev_cycle = 0
        self._reset_window()

    def on_commit(self, index: int, cycle: int, op: Any) -> None:
        self._last_cycle = cycle
        if index + 1 - self._window_start >= self.interval:
            self._close_window(index + 1)

    def on_fetch_predict(
        self, cycle: int, pc: int, slot: int | None, predicted: bool
    ) -> None:
        pass

    def on_demand_access(
        self,
        pc: int,
        addr: int,
        is_store: bool,
        latency: int,
        l1_hit: bool,
        tlb_hit: bool,
    ) -> None:
        if not is_store:
            self._loads += 1

    def on_vpe_verdict(self, cycle: int, pc: int, predicted: bool, correct: bool) -> None:
        if predicted:
            self._predictions += 1
            if correct:
                self._correct += 1

    def on_probe(
        self,
        cycle: int,
        pc: int,
        addr: int,
        hit: bool,
        way_predicted: bool,
        way_mispredicted: bool,
    ) -> None:
        self._probes += 1
        if hit:
            self._probe_hits += 1

    def on_paq_enqueue(self, cycle: int, addr: int, occupancy: int) -> None:
        if occupancy > self._paq_peak:
            self._paq_peak = occupancy

    def on_paq_flush(self, cleared: int) -> None:
        self._paq_flushes += 1

    def on_recovery(self, cycle: int, kind: str, pc: int) -> None:
        if kind == "branch":
            self._rec_branch += 1
        else:
            self._rec_value += 1

    def on_run_end(self, result: Any) -> None:
        if self._window_start < result.instructions:
            self._close_window(result.instructions)
        result.intervals = self.rows


def render_report(intervals: list[dict]) -> str:
    """Plain-text table of interval rows (for ``repro observe report``)."""
    if not intervals:
        return "(no interval data)"
    header = (
        f"{'insts':>14}  {'ipc':>6}  {'loads':>7}  {'cov%':>6}  "
        f"{'acc%':>6}  {'probes':>7}  {'paq^':>5}  {'flush':>5}"
    )
    lines = [header, "-" * len(header)]
    for row in intervals:
        span = f"{row['start']}-{row['end']}"
        lines.append(
            f"{span:>14}  {row['ipc']:>6.3f}  {row['loads']:>7}  "
            f"{row['coverage'] * 100:>6.2f}  {row['accuracy'] * 100:>6.2f}  "
            f"{row['probes']:>7}  {row['paq_peak_occupancy']:>5}  "
            f"{row['paq_flushes']:>5}"
        )
    return "\n".join(lines)
