"""Flight recorder — the last N events preceding a failure.

A bounded ring buffer over the firehose: cheap enough to leave on for
long runs, and when a simulation dies (a real exception or an injected
``raise`` fault from :mod:`repro.faults`) the tail of the buffer is the
black-box record of what the machine was doing right before the end.

:class:`FaultTripwire` is the observe-side integration with the fault
plan grammar: a ``raise`` rule that selects a traced run arms a
deterministic mid-run trip (at half the instruction count by default),
so the flight recorder's dump can be exercised — and asserted on — at
a reproducible point inside ``simulate()`` rather than before it runs.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any

from repro.faults.plan import FaultInjected, FaultRule
from repro.observe.tracer import Tracer

DEFAULT_CAPACITY = 256


class FlightRecorder(Tracer):
    """Ring buffer of the most recent events, dumpable on failure."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring: deque[dict] = deque(maxlen=capacity)
        self.seen = 0

    def emit(self, kind: str, **fields: Any) -> None:
        self.seen += 1
        fields["kind"] = kind
        self._ring.append(fields)

    def on_run_end(self, result: Any) -> None:
        # Keep the tail focused on pre-failure events; a clean run end
        # is still recorded so dumps distinguish "finished" from "died".
        self.emit("run_end", cycles=result.cycles, instructions=result.instructions)

    def dump(self) -> list[dict]:
        """The buffered tail, oldest first."""
        return list(self._ring)

    def write(self, path) -> None:
        payload = {
            "events_seen": self.seen,
            "capacity": self.capacity,
            "tail": self.dump(),
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, default=str)


class FaultTripwire(Tracer):
    """Raise an injected fault mid-simulation, deterministically.

    Armed from a ``raise`` rule of a :class:`repro.faults.FaultPlan`;
    trips when the committed-instruction index reaches ``trip_at``
    (default: half the run, fixed at ``on_run_start``).  The other
    fault kinds (crash/hang/slow/corrupt_cache) stay worker-side in
    :func:`repro.faults.inject` — only ``raise`` moves inside the run,
    because only it needs to interact with the flight recorder.
    """

    def __init__(self, rule: FaultRule, trip_at: int | None = None) -> None:
        if rule.kind != "raise":
            raise ValueError(f"tripwire needs a raise rule, got {rule.kind!r}")
        self.rule = rule
        self.trip_at = trip_at
        self.tripped = False

    def on_run_start(self, trace_name: str, scheme_name: str, instructions: int) -> None:
        if self.trip_at is None:
            self.trip_at = max(1, instructions // 2)

    def on_commit(self, index: int, cycle: int, op: Any) -> None:
        if not self.tripped and self.trip_at is not None and index >= self.trip_at:
            self.tripped = True
            raise FaultInjected(
                f"injected fault ({self.rule.clause()}) at instruction "
                f"{index}, cycle {cycle}"
            )
