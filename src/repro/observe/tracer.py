"""Tracer protocol — the event taxonomy of the observability layer.

Every instrumentable component (the timing model, DLVP engine, PAQ,
LSCD, PVT, memory hierarchy) accepts an optional tracer through an
``attach_tracer`` method and fires the hooks below behind a single
``tracer is not None`` guard.  With no tracer attached the simulator
runs its PR 3 inlined fast paths untouched — zero overhead, bit
-identical results.  With one attached, the guarded sites dispatch to
the reference implementations, which are golden-verified to match the
inlined paths exactly.

:class:`Tracer` is a concrete no-op base, not an ABC: backends override
only the hooks they care about.  Every default hook forwards to
:meth:`Tracer.emit` with the event kind and keyword fields, so firehose
backends (Chrome trace export, the flight recorder) override a single
method and see every event uniformly.

Event taxonomy
--------------

==================  ====================================================
hook                meaning
==================  ====================================================
on_run_start        simulation begins (trace, scheme, instruction count)
on_run_end          simulation finished; receives the ``SimResult``
on_commit           an instruction committed
on_fetch_predict    fetch-side prediction attempt for a load
on_vpe_verdict      value-prediction validation outcome at execute
on_recovery         pipeline flush (``kind`` is ``branch`` or ``value``)
on_demand_access    demand load/store reached the memory hierarchy
on_probe            DLVP speculative L1 probe resolved
on_paq_enqueue      PAQ accepted a predicted address
on_paq_reject       PAQ full; prediction dropped at enqueue
on_paq_drop         PAQ entry aged out before its probe issued
on_paq_service      PAQ entry's probe issued (``bypass``: queue was
                    empty when it entered)
on_paq_flush        pipeline flush cleared the PAQ
on_lscd_filter      LSCD barred a load from predicting/training
on_lscd_insert      conflicting load PC recorded in the LSCD
on_pvt_reject       PVT full; prediction became a no-prediction
on_apt_train        APT trained (outcome: allocate/evict/decay/
                    confirm/hold/reset)
==================  ====================================================
"""

from __future__ import annotations

from typing import Any


class Tracer:
    """No-op base tracer; subclass and override what you need."""

    def emit(self, kind: str, **fields: Any) -> None:
        """Generic sink every default hook forwards to.  No-op here."""

    # ---- run lifecycle --------------------------------------------------

    def on_run_start(self, trace_name: str, scheme_name: str, instructions: int) -> None:
        self.emit(
            "run_start",
            trace=trace_name,
            scheme=scheme_name,
            instructions=instructions,
        )

    def on_run_end(self, result: Any) -> None:
        self.emit("run_end", cycles=result.cycles, instructions=result.instructions)

    # ---- core pipeline --------------------------------------------------

    def on_commit(self, index: int, cycle: int, op: Any) -> None:
        self.emit("commit", index=index, cycle=cycle, op=str(op))

    def on_fetch_predict(
        self, cycle: int, pc: int, slot: int | None, predicted: bool
    ) -> None:
        self.emit("fetch_predict", cycle=cycle, pc=pc, slot=slot, predicted=predicted)

    def on_vpe_verdict(self, cycle: int, pc: int, predicted: bool, correct: bool) -> None:
        self.emit("vpe_verdict", cycle=cycle, pc=pc, predicted=predicted, correct=correct)

    def on_recovery(self, cycle: int, kind: str, pc: int) -> None:
        # Field named ``reason`` (not ``kind``) so it can't collide with
        # emit()'s event-kind positional.
        self.emit("recovery", cycle=cycle, reason=kind, pc=pc)

    # ---- memory hierarchy -----------------------------------------------

    def on_demand_access(
        self,
        pc: int,
        addr: int,
        is_store: bool,
        latency: int,
        l1_hit: bool,
        tlb_hit: bool,
    ) -> None:
        self.emit(
            "demand_access",
            pc=pc,
            addr=addr,
            is_store=is_store,
            latency=latency,
            l1_hit=l1_hit,
            tlb_hit=tlb_hit,
        )

    def on_probe(
        self,
        cycle: int,
        pc: int,
        addr: int,
        hit: bool,
        way_predicted: bool,
        way_mispredicted: bool,
    ) -> None:
        self.emit(
            "probe",
            cycle=cycle,
            pc=pc,
            addr=addr,
            hit=hit,
            way_predicted=way_predicted,
            way_mispredicted=way_mispredicted,
        )

    # ---- PAQ -------------------------------------------------------------

    def on_paq_enqueue(self, cycle: int, addr: int, occupancy: int) -> None:
        self.emit("paq_enqueue", cycle=cycle, addr=addr, occupancy=occupancy)

    def on_paq_reject(self, cycle: int, addr: int) -> None:
        self.emit("paq_reject", cycle=cycle, addr=addr)

    def on_paq_drop(self, cycle: int, addr: int, age: int) -> None:
        self.emit("paq_drop", cycle=cycle, addr=addr, age=age)

    def on_paq_service(self, cycle: int, addr: int, bypass: bool) -> None:
        self.emit("paq_service", cycle=cycle, addr=addr, bypass=bypass)

    def on_paq_flush(self, cleared: int) -> None:
        self.emit("paq_flush", cleared=cleared)

    # ---- LSCD / PVT / APT ------------------------------------------------

    def on_lscd_filter(self, pc: int) -> None:
        self.emit("lscd_filter", pc=pc)

    def on_lscd_insert(self, pc: int, evicted: int | None, refreshed: bool) -> None:
        self.emit("lscd_insert", pc=pc, evicted=evicted, refreshed=refreshed)

    def on_pvt_reject(self, cycle: int, registers: int, occupied: int) -> None:
        self.emit("pvt_reject", cycle=cycle, registers=registers, occupied=occupied)

    def on_apt_train(self, pc: int, index: int, tag: int, outcome: str) -> None:
        self.emit("apt_train", pc=pc, index=index, tag=tag, outcome=outcome)


#: Hook names fanned out by :class:`MultiTracer`, and the full event
#: surface a backend may override.
HOOKS = tuple(name for name in vars(Tracer) if name.startswith("on_"))


class MultiTracer(Tracer):
    """Fan a single tracer attachment out to several backends.

    The simulator components hold one tracer reference each; stacking
    (e.g. interval metrics + Chrome export + flight recorder in one
    run) goes through this class.
    """

    def __init__(self, *tracers: Tracer) -> None:
        self.tracers = [t for t in tracers if t is not None]

    def __iter__(self):
        return iter(self.tracers)


def _make_fanout(name: str):
    def fanout(self, *args, **kwargs):
        for tracer in self.tracers:
            getattr(tracer, name)(*args, **kwargs)

    fanout.__name__ = name
    return fanout


for _name in HOOKS:
    setattr(MultiTracer, _name, _make_fanout(_name))
del _name
