"""Chrome trace export — load a simulation in ``chrome://tracing``.

Emits the Trace Event Format's JSON object form
(``{"traceEvents": [...]}``).  Cycle numbers map directly onto the
microsecond timestamp axis (1 cycle = 1 us on screen); discrete
simulator events become instant events (phase ``"i"``) on per-subsystem
"threads", and PAQ occupancy becomes a counter track (phase ``"C"``)
so the queue's fill level renders as an area chart.

Commit events are sampled (default 1 in 64) — at one instant event per
committed instruction a 24k-instruction run would drown every other
track and bloat the file ~20x.
"""

from __future__ import annotations

import json
from typing import Any

from repro.observe.tracer import Tracer

# Trace-viewer "thread ids": one lane per subsystem.
_TID_CORE = 0
_TID_PREDICT = 1
_TID_PAQ = 2
_TID_MEM = 3
_TID_TABLES = 4

_TID_FOR_KIND = {
    "run_start": _TID_CORE,
    "run_end": _TID_CORE,
    "commit": _TID_CORE,
    "recovery": _TID_CORE,
    "fetch_predict": _TID_PREDICT,
    "vpe_verdict": _TID_PREDICT,
    "probe": _TID_PREDICT,
    "paq_enqueue": _TID_PAQ,
    "paq_reject": _TID_PAQ,
    "paq_drop": _TID_PAQ,
    "paq_service": _TID_PAQ,
    "paq_flush": _TID_PAQ,
    "demand_access": _TID_MEM,
    "lscd_filter": _TID_TABLES,
    "lscd_insert": _TID_TABLES,
    "pvt_reject": _TID_TABLES,
    "apt_train": _TID_TABLES,
}

_THREAD_NAMES = {
    _TID_CORE: "core",
    _TID_PREDICT: "predict",
    _TID_PAQ: "paq",
    _TID_MEM: "memory",
    _TID_TABLES: "tables",
}


class ChromeTraceExporter(Tracer):
    """Collect every event into a Chrome trace-event list."""

    def __init__(self, commit_sample: int = 64) -> None:
        if commit_sample <= 0:
            raise ValueError("commit_sample must be positive")
        self.commit_sample = commit_sample
        self.events: list[dict] = []
        self._cycle = 0
        for tid, name in _THREAD_NAMES.items():
            self.events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": name},
                }
            )

    def emit(self, kind: str, **fields: Any) -> None:
        cycle = fields.get("cycle")
        if cycle is None:
            cycle = self._cycle
        else:
            self._cycle = cycle
        if kind == "commit":
            if fields["index"] % self.commit_sample:
                return
        self.events.append(
            {
                "ph": "i",
                "name": kind,
                "pid": 1,
                "tid": _TID_FOR_KIND.get(kind, _TID_CORE),
                "ts": cycle,
                "s": "t",
                "args": {k: v for k, v in fields.items() if k != "cycle"},
            }
        )
        if kind == "paq_enqueue" or kind == "paq_service":
            occupancy = fields.get("occupancy")
            if occupancy is None:
                # service pops one entry; approximate from last enqueue.
                return
            self.events.append(
                {
                    "ph": "C",
                    "name": "paq_occupancy",
                    "pid": 1,
                    "tid": _TID_PAQ,
                    "ts": cycle,
                    "args": {"entries": occupancy},
                }
            )

    def to_json(self) -> str:
        return json.dumps(
            {"traceEvents": self.events, "displayTimeUnit": "ms"}, indent=None
        )

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
