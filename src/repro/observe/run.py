"""run_traced — one simulation under a full observability stack.

Assembles the standard backend stack (interval metrics, Chrome trace
export, flight recorder, optional fault tripwire), runs ``simulate``,
and on failure persists the flight-recorder tail — to a dump file
beside the requested trace output and, when a journal is given, as a
``flight_recorder_dump`` journal event — before re-raising.
"""

from __future__ import annotations

from pathlib import Path

from repro.observe.chrome import ChromeTraceExporter
from repro.observe.flight import FaultTripwire, FlightRecorder
from repro.observe.interval import DEFAULT_INTERVAL, IntervalMetricsCollector
from repro.observe.tracer import MultiTracer
from repro.pipeline.core_model import simulate


class TracedRun:
    """The stack for one traced simulation plus its outcome."""

    def __init__(
        self,
        interval: int = DEFAULT_INTERVAL,
        flight_capacity: int = 256,
        tripwire: FaultTripwire | None = None,
    ) -> None:
        self.intervals = IntervalMetricsCollector(interval=interval)
        self.chrome = ChromeTraceExporter()
        self.flight = FlightRecorder(capacity=flight_capacity)
        backends = [self.intervals, self.chrome, self.flight]
        if tripwire is not None:
            backends.append(tripwire)
        self.tracer = MultiTracer(*backends)
        self.result = None


def run_traced(
    trace,
    scheme=None,
    *,
    recovery=None,
    interval: int = DEFAULT_INTERVAL,
    flight_capacity: int = 256,
    tripwire: FaultTripwire | None = None,
    out: str | Path | None = None,
    journal=None,
) -> TracedRun:
    """Simulate ``trace`` with the full observability stack attached.

    Returns the :class:`TracedRun` whose ``result`` carries interval
    rows.  When the run dies (any exception, including an injected
    :class:`repro.faults.FaultInjected` from ``tripwire``), the flight
    recorder tail is written to ``<out>.flight.json`` (when ``out`` is
    given) and journaled as a ``flight_recorder_dump`` event (when
    ``journal`` is given); the exception then propagates.
    """
    run = TracedRun(
        interval=interval, flight_capacity=flight_capacity, tripwire=tripwire
    )
    kwargs = {"scheme": scheme, "tracer": run.tracer}
    if recovery is not None:
        kwargs["recovery"] = recovery
    try:
        run.result = simulate(trace, **kwargs)
    except BaseException as exc:
        dump_path = None
        if out is not None:
            dump_path = Path(out).with_suffix(".flight.json")
            run.flight.write(dump_path)
        if journal is not None:
            journal.event(
                "flight_recorder_dump",
                trace=trace.name,
                scheme=scheme.name if scheme is not None else "baseline",
                error=f"{type(exc).__name__}: {exc}",
                events_seen=run.flight.seen,
                dump_path=str(dump_path) if dump_path is not None else None,
                tail=run.flight.dump()[-32:],
            )
        raise
    if out is not None:
        run.chrome.write(out)
    return run
