"""Bounded event streaming — live fan-out of journal-style events.

The flight recorder's discipline (bounded buffers, drop-with-accounting,
never block the producer) applied to *live* subscribers instead of a
post-mortem ring: an :class:`EventStream` broadcasts event dicts to any
number of :class:`Subscription` mailboxes, each a bounded deque drained
by exactly one asyncio consumer.  This is the multiplexing layer behind
``repro serve watch`` and per-ticket progress streaming — the journal's
``tap`` publishes every event here, and each connected client pumps its
own subscription to its socket.

Two delivery classes, chosen per message:

* **droppable** (progress events) — when a subscriber's mailbox is
  full the message is dropped *for that subscriber only* and its
  ``dropped`` counter incremented; a slow watcher can never stall the
  scheduler or other clients.
* **must-deliver** (results, terminal notices) — always enqueued, even
  past capacity; protocol messages a client cannot complete without
  are exempt from the drop policy.

Everything here runs on one event loop thread: producers that live on
other threads (executor lease callbacks) must hop over with
``loop.call_soon_threadsafe`` before publishing.
"""

from __future__ import annotations

import asyncio
from collections import deque
from collections.abc import Callable

DEFAULT_CAPACITY = 1024

# Optional per-subscription filter: event dict -> deliver?
MatchFn = Callable[[dict], bool]


class Subscription:
    """One subscriber's bounded mailbox onto a stream.

    Producers call :meth:`put` (loop thread only); exactly one consumer
    awaits :meth:`get`, which returns ``None`` once the subscription is
    closed and drained — the consumer's signal to hang up.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.dropped = 0
        self.closed = False
        self._items: deque = deque()
        self._wakeup = asyncio.Event()

    def put(self, item: dict, droppable: bool = True) -> bool:
        """Enqueue ``item``; False when dropped (full) or closed.

        ``droppable=False`` bypasses the capacity bound — results and
        terminal notices must arrive even at a slow consumer.
        """
        if self.closed:
            return False
        if droppable and len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append(item)
        self._wakeup.set()
        return True

    def close(self) -> None:
        """No more items; :meth:`get` drains the backlog then ends."""
        self.closed = True
        self._wakeup.set()

    async def get(self) -> dict | None:
        """Next item, or None when closed and fully drained."""
        while True:
            if self._items:
                return self._items.popleft()
            if self.closed:
                return None
            self._wakeup.clear()
            await self._wakeup.wait()

    def __len__(self) -> int:
        return len(self._items)


class EventStream:
    """Broadcast registry: publish one event to every live subscriber.

    Subscriptions may carry a ``matches`` predicate to receive only a
    slice of the stream (e.g. events for one ticket's job keys).
    :meth:`close` delivers an optional terminal event — must-deliver,
    so watchers always learn *why* the stream ended — then closes every
    subscription.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self.closed = False
        self._subs: dict[Subscription, MatchFn | None] = {}

    def subscribe(self, matches: MatchFn | None = None) -> Subscription:
        """A new bounded mailbox receiving matching published events.

        Subscribing to a closed stream yields an already-closed mailbox
        (``get`` returns None immediately) so late consumers hang up
        instead of waiting forever."""
        sub = Subscription(self.capacity)
        if self.closed:
            sub.close()
            return sub
        self._subs[sub] = matches
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Detach and close one subscription."""
        self._subs.pop(sub, None)
        sub.close()

    def publish(self, event: dict, droppable: bool = True) -> int:
        """Fan ``event`` out; returns the number of deliveries."""
        delivered = 0
        for sub, matches in list(self._subs.items()):
            if matches is not None and not matches(event):
                continue
            if sub.put(event, droppable=droppable):
                delivered += 1
        return delivered

    def stats(self) -> dict:
        """Live fan-out health: subscriber count, backlog, drops.

        ``dropped`` sums every subscriber's drop counter — nonzero
        means at least one slow consumer is shedding progress events
        (results are must-deliver and never counted here).  Surfaced
        in ``serve status`` so overload shows up before it bites.
        """
        return {
            "subscribers": len(self._subs),
            "backlog": sum(len(sub) for sub in self._subs),
            "dropped": sum(sub.dropped for sub in self._subs),
        }

    def close(self, terminal: dict | None = None) -> None:
        """End the stream, delivering ``terminal`` to every subscriber."""
        self.closed = True
        for sub in list(self._subs):
            if terminal is not None:
                sub.put(terminal, droppable=False)
            sub.close()
        self._subs.clear()

    def __len__(self) -> int:
        return len(self._subs)
