"""repro.observe — opt-in, zero-overhead-when-off instrumentation.

The simulator's components each accept an optional :class:`Tracer`
(see :mod:`repro.observe.tracer` for the event taxonomy and the
zero-overhead contract).  This package provides the backends:

* :class:`IntervalMetricsCollector` — per-10k-instruction coverage/
  accuracy/IPC/occupancy rows into ``SimResult.intervals``;
* :class:`ChromeTraceExporter` — ``chrome://tracing``-loadable JSON;
* :class:`FlightRecorder` — ring buffer of the last N events, dumped
  when a run dies;
* :class:`FaultTripwire` — deterministic mid-run ``raise`` faults
  bridging :mod:`repro.faults` into traced simulations;
* :func:`run_traced` — the assembled stack around one ``simulate``;
* :class:`EventStream` / :class:`Subscription` — bounded live pub/sub
  over journal-style events, the multiplexer behind :mod:`repro.serve`
  progress streaming (see :mod:`repro.observe.stream`).
"""

from repro.observe.chrome import ChromeTraceExporter
from repro.observe.flight import FaultTripwire, FlightRecorder
from repro.observe.interval import (
    DEFAULT_INTERVAL,
    IntervalMetricsCollector,
    render_report,
)
from repro.observe.run import TracedRun, run_traced
from repro.observe.stream import EventStream, Subscription
from repro.observe.tracer import HOOKS, MultiTracer, Tracer

__all__ = [
    "ChromeTraceExporter",
    "DEFAULT_INTERVAL",
    "EventStream",
    "FaultTripwire",
    "FlightRecorder",
    "HOOKS",
    "Subscription",
    "IntervalMetricsCollector",
    "MultiTracer",
    "Tracer",
    "TracedRun",
    "render_report",
    "run_traced",
]
