"""Structured JSONL run journal.

Every orchestration step emits one flat JSON object per line:
``run_started``, ``job_submitted``, ``cache_hit`` / ``cache_miss``,
``job_started`` (per attempt), ``job_finished`` (status, duration,
error) and ``run_finished`` (aggregate summary).  The journal is the
ground truth for questions like "did the warm-cache rerun execute any
simulations?" — grep the file, or load it with :func:`read_journal`.

Events are always kept in memory; passing ``path`` additionally appends
each line to a file as it happens, so a crashed run still leaves a
readable prefix.
"""

from __future__ import annotations

import json
import time
from pathlib import Path


class RunJournal:
    """Collect and (optionally) persist structured run events."""

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.events: list[dict] = []
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text("")  # one journal per run: truncate

    def event(self, kind: str, **fields: object) -> dict:
        """Record one event; returns the event dict."""
        entry: dict = {"event": kind, "ts": round(time.time(), 6)}
        entry.update(fields)
        self.events.append(entry)
        if self.path is not None:
            with self.path.open("a") as handle:
                handle.write(json.dumps(entry) + "\n")
        return entry

    def count(self, kind: str, **match: object) -> int:
        """Number of recorded events of ``kind`` matching ``match``."""
        return sum(
            1
            for e in self.events
            if e["event"] == kind and all(e.get(k) == v for k, v in match.items())
        )

    def summary(self) -> dict:
        """Aggregate counters over everything recorded so far."""
        finished = [e for e in self.events if e["event"] == "job_finished"]
        return {
            "jobs": self.count("job_submitted"),
            "cache_hits": self.count("cache_hit"),
            "executed": len(finished),
            "succeeded": sum(1 for e in finished if e.get("status") == "ok"),
            "failed": sum(1 for e in finished if e.get("status") == "error"),
            "timed_out": sum(1 for e in finished if e.get("status") == "timeout"),
            "retries": max(0, self.count("job_started") - len(finished)),
            "sim_seconds": round(
                sum(e.get("duration", 0.0) for e in finished), 3
            ),
        }

    def format_summary(self) -> str:
        """One-line terminal summary of the run."""
        s = self.summary()
        parts = [
            f"{s['jobs']} jobs",
            f"{s['cache_hits']} cache hits",
            f"{s['executed']} executed ({s['sim_seconds']:.1f}s simulated)",
        ]
        if s["failed"]:
            parts.append(f"{s['failed']} FAILED")
        if s["timed_out"]:
            parts.append(f"{s['timed_out']} TIMED OUT")
        return "[repro.runtime] " + ", ".join(parts)


def read_journal(path: str | Path) -> list[dict]:
    """Parse a JSONL journal file back into event dicts."""
    lines = Path(path).read_text().splitlines()
    return [json.loads(line) for line in lines if line.strip()]
