"""Scheme registry — stable identifiers for simulation jobs.

A :class:`~repro.runtime.jobs.Job` cannot carry a factory callable (it
must be hashable and picklable), so schemes are addressed by a string
id resolved through this registry.  Each registration records:

* ``build`` — a zero-argument factory producing a fresh scheme
  instance (or ``None`` for the baseline);
* ``config_key`` — a canonical description of the scheme's
  configuration, folded into the job content hash so that two
  registrations of the same id with different parameters never share
  cache entries;
* ``module`` — the import path that performs the registration, stored
  on jobs so worker processes can import it before resolving the id
  (required when the pool start method is ``spawn``; with ``fork`` the
  registry is inherited and the import is a no-op).

The paper's schemes (baseline, DLVP, CAP, VTAGE, D-VTAGE, tournament)
are registered at import time; experiment modules register their
parameter sweeps (e.g. the Figure 7 VTAGE flavours) the same way.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from collections.abc import Callable
from dataclasses import dataclass

from repro.pipeline import (
    DlvpScheme,
    DvtageScheme,
    Scheme,
    TournamentScheme,
    VtageScheme,
)
from repro.predictors.cap import CapConfig
from repro.predictors.vtage import VtageConfig

BASELINE_ID = "baseline"


def config_key_of(config: object | None) -> str:
    """Canonical, deterministic string form of a scheme configuration."""
    return json.dumps(_canonical(config), sort_keys=True)


def _canonical(value: object) -> object:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        fields["__config__"] = type(value).__name__
        return fields
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalize scheme config value: {value!r}")


@dataclass(frozen=True)
class SchemeSpec:
    """One registered scheme: id, factory, and hashing metadata."""

    scheme_id: str
    build: Callable[[], Scheme | None]
    config_key: str
    module: str


_REGISTRY: dict[str, SchemeSpec] = {}


def register_scheme(
    scheme_id: str,
    build: Callable[[], Scheme | None],
    *,
    config: object | None = None,
    module: str | None = None,
    replace: bool = False,
) -> SchemeSpec:
    """Register (or idempotently re-register) a scheme factory.

    Re-registering an id with the same ``config`` is a no-op, so module
    reloads and repeated imports are safe; a conflicting ``config``
    raises unless ``replace=True``.
    """
    key = config_key_of(config)
    existing = _REGISTRY.get(scheme_id)
    if existing is not None and not replace:
        if existing.config_key == key:
            return existing
        raise ValueError(
            f"scheme id {scheme_id!r} already registered with a different "
            f"config; pass replace=True to override"
        )
    spec = SchemeSpec(
        scheme_id=scheme_id,
        build=build,
        config_key=key,
        module=module if module is not None else build.__module__,
    )
    _REGISTRY[scheme_id] = spec
    return spec


def get_scheme(scheme_id: str) -> SchemeSpec:
    """Resolve a registered scheme id."""
    try:
        return _REGISTRY[scheme_id]
    except KeyError:
        raise KeyError(
            f"unknown scheme id {scheme_id!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def scheme_ids() -> list[str]:
    """All registered scheme ids, sorted."""
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    mod = __name__
    register_scheme(BASELINE_ID, lambda: None, module=mod)
    register_scheme("dlvp", DlvpScheme, module=mod)
    cap_config = CapConfig(confidence_threshold=24)
    register_scheme(
        "cap",
        lambda: DlvpScheme(use_cap=True, cap_config=cap_config),
        config=cap_config,
        module=mod,
    )
    register_scheme(
        "vtage",
        lambda: VtageScheme(VtageConfig()),
        config=VtageConfig(),
        module=mod,
    )
    register_scheme("dvtage", DvtageScheme, module=mod)
    register_scheme("tournament", TournamentScheme, module=mod)


_register_builtins()
