"""Jobs — the schedulable unit of simulation.

A :class:`Job` names one cell of a sweep grid: (workload,
n_instructions, scheme, recovery).  Its identity is a deterministic
content hash over those fields plus a *code version salt* (a digest of
every ``repro`` source file), so results cached on disk are invalidated
automatically whenever the simulator's code changes, and two processes
— or two machines — computing the key for the same cell agree exactly.

Jobs are plain frozen dataclasses of primitives: picklable for
:class:`~repro.runtime.executor.ParallelExecutor` workers, and JSON-safe
for the run journal and cache payloads.
"""

from __future__ import annotations

import functools
import hashlib
import importlib
import json
import os
from dataclasses import asdict, dataclass, fields as dataclass_fields
from pathlib import Path

from repro import faults
from repro.pipeline import RecoveryMode, SimResult, simulate
from repro.runtime.cache import ResultCache
from repro.runtime.registry import BASELINE_ID, get_scheme
from repro.workloads import build_workload, build_workload_columnar

CODE_SALT_ENV = "REPRO_CODE_SALT"


@functools.lru_cache(maxsize=1)
def code_version_salt() -> str:
    """Digest of the ``repro`` package sources (or ``$REPRO_CODE_SALT``).

    Hashing the source tree rather than a version string means *any*
    code change — predictors, pipeline, workload generators — retires
    every cached result produced by the old code.  The environment
    override exists for tests and for deployments that prefer an
    explicit release tag.
    """
    env = os.environ.get(CODE_SALT_ENV)
    if env:
        return env
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def trace_cache_key(workload: str, n_instructions: int, salt: str | None = None) -> str:
    """Content key for a generated trace (workload generators are seeded)."""
    salt = salt if salt is not None else code_version_salt()
    blob = json.dumps(
        {"kind": "trace", "workload": workload, "n": n_instructions, "salt": salt},
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class Job:
    """One simulation cell, identified by content.

    ``timeout`` (seconds) bounds execution but is deliberately *not*
    part of the key — the same cell simulated with a different timeout
    is still the same result.
    """

    workload: str
    n_instructions: int
    scheme_id: str
    scheme_config: str
    scheme_module: str
    recovery: str
    salt: str
    timeout: float | None = None
    # Directory for observability artifacts (Chrome traces, flight
    # dumps).  Like ``timeout`` it is not part of the key: tracing is
    # bit-identical to not tracing, so the result is the same cell.
    trace_dir: str | None = None
    # In-memory trace representation the worker simulates against:
    # "object" (a Trace of Instruction objects), "columnar" (a
    # ColumnarTrace through the struct-of-arrays fast loop), or
    # "shared" (columnar, preferring a fabric attach via ``trace_ref``).
    # Not part of the key — the engines are golden-verified
    # bit-identical, so any way it is the same result.
    trace_format: str = "object"
    # Trace-fabric attach ref ("shm:..."/"file:...") published by the
    # scheduling parent.  Not part of the key: an attached trace is
    # bit-identical to a locally built one, and a worker that cannot
    # attach (segment already unlinked) silently falls back to
    # building, so the ref changes cost, never results.
    trace_ref: str | None = None

    @property
    def key(self) -> str:
        """Deterministic content hash naming this job's result."""
        blob = json.dumps(
            {
                "kind": "simulate",
                "workload": self.workload,
                "n_instructions": self.n_instructions,
                "scheme_id": self.scheme_id,
                "scheme_config": self.scheme_config,
                "recovery": self.recovery,
                "salt": self.salt,
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def identity(self) -> dict:
        """JSON-safe job fields for journal lines and cache payloads."""
        fields = asdict(self)
        fields["key"] = self.key
        return fields


def job_from_identity(fields: dict) -> Job:
    """Rebuild a :class:`Job` from a persisted :meth:`Job.identity` dict.

    The stored ``salt`` is used verbatim — *not* recomputed from the
    current source tree — so a job journaled or ticketed by an earlier
    server process hashes to the same key after a restart, which is the
    property gateway crash recovery depends on.  When the record also
    carries the original ``key`` it is cross-checked; a mismatch means
    the record was hand-edited or torn and raises :class:`ValueError`.
    """
    known = {f.name for f in dataclass_fields(Job)}
    try:
        job = Job(**{k: v for k, v in fields.items() if k in known})
    except TypeError as exc:
        raise ValueError(f"incomplete job identity: {exc}") from None
    expected = fields.get("key")
    if expected is not None and job.key != expected:
        raise ValueError(
            f"job identity key mismatch: recorded {expected}, "
            f"recomputed {job.key}"
        )
    return job


def make_job(
    workload: str,
    n_instructions: int,
    scheme_id: str = BASELINE_ID,
    recovery: RecoveryMode = RecoveryMode.FLUSH,
    timeout: float | None = None,
    trace_dir: str | None = None,
    trace_format: str = "object",
    trace_ref: str | None = None,
) -> Job:
    """Build a job for a registered scheme id, filling hash metadata."""
    spec = get_scheme(scheme_id)
    if trace_format not in ("object", "columnar", "shared"):
        raise ValueError(f"unknown trace format: {trace_format!r}")
    return Job(
        workload=workload,
        n_instructions=n_instructions,
        scheme_id=spec.scheme_id,
        scheme_config=spec.config_key,
        scheme_module=spec.module,
        recovery=recovery.value if isinstance(recovery, RecoveryMode) else str(recovery),
        salt=code_version_salt(),
        timeout=timeout,
        trace_dir=trace_dir,
        trace_format=trace_format,
        trace_ref=trace_ref,
    )


def _trace_for(job: Job, cache: ResultCache | None):
    columnar = job.trace_format in ("columnar", "shared")
    if cache is None:
        if columnar:
            return build_workload_columnar(job.workload, job.n_instructions)
        return build_workload(job.workload, job.n_instructions)
    key = trace_cache_key(job.workload, job.n_instructions, job.salt)
    if columnar:
        trace = cache.get_trace_columnar(key)
        if trace is None:
            trace = build_workload_columnar(job.workload, job.n_instructions)
            cache.put_trace(key, trace)
        return trace
    trace = cache.get_trace(key)
    if trace is None:
        trace = build_workload(job.workload, job.n_instructions)
        cache.put_trace(key, trace)
    return trace


# Worker-resident trace memo, capacity one.  A retried job lands on a
# worker that (under serial execution, or a pool whose process survived)
# already generated its trace; re-deriving it is the single largest cost
# of a retry, so the last trace is kept and reused when the next job
# names the same content.  Capacity is deliberately 1: the memo exists
# for retries and trace-grouped dispatch, not as a second trace cache.
_TRACE_MEMO: dict = {}


def _memo_key(job: Job) -> tuple:
    fmt = "columnar" if job.trace_format in ("columnar", "shared") else "object"
    return (trace_cache_key(job.workload, job.n_instructions, job.salt), fmt)


def _acquire_trace(job: Job, cache: ResultCache | None, attempt: int):
    """Obtain the job's trace by the cheapest live route.

    Order: fabric attach (``job.trace_ref``) → worker memo → shared
    trace cache → generate.  Returns ``(trace, info, handle)`` where
    ``info`` describes provenance for the result envelope and
    ``handle`` is a fabric handle to close after simulating (or None).
    An attach failure — segment unlinked, file gone, torn header — is
    never fatal: the worker quietly builds locally instead, so the
    fabric only ever changes cost, not outcomes.
    """
    if job.trace_ref is not None:
        try:
            from repro.trace.share import attach as fabric_attach

            handle = fabric_attach(job.trace_ref)
        except Exception:
            pass  # fall through to memo / cache / build
        else:
            return handle.trace, {"trace_source": "shared"}, handle

    memo_key = _memo_key(job)
    entry = _TRACE_MEMO.get(memo_key)
    if entry is not None:
        info = {"trace_source": "memo"}
        if not entry["announced"]:
            info["trace_built_attempt"] = entry["built_attempt"]
            info["entry"] = entry
        return entry["trace"], info, None

    built = False
    if cache is None:
        trace = _trace_for(job, cache)
        built = True
    else:
        key = trace_cache_key(job.workload, job.n_instructions, job.salt)
        if job.trace_format in ("columnar", "shared"):
            trace = cache.get_trace_columnar(key)
        else:
            trace = cache.get_trace(key)
        if trace is None:
            trace = _trace_for(job, None)
            cache.put_trace(key, trace)
            built = True

    entry = {"trace": trace, "built_attempt": attempt if built else None, "announced": False}
    _TRACE_MEMO.clear()
    _TRACE_MEMO[memo_key] = entry
    info = {"trace_source": "built" if built else "cache"}
    if built:
        info["trace_built_attempt"] = attempt
        info["entry"] = entry
    return trace, info, None


def _announce(info: dict) -> None:
    """Mark the memo entry's build as reported, exactly once.

    Called only after a *successful* simulation: a worker that built a
    trace and then crashed should let the retry report the (re)build it
    actually observes, not a phantom from the dead attempt.
    """
    entry = info.pop("entry", None)
    if entry is not None:
        entry["announced"] = True


def _simulate_cell(job: Job, trace) -> dict:
    """Simulate one cell against an already-acquired trace."""
    if job.scheme_module:
        try:
            importlib.import_module(job.scheme_module)
        except ImportError:
            pass  # fall through: under fork the registry is inherited
    spec = get_scheme(job.scheme_id)
    scheme = spec.build()
    if job.trace_dir:
        # Observability path: full tracer stack, Chrome trace written
        # beside the flight dump.  Results stay bit-identical to the
        # untraced fast path (golden-verified), just with intervals.
        from repro.observe import run_traced

        out_dir = Path(job.trace_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        out = out_dir / f"{job.workload}-{job.scheme_id}.trace.json"
        run = run_traced(
            trace,
            scheme=scheme,
            recovery=RecoveryMode(job.recovery),
            out=out,
        )
        return run.result.to_dict()
    result = simulate(trace, scheme=scheme, recovery=RecoveryMode(job.recovery))
    return result.to_dict()


def execute_job_info(
    job: Job,
    cache_dir: str | None = None,
    attempt: int = 1,
    fault_spec: str | None = None,
) -> tuple[dict, dict]:
    """Like :func:`execute_job` but also returns trace provenance.

    The second element is ``{"trace_source": ..., "trace_built_attempt"?}``
    — which route produced the trace (``shared``/``memo``/``cache``/
    ``built``) and, the first time a worker-built trace carries a
    successful result, the attempt number that generated it.  Faults
    are injected *after* trace acquisition: the injector models a
    failing simulation, and a real mid-simulation death happens with
    the trace already generated — which is exactly what makes the memo
    worth having on the retry.
    """
    cache = ResultCache(cache_dir) if cache_dir else None
    trace, info, handle = _acquire_trace(job, cache, attempt)
    try:
        plan = faults.active_plan(fault_spec)
        if plan is not None:
            faults.inject(job.workload, job.scheme_id, attempt, job.key, plan)
        payload = _simulate_cell(job, trace)
    finally:
        if handle is not None:
            handle.close()
    _announce(info)
    info.pop("entry", None)
    return payload, info


def execute_job(
    job: Job,
    cache_dir: str | None = None,
    attempt: int = 1,
    fault_spec: str | None = None,
) -> dict:
    """Run one job to completion; returns ``SimResult.to_dict()``.

    This is the worker-side entry point.  The scheme's defining module
    is imported so spawned workers (which do not inherit the parent's
    registry) see the same registrations; under ``fork`` the import is
    a cached no-op.  ``cache_dir`` enables the shared trace cache only
    — result caching is the parent's responsibility, so a cache hit
    never even reaches a worker.

    ``attempt`` and ``fault_spec`` feed :mod:`repro.faults`: when a
    fault plan (explicit spec or ``$REPRO_FAULT_SPEC``) matches this
    (job, attempt), the injector acts it out *here*, in the worker —
    crashing, hanging, raising or stalling exactly where a real
    misbehaving simulation would.
    """
    payload, _ = execute_job_info(job, cache_dir, attempt, fault_spec)
    return payload


class TraceGroup:
    """Worker-side context for running many cells over one trace.

    The scheduling parent groups grid cells that share a trace key and
    ships the whole group to a single worker; this context acquires the
    trace once (fabric attach, memo, cache, or build — same ladder as a
    single job) and lets the caller run each cell against it.  Cells
    stay independent: a cell that raises does not poison its siblings,
    and the caller wraps each :meth:`run_cell` in its own timeout.
    """

    def __init__(self, jobs: list[Job], cache_dir: str | None = None):
        if not jobs:
            raise ValueError("empty trace group")
        self.jobs = jobs
        self._cache = ResultCache(cache_dir) if cache_dir else None
        self.trace = None
        self.trace_source: str | None = None
        self.trace_built_attempt: int | None = None
        self._info: dict = {}
        self._handle = None

    def __enter__(self) -> "TraceGroup":
        self.trace, self._info, self._handle = _acquire_trace(
            self.jobs[0], self._cache, attempt=1
        )
        self.trace_source = self._info.get("trace_source")
        self.trace_built_attempt = self._info.get("trace_built_attempt")
        return self

    def run_cell(self, job: Job, attempt: int = 1, fault_spec: str | None = None) -> dict:
        plan = faults.active_plan(fault_spec)
        if plan is not None:
            faults.inject(job.workload, job.scheme_id, attempt, job.key, plan)
        return _simulate_cell(job, self.trace)

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if exc_type is None:
            _announce(self._info)
        self._info.pop("entry", None)


def result_from_payload(payload: dict) -> SimResult:
    """Parent-side decode of a worker's :func:`execute_job` payload."""
    return SimResult.from_dict(payload)
