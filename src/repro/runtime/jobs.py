"""Jobs — the schedulable unit of simulation.

A :class:`Job` names one cell of a sweep grid: (workload,
n_instructions, scheme, recovery).  Its identity is a deterministic
content hash over those fields plus a *code version salt* (a digest of
every ``repro`` source file), so results cached on disk are invalidated
automatically whenever the simulator's code changes, and two processes
— or two machines — computing the key for the same cell agree exactly.

Jobs are plain frozen dataclasses of primitives: picklable for
:class:`~repro.runtime.executor.ParallelExecutor` workers, and JSON-safe
for the run journal and cache payloads.
"""

from __future__ import annotations

import functools
import hashlib
import importlib
import json
import os
from dataclasses import asdict, dataclass, fields as dataclass_fields
from pathlib import Path

from repro import faults
from repro.pipeline import RecoveryMode, SimResult, simulate
from repro.runtime.cache import ResultCache
from repro.runtime.registry import BASELINE_ID, get_scheme
from repro.workloads import build_workload, build_workload_columnar

CODE_SALT_ENV = "REPRO_CODE_SALT"


@functools.lru_cache(maxsize=1)
def code_version_salt() -> str:
    """Digest of the ``repro`` package sources (or ``$REPRO_CODE_SALT``).

    Hashing the source tree rather than a version string means *any*
    code change — predictors, pipeline, workload generators — retires
    every cached result produced by the old code.  The environment
    override exists for tests and for deployments that prefer an
    explicit release tag.
    """
    env = os.environ.get(CODE_SALT_ENV)
    if env:
        return env
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def trace_cache_key(workload: str, n_instructions: int, salt: str | None = None) -> str:
    """Content key for a generated trace (workload generators are seeded)."""
    salt = salt if salt is not None else code_version_salt()
    blob = json.dumps(
        {"kind": "trace", "workload": workload, "n": n_instructions, "salt": salt},
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class Job:
    """One simulation cell, identified by content.

    ``timeout`` (seconds) bounds execution but is deliberately *not*
    part of the key — the same cell simulated with a different timeout
    is still the same result.
    """

    workload: str
    n_instructions: int
    scheme_id: str
    scheme_config: str
    scheme_module: str
    recovery: str
    salt: str
    timeout: float | None = None
    # Directory for observability artifacts (Chrome traces, flight
    # dumps).  Like ``timeout`` it is not part of the key: tracing is
    # bit-identical to not tracing, so the result is the same cell.
    trace_dir: str | None = None
    # In-memory trace representation the worker simulates against:
    # "object" (a Trace of Instruction objects) or "columnar" (a
    # ColumnarTrace through the struct-of-arrays fast loop).  Not part
    # of the key — the two engines are golden-verified bit-identical,
    # so either way it is the same result.
    trace_format: str = "object"

    @property
    def key(self) -> str:
        """Deterministic content hash naming this job's result."""
        blob = json.dumps(
            {
                "kind": "simulate",
                "workload": self.workload,
                "n_instructions": self.n_instructions,
                "scheme_id": self.scheme_id,
                "scheme_config": self.scheme_config,
                "recovery": self.recovery,
                "salt": self.salt,
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def identity(self) -> dict:
        """JSON-safe job fields for journal lines and cache payloads."""
        fields = asdict(self)
        fields["key"] = self.key
        return fields


def job_from_identity(fields: dict) -> Job:
    """Rebuild a :class:`Job` from a persisted :meth:`Job.identity` dict.

    The stored ``salt`` is used verbatim — *not* recomputed from the
    current source tree — so a job journaled or ticketed by an earlier
    server process hashes to the same key after a restart, which is the
    property gateway crash recovery depends on.  When the record also
    carries the original ``key`` it is cross-checked; a mismatch means
    the record was hand-edited or torn and raises :class:`ValueError`.
    """
    known = {f.name for f in dataclass_fields(Job)}
    try:
        job = Job(**{k: v for k, v in fields.items() if k in known})
    except TypeError as exc:
        raise ValueError(f"incomplete job identity: {exc}") from None
    expected = fields.get("key")
    if expected is not None and job.key != expected:
        raise ValueError(
            f"job identity key mismatch: recorded {expected}, "
            f"recomputed {job.key}"
        )
    return job


def make_job(
    workload: str,
    n_instructions: int,
    scheme_id: str = BASELINE_ID,
    recovery: RecoveryMode = RecoveryMode.FLUSH,
    timeout: float | None = None,
    trace_dir: str | None = None,
    trace_format: str = "object",
) -> Job:
    """Build a job for a registered scheme id, filling hash metadata."""
    spec = get_scheme(scheme_id)
    if trace_format not in ("object", "columnar"):
        raise ValueError(f"unknown trace format: {trace_format!r}")
    return Job(
        workload=workload,
        n_instructions=n_instructions,
        scheme_id=spec.scheme_id,
        scheme_config=spec.config_key,
        scheme_module=spec.module,
        recovery=recovery.value if isinstance(recovery, RecoveryMode) else str(recovery),
        salt=code_version_salt(),
        timeout=timeout,
        trace_dir=trace_dir,
        trace_format=trace_format,
    )


def _trace_for(job: Job, cache: ResultCache | None):
    columnar = job.trace_format == "columnar"
    if cache is None:
        if columnar:
            return build_workload_columnar(job.workload, job.n_instructions)
        return build_workload(job.workload, job.n_instructions)
    key = trace_cache_key(job.workload, job.n_instructions, job.salt)
    if columnar:
        trace = cache.get_trace_columnar(key)
        if trace is None:
            trace = build_workload_columnar(job.workload, job.n_instructions)
            cache.put_trace(key, trace)
        return trace
    trace = cache.get_trace(key)
    if trace is None:
        trace = build_workload(job.workload, job.n_instructions)
        cache.put_trace(key, trace)
    return trace


def execute_job(
    job: Job,
    cache_dir: str | None = None,
    attempt: int = 1,
    fault_spec: str | None = None,
) -> dict:
    """Run one job to completion; returns ``SimResult.to_dict()``.

    This is the worker-side entry point.  The scheme's defining module
    is imported first so spawned workers (which do not inherit the
    parent's registry) see the same registrations; under ``fork`` the
    import is a cached no-op.  ``cache_dir`` enables the shared trace
    cache only — result caching is the parent's responsibility, so a
    cache hit never even reaches a worker.

    ``attempt`` and ``fault_spec`` feed :mod:`repro.faults`: when a
    fault plan (explicit spec or ``$REPRO_FAULT_SPEC``) matches this
    (job, attempt), the injector acts it out *here*, in the worker —
    crashing, hanging, raising or stalling exactly where a real
    misbehaving simulation would.
    """
    plan = faults.active_plan(fault_spec)
    if plan is not None:
        faults.inject(job.workload, job.scheme_id, attempt, job.key, plan)
    if job.scheme_module:
        try:
            importlib.import_module(job.scheme_module)
        except ImportError:
            pass  # fall through: under fork the registry is inherited
    spec = get_scheme(job.scheme_id)
    cache = ResultCache(cache_dir) if cache_dir else None
    trace = _trace_for(job, cache)
    scheme = spec.build()
    if job.trace_dir:
        # Observability path: full tracer stack, Chrome trace written
        # beside the flight dump.  Results stay bit-identical to the
        # untraced fast path (golden-verified), just with intervals.
        from repro.observe import run_traced

        out_dir = Path(job.trace_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        out = out_dir / f"{job.workload}-{job.scheme_id}.trace.json"
        run = run_traced(
            trace,
            scheme=scheme,
            recovery=RecoveryMode(job.recovery),
            out=out,
        )
        return run.result.to_dict()
    result = simulate(trace, scheme=scheme, recovery=RecoveryMode(job.recovery))
    return result.to_dict()


def result_from_payload(payload: dict) -> SimResult:
    """Parent-side decode of a worker's :func:`execute_job` payload."""
    return SimResult.from_dict(payload)
