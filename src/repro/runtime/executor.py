"""Executors — run jobs serially or across a process pool.

Two interchangeable drivers with identical semantics and results:

* :class:`SerialExecutor` — in-process, one job at a time.  No worker
  processes, so it is the ``--jobs 1`` default and the safe choice on
  platforms where ``fork`` is unavailable (Windows) or undesirable.
* :class:`ParallelExecutor` — a ``concurrent.futures``
  ``ProcessPoolExecutor`` fan-out with per-job timeouts, bounded
  retries, and crash isolation: a worker dying (segfault, ``os._exit``,
  OOM kill) breaks only its own cell, not the run — the pool is rebuilt
  and the surviving jobs resubmitted, while a job that repeatedly kills
  its worker exhausts its attempts and is reported as failed.

A third driver, :class:`JobLease`, is the leasable unit behind the
:mod:`repro.serve` scheduler: one dedicated single-worker pool running
one job at a time, with the same failure policy and a :meth:`cancel`
hook for graceful server shutdown.

Shared failure policy (both drivers):

* **Deterministic retry backoff** — attempt *n*'s resubmission is
  delayed by ``backoff * 2**(n-1)`` seconds, a fixed schedule with no
  jitter so chaos runs and their journals are reproducible.
* **Timeout escalation** — with ``timeout_factor`` set, a timed-out
  job is retried (within its bounded attempts) with its timeout
  multiplied by the factor, which turns "this cell is slow today" into
  a recoverable condition instead of a dead cell.
* **Graceful interruption** — a ``KeyboardInterrupt`` (Ctrl-C, or
  SIGTERM converted by the runtime) stops scheduling, cancels what it
  can, and returns the completed outcomes with the rest marked
  ``"interrupted"`` — callers keep (and cache) the finished cells.

Timeouts are enforced *inside* the worker via ``SIGALRM`` (each pool
worker runs jobs on its main thread), so a timed-out job ends cleanly
without tearing down the pool.  Where ``SIGALRM`` does not exist the
timeout degrades to best-effort (the job runs to completion) and a
one-time :class:`RuntimeWarning` makes the degradation visible.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
import traceback
import warnings
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures import TimeoutError as PoolWaitTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace

from repro.pipeline import SimResult
from repro.runtime.jobs import (
    Job,
    TraceGroup,
    execute_job_info,
    result_from_payload,
)

# events callback: (kind, job, extra-fields) -> None
EventFn = Callable[[str, Job, dict], None]
# outcome callback: invoked the moment a job's outcome is final, before
# run() returns — callers journal/cache each cell as it settles so a
# later hang, crash or interrupt cannot lose already-finished work
OutcomeFn = Callable[["JobOutcome"], None]

INTERRUPTED_ERROR = "interrupted by signal before completion"


class JobTimeoutError(RuntimeError):
    """A job exceeded its per-job timeout."""


@dataclass
class JobOutcome:
    """What happened to one job."""

    job: Job
    status: str         # "ok" | "error" | "timeout" | "interrupted"
    result: SimResult | None = None
    error: str | None = None
    duration: float = 0.0
    attempts: int = 1
    cache_hit: bool = False
    resumed: bool = False
    # How the worker obtained the trace it simulated against:
    # "built" | "cache" | "memo" | "shared" (None for cache hits and
    # failures — no simulation happened).
    trace_source: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


_timeout_degraded_warned = False


def _call_with_timeout(fn: Callable[[], object], timeout: float | None) -> object:
    """Run ``fn``, raising :class:`JobTimeoutError` after ``timeout`` s.

    Uses ``SIGALRM``/``setitimer``, which only works on the main thread
    of a process with POSIX signals — exactly where executor workers
    (and the serial driver) run.  Anywhere else the call is unbounded,
    and a one-time :class:`RuntimeWarning` says so instead of silently
    dropping the limit.
    """
    wanted = timeout is not None and timeout > 0
    usable = (
        wanted
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        global _timeout_degraded_warned
        if wanted and not _timeout_degraded_warned:
            _timeout_degraded_warned = True
            warnings.warn(
                "per-job timeout requested but SIGALRM is unavailable here "
                "(no POSIX signals or not on the main thread); jobs run "
                "unbounded",
                RuntimeWarning,
                stacklevel=2,
            )
        return fn()

    def _on_alarm(signum, frame):
        raise JobTimeoutError(f"job exceeded timeout of {timeout:.3f}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _worker_run(
    job: Job,
    cache_dir: str | None,
    attempt: int = 1,
    fault_spec: str | None = None,
) -> dict:
    """Pool-worker entry point: execute one job under its timeout.

    Returns an envelope ``{"result": payload, "duration": seconds,
    "trace_source": ..., "trace_built_attempt"?}`` — the duration is
    measured here, in the worker, so it reflects actual execution time
    rather than time spent queued in the pool, and the trace fields
    report how the worker obtained its trace (see
    :func:`repro.runtime.jobs.execute_job_info`).
    """
    started = time.monotonic()
    payload, info = _call_with_timeout(
        lambda: execute_job_info(job, cache_dir, attempt=attempt,
                                 fault_spec=fault_spec),
        job.timeout,
    )
    return {"result": payload, "duration": time.monotonic() - started, **info}


class _RemoteCellFailure(Exception):
    """A group cell's failure, already formatted by the worker."""


def _worker_run_group(
    jobs: Sequence[Job],
    cache_dir: str | None,
    fault_spec: str | None = None,
) -> dict:
    """Pool-worker entry point for a trace group: one trace, N cells.

    All jobs share a trace key; the trace is acquired once (attach →
    memo → cache → build) and every cell simulates against it under its
    own per-cell timeout.  Cells are independent — one raising or
    timing out does not stop its siblings — and each reports back as a
    small envelope, so the parent can settle successes and route
    failures through the ordinary per-cell retry machinery.
    """
    started = time.monotonic()
    cells = []
    with TraceGroup(list(jobs), cache_dir) as group:
        for job in jobs:
            cell_started = time.monotonic()
            try:
                payload = _call_with_timeout(
                    lambda job=job: group.run_cell(job, attempt=1,
                                                   fault_spec=fault_spec),
                    job.timeout,
                )
            except JobTimeoutError as exc:
                cells.append({
                    "key": job.key, "status": "timeout", "error": str(exc),
                    "duration": time.monotonic() - cell_started,
                })
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                cells.append({
                    "key": job.key, "status": "error",
                    "error": _format_error(exc),
                    "duration": time.monotonic() - cell_started,
                })
            else:
                cells.append({
                    "key": job.key, "status": "ok", "result": payload,
                    "duration": time.monotonic() - cell_started,
                })
    return {
        "cells": cells,
        "trace_source": group.trace_source,
        "trace_built_attempt": group.trace_built_attempt,
        "duration": time.monotonic() - started,
    }


def _no_events(kind: str, job: Job, fields: dict) -> None:
    pass


def _no_outcome(outcome: "JobOutcome") -> None:
    pass


_pool_ctx = None


def _pool_context():
    """The multiprocessing context worker pools are built from.

    The default ``fork`` start method forks workers lazily at submit
    time, while the pool's own queue-feeder and manager threads are
    live — a worker forked while one of those threads holds a lock
    inherits it held-forever and deadlocks on first acquire (observed
    intermittently under heavy pool churn, e.g. crash-isolation
    rounds).  ``forkserver`` forks every worker from a clean,
    single-threaded server process, which eliminates the entire class;
    preloading this module keeps the per-worker cost at a plain fork
    after the server's one-time warm import.  Falls back to the
    platform default where forkserver does not exist (Windows).
    """
    global _pool_ctx
    if _pool_ctx is None:
        try:
            ctx = multiprocessing.get_context("forkserver")
            ctx.set_forkserver_preload(["repro.runtime.executor"])
        except (ValueError, AttributeError):
            ctx = multiprocessing.get_context()
        _pool_ctx = ctx
    return _pool_ctx


def _make_pool(max_workers: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(max_workers=max_workers,
                               mp_context=_pool_context())


@dataclass
class _Attempt:
    job: Job
    attempts: int = 0


class _FailurePolicy:
    """Retry/backoff/escalation knobs shared by both executors."""

    def __init__(
        self,
        retries: int = 1,
        backoff: float = 0.0,
        timeout_factor: float | None = None,
    ) -> None:
        self.retries = max(0, retries)
        self.backoff = max(0.0, backoff)
        self.timeout_factor = timeout_factor

    def backoff_before(self, attempt: int) -> None:
        """Deterministic exponential delay before retry ``attempt``."""
        if self.backoff > 0.0 and attempt > 1:
            time.sleep(self.backoff * 2 ** (attempt - 2))

    def escalate_timeout(self, state: _Attempt) -> bool:
        """Retry a timed-out attempt with a scaled timeout, if enabled."""
        if (
            self.timeout_factor is None
            or state.job.timeout is None
            or state.attempts > self.retries
        ):
            return False
        state.job = replace(
            state.job, timeout=state.job.timeout * self.timeout_factor
        )
        return True


class SerialExecutor(_FailurePolicy):
    """Run jobs one at a time in the calling process."""

    def run(
        self,
        jobs: Sequence[Job],
        cache_dir: str | None = None,
        events: EventFn | None = None,
        fault_spec: str | None = None,
        on_outcome: OutcomeFn | None = None,
    ) -> list[JobOutcome]:
        events = events or _no_events
        on_outcome = on_outcome or _no_outcome
        outcomes = []
        try:
            for job in jobs:
                outcome = self._run_one(job, cache_dir, events, fault_spec)
                on_outcome(outcome)
                outcomes.append(outcome)
        except KeyboardInterrupt:
            for job in jobs[len(outcomes):]:
                outcome = JobOutcome(
                    job, "interrupted", error=INTERRUPTED_ERROR, attempts=0,
                )
                on_outcome(outcome)
                outcomes.append(outcome)
        return outcomes

    def _run_one(
        self,
        job: Job,
        cache_dir: str | None,
        events: EventFn,
        fault_spec: str | None,
    ) -> JobOutcome:
        return self._drive(_Attempt(job), cache_dir, events, fault_spec)

    def _drive(
        self,
        state: _Attempt,
        cache_dir: str | None,
        events: EventFn,
        fault_spec: str | None,
    ) -> JobOutcome:
        """Run ``state`` to a terminal outcome, starting at its next
        attempt — fresh jobs arrive with zero attempts, group cells
        whose first attempt already failed in a trace group arrive
        with one charged."""
        job = state.job
        while True:
            state.attempts += 1
            self.backoff_before(state.attempts)
            events("job_started", state.job, {"attempt": state.attempts})
            started = time.monotonic()
            try:
                envelope = _worker_run(state.job, cache_dir, state.attempts,
                                       fault_spec)
            except JobTimeoutError as exc:
                if self.escalate_timeout(state):
                    continue
                return JobOutcome(
                    job, "timeout", error=str(exc),
                    duration=time.monotonic() - started,
                    attempts=state.attempts,
                )
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                if state.attempts <= self.retries:
                    continue
                return JobOutcome(
                    job, "error", error=_format_error(exc),
                    duration=time.monotonic() - started,
                    attempts=state.attempts,
                )
            else:
                built = envelope.get("trace_built_attempt")
                if built is not None:
                    events("trace_built", job, {"attempt": built})
                return JobOutcome(
                    job, "ok",
                    result=result_from_payload(envelope["result"]),
                    duration=envelope["duration"], attempts=state.attempts,
                    trace_source=envelope.get("trace_source"),
                )

    def run_grouped(
        self,
        groups: Sequence[Sequence[Job]],
        cache_dir: str | None = None,
        events: EventFn | None = None,
        fault_spec: str | None = None,
        on_outcome: OutcomeFn | None = None,
    ) -> list[JobOutcome]:
        """Run trace groups: each group's cells share one acquired trace.

        Success settles straight from the group envelope; a failed cell
        drops into the ordinary per-cell retry loop with its first
        (group) attempt already charged, so the bounded-attempt policy
        is identical to :meth:`run`.
        """
        events = events or _no_events
        on_outcome = on_outcome or _no_outcome
        all_jobs = [job for group in groups for job in group]
        done: dict[str, JobOutcome] = {}
        try:
            for group in groups:
                group = list(group)
                for job in group:
                    events("job_started", job, {"attempt": 1})
                try:
                    envelope = _worker_run_group(group, cache_dir, fault_spec)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    # Group-level failure (the trace itself could not be
                    # acquired): every cell rides the per-cell path.
                    envelope = {"cells": [
                        {"key": job.key, "status": "error",
                         "error": _format_error(exc), "duration": 0.0}
                        for job in group
                    ]}
                built = envelope.get("trace_built_attempt")
                if built is not None:
                    events("trace_built", group[0], {"attempt": built})
                source = envelope.get("trace_source")
                cells = {cell["key"]: cell for cell in envelope["cells"]}
                for job in group:
                    outcome = self._settle_cell(
                        job, cells.get(job.key), source, cache_dir, events,
                        fault_spec,
                    )
                    on_outcome(outcome)
                    done[job.key] = outcome
        except KeyboardInterrupt:
            for job in all_jobs:
                if job.key not in done:
                    outcome = JobOutcome(
                        job, "interrupted", error=INTERRUPTED_ERROR,
                        attempts=0,
                    )
                    on_outcome(outcome)
                    done[job.key] = outcome
        return [done[job.key] for job in all_jobs]

    def _settle_cell(
        self,
        job: Job,
        cell: dict | None,
        source: str | None,
        cache_dir: str | None,
        events: EventFn,
        fault_spec: str | None,
    ) -> JobOutcome:
        if cell is None:
            cell = {"status": "error", "duration": 0.0,
                    "error": "group worker returned no envelope for cell"}
        if cell["status"] == "ok":
            return JobOutcome(
                job, "ok", result=result_from_payload(cell["result"]),
                duration=cell["duration"], attempts=1, trace_source=source,
            )
        state = _Attempt(job, attempts=1)
        if cell["status"] == "timeout":
            if self.escalate_timeout(state):
                return self._drive(state, cache_dir, events, fault_spec)
            return JobOutcome(
                job, "timeout", error=cell["error"],
                duration=cell["duration"], attempts=1,
            )
        if state.attempts <= self.retries:
            return self._drive(state, cache_dir, events, fault_spec)
        return JobOutcome(
            job, "error", error=cell["error"],
            duration=cell["duration"], attempts=1,
        )


class JobLease(_FailurePolicy):
    """One leased worker slot: a dedicated single-worker pool running
    one job at a time, with the shared failure policy.

    This is the executor-side unit the :mod:`repro.serve` scheduler
    hands out — it holds ``workers`` leases and feeds each from its
    fairness queue.  Because every lease owns its own single-worker
    pool, a crashing job breaks only that pool (rebuilt lazily for the
    next attempt) and blame is never ambiguous the way it is in a
    shared pool; a neighbouring tenant's cell is untouchable.

    :meth:`run_one` is synchronous and never raises for job failures —
    it always returns a terminal :class:`JobOutcome` — so callers can
    drive it from a thread (``asyncio.to_thread``) without an exception
    escaping the executor.  :meth:`cancel` is the shutdown hook: it
    kills the in-flight attempt's worker process, which surfaces in
    :meth:`run_one` as an ``"interrupted"`` outcome (the same status
    the batch executors use for SIGINT/SIGTERM).  :meth:`reap` is the
    *watchdog* hook: same worker kill, but without latching the cancel
    flag, so the cell flows down the ordinary retry/backoff path
    instead of settling interrupted.

    With ``heartbeat`` set, :meth:`run_one` emits a
    ``worker_heartbeat`` event every ``heartbeat`` seconds while an
    attempt is executing — proof of life for the lease itself, and the
    signal a serve-side watchdog contrasts with wall-clock silence to
    spot a wedged slot.
    """

    def __init__(
        self,
        retries: int = 1,
        backoff: float = 0.0,
        timeout_factor: float | None = None,
        heartbeat: float | None = None,
    ) -> None:
        super().__init__(retries=retries, backoff=backoff,
                         timeout_factor=timeout_factor)
        self.heartbeat = heartbeat if heartbeat and heartbeat > 0 else None
        self._pool: ProcessPoolExecutor | None = None
        self._cancelled = False

    def run_one(
        self,
        job: Job,
        cache_dir: str | None = None,
        events: EventFn | None = None,
        fault_spec: str | None = None,
    ) -> JobOutcome:
        """Run one job to a terminal outcome (never raises job errors)."""
        return self._drive(_Attempt(job), cache_dir, events or _no_events,
                           fault_spec)

    def _drive(
        self,
        state: _Attempt,
        cache_dir: str | None,
        events: EventFn,
        fault_spec: str | None,
    ) -> JobOutcome:
        while True:
            if self._cancelled:
                return JobOutcome(
                    state.job, "interrupted", error=INTERRUPTED_ERROR,
                    attempts=state.attempts,
                )
            state.attempts += 1
            self.backoff_before(state.attempts)
            events("job_started", state.job, {"attempt": state.attempts})
            if self._pool is None:
                self._pool = _make_pool(1)
            started = time.monotonic()
            try:
                future = self._pool.submit(
                    _worker_run, state.job, cache_dir, state.attempts,
                    fault_spec,
                )
                if self.heartbeat is None:
                    envelope = future.result()
                else:
                    while True:
                        try:
                            envelope = future.result(timeout=self.heartbeat)
                            break
                        except PoolWaitTimeout:
                            events("worker_heartbeat", state.job, {
                                "attempt": state.attempts,
                                "elapsed": round(
                                    time.monotonic() - started, 3),
                            })
            except BrokenProcessPool:
                duration = time.monotonic() - started
                self.close()    # dead pool; the next attempt gets a new one
                if self._cancelled:
                    return JobOutcome(
                        state.job, "interrupted", error=INTERRUPTED_ERROR,
                        duration=duration, attempts=state.attempts,
                    )
                if state.attempts > self.retries:
                    return JobOutcome(
                        state.job, "error",
                        error="worker process died (crash or kill)",
                        duration=duration, attempts=state.attempts,
                    )
            except JobTimeoutError as exc:
                if self.escalate_timeout(state):
                    continue
                return JobOutcome(
                    state.job, "timeout", error=str(exc),
                    duration=time.monotonic() - started,
                    attempts=state.attempts,
                )
            except Exception as exc:
                if state.attempts > self.retries:
                    return JobOutcome(
                        state.job, "error", error=_format_error(exc),
                        duration=time.monotonic() - started,
                        attempts=state.attempts,
                    )
            else:
                built = envelope.get("trace_built_attempt")
                if built is not None:
                    events("trace_built", state.job, {"attempt": built})
                return JobOutcome(
                    state.job, "ok",
                    result=result_from_payload(envelope["result"]),
                    duration=envelope["duration"], attempts=state.attempts,
                    trace_source=envelope.get("trace_source"),
                )

    def run_group(
        self,
        jobs: Sequence[Job],
        cache_dir: str | None = None,
        events: EventFn | None = None,
        fault_spec: str | None = None,
    ) -> list[JobOutcome]:
        """Run a trace group on this lease, one cell at a time.

        The cells share the lease's persistent single-worker pool, so
        the worker process acquires the shared trace once — fabric
        attach or the capacity-1 worker memo — and every later cell in
        the group hits it warm.  Cells run *sequentially* rather than
        as one batched submission on purpose: each cell's
        ``job_started`` fires as it actually begins executing (which is
        what lets a serve-side watchdog attribute a hang to the right
        cell instead of a waiting or finished groupmate), and retries,
        fault injection, heartbeats and crash blame are exactly
        :meth:`run_one`'s — a cell that kills the worker costs only its
        own attempts, and the next cell gets a fresh (cold) pool.
        """
        events = events or _no_events
        return [self.run_one(job, cache_dir, events, fault_spec)
                for job in jobs]

    def cancel(self) -> None:
        """Abort the in-flight attempt: terminate the worker process.

        Killing the worker breaks the lease's pool, which
        :meth:`run_one` observes as ``BrokenProcessPool`` and — with
        the cancel flag latched — reports as ``"interrupted"`` rather
        than retrying.  ``_processes`` is pool-internal but stable
        across supported CPythons, and there is no public way to kill
        a hung worker.
        """
        self._cancelled = True
        self.reap()

    def reap(self) -> None:
        """Kill the in-flight attempt's worker *without* cancelling.

        The lease-watchdog hook: unlike :meth:`cancel`, the cancel flag
        stays clear, so :meth:`run_one` observes the resulting
        ``BrokenProcessPool`` as an ordinary worker death — the attempt
        is retried on a fresh pool (lazily rebuilt) under the bounded
        retry/backoff policy, or settles ``"error"`` once attempts are
        exhausted.  A hang therefore costs the cell, never the slot.
        """
        pool = self._pool
        if pool is not None:
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.terminate()
                except (OSError, AttributeError):
                    pass

    def close(self) -> None:
        """Shut the lease's pool down (rebuilt lazily on next use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


class ParallelExecutor(_FailurePolicy):
    """Fan jobs out over a ``ProcessPoolExecutor``.

    Crash isolation: when a worker dies, ``ProcessPoolExecutor`` breaks
    the whole pool and every in-flight future fails with
    ``BrokenProcessPool`` — the parent cannot tell culprit from victim.
    So a broken shared pool costs nobody an attempt; the survivors are
    re-run in *isolation mode*, one single-worker pool per job, where a
    dying worker indicts exactly one job.  A job that repeatedly kills
    its worker exhausts its bounded attempts and becomes one failed
    cell; everything else completes normally.
    """

    def __init__(
        self,
        max_workers: int,
        retries: int = 1,
        backoff: float = 0.0,
        timeout_factor: float | None = None,
    ) -> None:
        super().__init__(retries=retries, backoff=backoff,
                         timeout_factor=timeout_factor)
        self.max_workers = max(1, max_workers)

    def run(
        self,
        jobs: Sequence[Job],
        cache_dir: str | None = None,
        events: EventFn | None = None,
        fault_spec: str | None = None,
        on_outcome: OutcomeFn | None = None,
    ) -> list[JobOutcome]:
        events = events or _no_events
        on_outcome = on_outcome or _no_outcome
        order = [job.key for job in jobs]
        pending = {job.key: _Attempt(job) for job in jobs}
        done: dict[str, JobOutcome] = {}
        # At most one shared round can break (isolation latches on), and
        # isolation rounds charge an attempt to every job they submit,
        # so the loop terminates within retries + 2 rounds.
        isolate = False
        try:
            while pending:
                if isolate:
                    self._isolated_round(pending, done, cache_dir, events,
                                         fault_spec, on_outcome)
                else:
                    isolate = self._shared_round(pending, done, cache_dir,
                                                 events, fault_spec,
                                                 on_outcome)
        except KeyboardInterrupt:
            for state in pending.values():
                outcome = JobOutcome(
                    state.job, "interrupted", error=INTERRUPTED_ERROR,
                    attempts=state.attempts,
                )
                on_outcome(outcome)
                done[state.job.key] = outcome
        return [done[key] for key in order]

    def _shared_round(
        self,
        pending: dict[str, _Attempt],
        done: dict[str, JobOutcome],
        cache_dir: str | None,
        events: EventFn,
        fault_spec: str | None,
        on_outcome: OutcomeFn,
    ) -> bool:
        """One pass through a shared pool; True if the pool broke."""
        pool = _make_pool(self.max_workers)
        futures = {}
        broke = False
        settled = False
        try:
            for state in list(pending.values()):
                state.attempts += 1
                self.backoff_before(state.attempts)
                events("job_started", state.job, {"attempt": state.attempts})
                try:
                    future = pool.submit(_worker_run, state.job, cache_dir,
                                         state.attempts, fault_spec)
                except BrokenProcessPool:
                    # died mid-submission; uncharge and leave the rest
                    # of the batch for the isolation rounds
                    state.attempts -= 1
                    broke = True
                    break
                futures[future] = (state, time.monotonic())
            for future in as_completed(futures):
                state, started = futures[future]
                duration = time.monotonic() - started
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    # culprit unknown — uncharge the attempt and let the
                    # isolation rounds assign blame
                    state.attempts -= 1
                    broke = True
                except Exception as exc:
                    self._settle(state, None, exc, pending, done, duration,
                                 on_outcome, events)
                else:
                    self._settle(state, payload, None, pending, done,
                                 duration, on_outcome, events)
            settled = True
        finally:
            # Once every future has resolved, workers are idle or dead
            # and joining the pool's helper threads is cheap — and
            # necessary before the isolation rounds fork fresh pools:
            # forking while a dying pool's queue-feeder threads still
            # hold their locks can deadlock the new workers.  Only an
            # interrupt (a worker may be mid-job) skips the join.
            pool.shutdown(wait=settled, cancel_futures=True)
        return broke

    def run_grouped(
        self,
        groups: Sequence[Sequence[Job]],
        cache_dir: str | None = None,
        events: EventFn | None = None,
        fault_spec: str | None = None,
        on_outcome: OutcomeFn | None = None,
    ) -> list[JobOutcome]:
        """Fan trace groups out: one worker submission per group.

        The first round ships whole groups (each worker acquires its
        group's trace once and runs every cell); any cell that fails in
        its group — or whose group broke the pool — flows through the
        same shared/isolation retry rounds as :meth:`run`, carrying its
        ``trace_ref`` so retries re-attach instead of regenerating.
        """
        events = events or _no_events
        on_outcome = on_outcome or _no_outcome
        order = [job.key for group in groups for job in group]
        pending = {job.key: _Attempt(job) for group in groups for job in group}
        done: dict[str, JobOutcome] = {}
        try:
            isolate = self._group_round(groups, pending, done, cache_dir,
                                        events, fault_spec, on_outcome)
            while pending:
                if isolate:
                    self._isolated_round(pending, done, cache_dir, events,
                                         fault_spec, on_outcome)
                else:
                    isolate = self._shared_round(pending, done, cache_dir,
                                                 events, fault_spec,
                                                 on_outcome)
        except KeyboardInterrupt:
            for state in pending.values():
                outcome = JobOutcome(
                    state.job, "interrupted", error=INTERRUPTED_ERROR,
                    attempts=state.attempts,
                )
                on_outcome(outcome)
                done[state.job.key] = outcome
        return [done[key] for key in order]

    def _group_round(
        self,
        groups: Sequence[Sequence[Job]],
        pending: dict[str, _Attempt],
        done: dict[str, JobOutcome],
        cache_dir: str | None,
        events: EventFn,
        fault_spec: str | None,
        on_outcome: OutcomeFn,
    ) -> bool:
        """One pass shipping whole groups; True if the pool broke.

        A broken pool uncharges every cell of the affected group —
        blame is as ambiguous for a group as for a lone cell — and the
        survivors fall to the isolation rounds, exactly like
        :meth:`_shared_round`.
        """
        pool = _make_pool(self.max_workers)
        futures = {}
        broke = False
        settled = False
        try:
            for group in groups:
                states = [pending[job.key] for job in group
                          if job.key in pending]
                if not states:
                    continue
                for state in states:
                    state.attempts += 1
                    events("job_started", state.job,
                           {"attempt": state.attempts})
                try:
                    future = pool.submit(
                        _worker_run_group, [s.job for s in states], cache_dir,
                        fault_spec,
                    )
                except BrokenProcessPool:
                    for state in states:
                        state.attempts -= 1
                    broke = True
                    break
                futures[future] = (states, time.monotonic())
            for future in as_completed(futures):
                states, started = futures[future]
                duration = time.monotonic() - started
                try:
                    envelope = future.result()
                except BrokenProcessPool:
                    for state in states:
                        state.attempts -= 1
                    broke = True
                except Exception as exc:
                    for state in states:
                        self._settle(state, None, exc, pending, done,
                                     duration, on_outcome, events)
                else:
                    self._settle_group(states, envelope, pending, done,
                                       on_outcome, events)
            settled = True
        finally:
            pool.shutdown(wait=settled, cancel_futures=True)
        return broke

    def _settle_group(
        self,
        states: list[_Attempt],
        envelope: dict,
        pending: dict[str, _Attempt],
        done: dict[str, JobOutcome],
        on_outcome: OutcomeFn,
        events: EventFn,
    ) -> None:
        built = envelope.get("trace_built_attempt")
        if built is not None:
            events("trace_built", states[0].job, {"attempt": built})
        source = envelope.get("trace_source")
        cells = {cell["key"]: cell for cell in envelope.get("cells", [])}
        for state in states:
            cell = cells.get(state.job.key)
            if cell is None:
                exc: Exception = _RemoteCellFailure(
                    "group worker returned no envelope for cell")
                self._settle(state, None, exc, pending, done, 0.0,
                             on_outcome, events)
            elif cell["status"] == "ok":
                cell_envelope = {"result": cell["result"],
                                 "duration": cell["duration"],
                                 "trace_source": source}
                self._settle(state, cell_envelope, None, pending, done,
                             cell["duration"], on_outcome, events)
            elif cell["status"] == "timeout":
                self._settle(state, None, JobTimeoutError(cell["error"]),
                             pending, done, cell["duration"], on_outcome,
                             events)
            else:
                self._settle(state, None, _RemoteCellFailure(cell["error"]),
                             pending, done, cell["duration"], on_outcome,
                             events)

    def _isolated_round(
        self,
        pending: dict[str, _Attempt],
        done: dict[str, JobOutcome],
        cache_dir: str | None,
        events: EventFn,
        fault_spec: str | None,
        on_outcome: OutcomeFn,
    ) -> None:
        """Run each pending job in its own single-worker pool."""
        states = list(pending.values())
        for start in range(0, len(states), self.max_workers):
            batch = states[start : start + self.max_workers]
            pools: list[ProcessPoolExecutor] = []
            futures = {}
            settled = False
            try:
                for state in batch:
                    state.attempts += 1
                    self.backoff_before(state.attempts)
                    events("job_started", state.job, {"attempt": state.attempts})
                    pool = _make_pool(1)
                    pools.append(pool)
                    futures[pool.submit(_worker_run, state.job, cache_dir,
                                        state.attempts, fault_spec)] = (
                        state,
                        time.monotonic(),
                    )
                for future in as_completed(futures):
                    state, started = futures[future]
                    duration = time.monotonic() - started
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        # single-worker pool: this job *is* the culprit
                        if state.attempts > self.retries:
                            outcome = JobOutcome(
                                state.job, "error",
                                error="worker process died (crash or kill)",
                                duration=duration, attempts=state.attempts,
                            )
                            on_outcome(outcome)
                            done[state.job.key] = outcome
                            del pending[state.job.key]
                    except Exception as exc:
                        self._settle(state, None, exc, pending, done,
                                     duration, on_outcome, events)
                    else:
                        self._settle(state, payload, None, pending, done,
                                     duration, on_outcome, events)
                settled = True
            finally:
                # join on the settled path for the same fork-safety
                # reason as the shared round (see above)
                for pool in pools:
                    pool.shutdown(wait=settled, cancel_futures=True)

    def _settle(
        self,
        state: _Attempt,
        envelope: dict | None,
        exc: BaseException | None,
        pending: dict[str, _Attempt],
        done: dict[str, JobOutcome],
        duration: float,
        on_outcome: OutcomeFn,
        events: EventFn = _no_events,
    ) -> None:
        """Resolve one attempt's (worker envelope, exception) pair.

        ``duration`` is parent-measured from submit time and only used
        for failures; successful jobs carry their worker-measured
        duration in the envelope, which excludes pool queue wait.
        """
        job = state.job
        outcome: JobOutcome | None = None
        if exc is None:
            assert envelope is not None
            built = envelope.get("trace_built_attempt")
            if built is not None:
                events("trace_built", job, {"attempt": built})
            outcome = JobOutcome(
                job, "ok", result=result_from_payload(envelope["result"]),
                duration=envelope["duration"], attempts=state.attempts,
                trace_source=envelope.get("trace_source"),
            )
        elif isinstance(exc, JobTimeoutError):
            if self.escalate_timeout(state):
                return            # stays pending with a longer timeout
            outcome = JobOutcome(
                job, "timeout", error=str(exc),
                duration=duration, attempts=state.attempts,
            )
        elif state.attempts > self.retries:
            outcome = JobOutcome(
                job, "error", error=_format_error(exc),
                duration=duration, attempts=state.attempts,
            )
        if outcome is not None:
            on_outcome(outcome)
            done[job.key] = outcome
            del pending[job.key]
        # else: stays pending, retried next round


def _format_error(exc: BaseException) -> str:
    if isinstance(exc, _RemoteCellFailure):
        return str(exc)     # already formatted by the group worker
    head = "".join(traceback.format_exception_only(type(exc), exc)).strip()
    return head
