"""Executors — run jobs serially or across a process pool.

Two interchangeable drivers with identical semantics and results:

* :class:`SerialExecutor` — in-process, one job at a time.  No worker
  processes, so it is the ``--jobs 1`` default and the safe choice on
  platforms where ``fork`` is unavailable (Windows) or undesirable.
* :class:`ParallelExecutor` — a ``concurrent.futures``
  ``ProcessPoolExecutor`` fan-out with per-job timeouts, bounded
  retries, and crash isolation: a worker dying (segfault, ``os._exit``,
  OOM kill) breaks only its own cell, not the run — the pool is rebuilt
  and the surviving jobs resubmitted, while a job that repeatedly kills
  its worker exhausts its attempts and is reported as failed.

A third driver, :class:`JobLease`, is the leasable unit behind the
:mod:`repro.serve` scheduler: one dedicated single-worker pool running
one job at a time, with the same failure policy and a :meth:`cancel`
hook for graceful server shutdown.

Shared failure policy (both drivers):

* **Deterministic retry backoff** — attempt *n*'s resubmission is
  delayed by ``backoff * 2**(n-1)`` seconds, a fixed schedule with no
  jitter so chaos runs and their journals are reproducible.
* **Timeout escalation** — with ``timeout_factor`` set, a timed-out
  job is retried (within its bounded attempts) with its timeout
  multiplied by the factor, which turns "this cell is slow today" into
  a recoverable condition instead of a dead cell.
* **Graceful interruption** — a ``KeyboardInterrupt`` (Ctrl-C, or
  SIGTERM converted by the runtime) stops scheduling, cancels what it
  can, and returns the completed outcomes with the rest marked
  ``"interrupted"`` — callers keep (and cache) the finished cells.

Timeouts are enforced *inside* the worker via ``SIGALRM`` (each pool
worker runs jobs on its main thread), so a timed-out job ends cleanly
without tearing down the pool.  Where ``SIGALRM`` does not exist the
timeout degrades to best-effort (the job runs to completion) and a
one-time :class:`RuntimeWarning` makes the degradation visible.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
import traceback
import warnings
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures import TimeoutError as PoolWaitTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace

from repro.pipeline import SimResult
from repro.runtime.jobs import Job, execute_job, result_from_payload

# events callback: (kind, job, extra-fields) -> None
EventFn = Callable[[str, Job, dict], None]
# outcome callback: invoked the moment a job's outcome is final, before
# run() returns — callers journal/cache each cell as it settles so a
# later hang, crash or interrupt cannot lose already-finished work
OutcomeFn = Callable[["JobOutcome"], None]

INTERRUPTED_ERROR = "interrupted by signal before completion"


class JobTimeoutError(RuntimeError):
    """A job exceeded its per-job timeout."""


@dataclass
class JobOutcome:
    """What happened to one job."""

    job: Job
    status: str         # "ok" | "error" | "timeout" | "interrupted"
    result: SimResult | None = None
    error: str | None = None
    duration: float = 0.0
    attempts: int = 1
    cache_hit: bool = False
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


_timeout_degraded_warned = False


def _call_with_timeout(fn: Callable[[], object], timeout: float | None) -> object:
    """Run ``fn``, raising :class:`JobTimeoutError` after ``timeout`` s.

    Uses ``SIGALRM``/``setitimer``, which only works on the main thread
    of a process with POSIX signals — exactly where executor workers
    (and the serial driver) run.  Anywhere else the call is unbounded,
    and a one-time :class:`RuntimeWarning` says so instead of silently
    dropping the limit.
    """
    wanted = timeout is not None and timeout > 0
    usable = (
        wanted
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        global _timeout_degraded_warned
        if wanted and not _timeout_degraded_warned:
            _timeout_degraded_warned = True
            warnings.warn(
                "per-job timeout requested but SIGALRM is unavailable here "
                "(no POSIX signals or not on the main thread); jobs run "
                "unbounded",
                RuntimeWarning,
                stacklevel=2,
            )
        return fn()

    def _on_alarm(signum, frame):
        raise JobTimeoutError(f"job exceeded timeout of {timeout:.3f}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _worker_run(
    job: Job,
    cache_dir: str | None,
    attempt: int = 1,
    fault_spec: str | None = None,
) -> dict:
    """Pool-worker entry point: execute one job under its timeout.

    Returns an envelope ``{"result": payload, "duration": seconds}`` —
    the duration is measured here, in the worker, so it reflects actual
    execution time rather than time spent queued in the pool.
    """
    started = time.monotonic()
    payload = _call_with_timeout(
        lambda: execute_job(job, cache_dir, attempt=attempt,
                            fault_spec=fault_spec),
        job.timeout,
    )
    return {"result": payload, "duration": time.monotonic() - started}


def _no_events(kind: str, job: Job, fields: dict) -> None:
    pass


def _no_outcome(outcome: "JobOutcome") -> None:
    pass


_pool_ctx = None


def _pool_context():
    """The multiprocessing context worker pools are built from.

    The default ``fork`` start method forks workers lazily at submit
    time, while the pool's own queue-feeder and manager threads are
    live — a worker forked while one of those threads holds a lock
    inherits it held-forever and deadlocks on first acquire (observed
    intermittently under heavy pool churn, e.g. crash-isolation
    rounds).  ``forkserver`` forks every worker from a clean,
    single-threaded server process, which eliminates the entire class;
    preloading this module keeps the per-worker cost at a plain fork
    after the server's one-time warm import.  Falls back to the
    platform default where forkserver does not exist (Windows).
    """
    global _pool_ctx
    if _pool_ctx is None:
        try:
            ctx = multiprocessing.get_context("forkserver")
            ctx.set_forkserver_preload(["repro.runtime.executor"])
        except (ValueError, AttributeError):
            ctx = multiprocessing.get_context()
        _pool_ctx = ctx
    return _pool_ctx


def _make_pool(max_workers: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(max_workers=max_workers,
                               mp_context=_pool_context())


@dataclass
class _Attempt:
    job: Job
    attempts: int = 0


class _FailurePolicy:
    """Retry/backoff/escalation knobs shared by both executors."""

    def __init__(
        self,
        retries: int = 1,
        backoff: float = 0.0,
        timeout_factor: float | None = None,
    ) -> None:
        self.retries = max(0, retries)
        self.backoff = max(0.0, backoff)
        self.timeout_factor = timeout_factor

    def backoff_before(self, attempt: int) -> None:
        """Deterministic exponential delay before retry ``attempt``."""
        if self.backoff > 0.0 and attempt > 1:
            time.sleep(self.backoff * 2 ** (attempt - 2))

    def escalate_timeout(self, state: _Attempt) -> bool:
        """Retry a timed-out attempt with a scaled timeout, if enabled."""
        if (
            self.timeout_factor is None
            or state.job.timeout is None
            or state.attempts > self.retries
        ):
            return False
        state.job = replace(
            state.job, timeout=state.job.timeout * self.timeout_factor
        )
        return True


class SerialExecutor(_FailurePolicy):
    """Run jobs one at a time in the calling process."""

    def run(
        self,
        jobs: Sequence[Job],
        cache_dir: str | None = None,
        events: EventFn | None = None,
        fault_spec: str | None = None,
        on_outcome: OutcomeFn | None = None,
    ) -> list[JobOutcome]:
        events = events or _no_events
        on_outcome = on_outcome or _no_outcome
        outcomes = []
        try:
            for job in jobs:
                outcome = self._run_one(job, cache_dir, events, fault_spec)
                on_outcome(outcome)
                outcomes.append(outcome)
        except KeyboardInterrupt:
            for job in jobs[len(outcomes):]:
                outcome = JobOutcome(
                    job, "interrupted", error=INTERRUPTED_ERROR, attempts=0,
                )
                on_outcome(outcome)
                outcomes.append(outcome)
        return outcomes

    def _run_one(
        self,
        job: Job,
        cache_dir: str | None,
        events: EventFn,
        fault_spec: str | None,
    ) -> JobOutcome:
        state = _Attempt(job)
        while True:
            state.attempts += 1
            self.backoff_before(state.attempts)
            events("job_started", state.job, {"attempt": state.attempts})
            started = time.monotonic()
            try:
                envelope = _worker_run(state.job, cache_dir, state.attempts,
                                       fault_spec)
            except JobTimeoutError as exc:
                if self.escalate_timeout(state):
                    continue
                return JobOutcome(
                    job, "timeout", error=str(exc),
                    duration=time.monotonic() - started,
                    attempts=state.attempts,
                )
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                if state.attempts <= self.retries:
                    continue
                return JobOutcome(
                    job, "error", error=_format_error(exc),
                    duration=time.monotonic() - started,
                    attempts=state.attempts,
                )
            else:
                return JobOutcome(
                    job, "ok",
                    result=result_from_payload(envelope["result"]),
                    duration=envelope["duration"], attempts=state.attempts,
                )


class JobLease(_FailurePolicy):
    """One leased worker slot: a dedicated single-worker pool running
    one job at a time, with the shared failure policy.

    This is the executor-side unit the :mod:`repro.serve` scheduler
    hands out — it holds ``workers`` leases and feeds each from its
    fairness queue.  Because every lease owns its own single-worker
    pool, a crashing job breaks only that pool (rebuilt lazily for the
    next attempt) and blame is never ambiguous the way it is in a
    shared pool; a neighbouring tenant's cell is untouchable.

    :meth:`run_one` is synchronous and never raises for job failures —
    it always returns a terminal :class:`JobOutcome` — so callers can
    drive it from a thread (``asyncio.to_thread``) without an exception
    escaping the executor.  :meth:`cancel` is the shutdown hook: it
    kills the in-flight attempt's worker process, which surfaces in
    :meth:`run_one` as an ``"interrupted"`` outcome (the same status
    the batch executors use for SIGINT/SIGTERM).  :meth:`reap` is the
    *watchdog* hook: same worker kill, but without latching the cancel
    flag, so the cell flows down the ordinary retry/backoff path
    instead of settling interrupted.

    With ``heartbeat`` set, :meth:`run_one` emits a
    ``worker_heartbeat`` event every ``heartbeat`` seconds while an
    attempt is executing — proof of life for the lease itself, and the
    signal a serve-side watchdog contrasts with wall-clock silence to
    spot a wedged slot.
    """

    def __init__(
        self,
        retries: int = 1,
        backoff: float = 0.0,
        timeout_factor: float | None = None,
        heartbeat: float | None = None,
    ) -> None:
        super().__init__(retries=retries, backoff=backoff,
                         timeout_factor=timeout_factor)
        self.heartbeat = heartbeat if heartbeat and heartbeat > 0 else None
        self._pool: ProcessPoolExecutor | None = None
        self._cancelled = False

    def run_one(
        self,
        job: Job,
        cache_dir: str | None = None,
        events: EventFn | None = None,
        fault_spec: str | None = None,
    ) -> JobOutcome:
        """Run one job to a terminal outcome (never raises job errors)."""
        events = events or _no_events
        state = _Attempt(job)
        while True:
            if self._cancelled:
                return JobOutcome(
                    state.job, "interrupted", error=INTERRUPTED_ERROR,
                    attempts=state.attempts,
                )
            state.attempts += 1
            self.backoff_before(state.attempts)
            events("job_started", state.job, {"attempt": state.attempts})
            if self._pool is None:
                self._pool = _make_pool(1)
            started = time.monotonic()
            try:
                future = self._pool.submit(
                    _worker_run, state.job, cache_dir, state.attempts,
                    fault_spec,
                )
                if self.heartbeat is None:
                    envelope = future.result()
                else:
                    while True:
                        try:
                            envelope = future.result(timeout=self.heartbeat)
                            break
                        except PoolWaitTimeout:
                            events("worker_heartbeat", state.job, {
                                "attempt": state.attempts,
                                "elapsed": round(
                                    time.monotonic() - started, 3),
                            })
            except BrokenProcessPool:
                duration = time.monotonic() - started
                self.close()    # dead pool; the next attempt gets a new one
                if self._cancelled:
                    return JobOutcome(
                        state.job, "interrupted", error=INTERRUPTED_ERROR,
                        duration=duration, attempts=state.attempts,
                    )
                if state.attempts > self.retries:
                    return JobOutcome(
                        state.job, "error",
                        error="worker process died (crash or kill)",
                        duration=duration, attempts=state.attempts,
                    )
            except JobTimeoutError as exc:
                if self.escalate_timeout(state):
                    continue
                return JobOutcome(
                    state.job, "timeout", error=str(exc),
                    duration=time.monotonic() - started,
                    attempts=state.attempts,
                )
            except Exception as exc:
                if state.attempts > self.retries:
                    return JobOutcome(
                        state.job, "error", error=_format_error(exc),
                        duration=time.monotonic() - started,
                        attempts=state.attempts,
                    )
            else:
                return JobOutcome(
                    state.job, "ok",
                    result=result_from_payload(envelope["result"]),
                    duration=envelope["duration"], attempts=state.attempts,
                )

    def cancel(self) -> None:
        """Abort the in-flight attempt: terminate the worker process.

        Killing the worker breaks the lease's pool, which
        :meth:`run_one` observes as ``BrokenProcessPool`` and — with
        the cancel flag latched — reports as ``"interrupted"`` rather
        than retrying.  ``_processes`` is pool-internal but stable
        across supported CPythons, and there is no public way to kill
        a hung worker.
        """
        self._cancelled = True
        self.reap()

    def reap(self) -> None:
        """Kill the in-flight attempt's worker *without* cancelling.

        The lease-watchdog hook: unlike :meth:`cancel`, the cancel flag
        stays clear, so :meth:`run_one` observes the resulting
        ``BrokenProcessPool`` as an ordinary worker death — the attempt
        is retried on a fresh pool (lazily rebuilt) under the bounded
        retry/backoff policy, or settles ``"error"`` once attempts are
        exhausted.  A hang therefore costs the cell, never the slot.
        """
        pool = self._pool
        if pool is not None:
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.terminate()
                except (OSError, AttributeError):
                    pass

    def close(self) -> None:
        """Shut the lease's pool down (rebuilt lazily on next use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


class ParallelExecutor(_FailurePolicy):
    """Fan jobs out over a ``ProcessPoolExecutor``.

    Crash isolation: when a worker dies, ``ProcessPoolExecutor`` breaks
    the whole pool and every in-flight future fails with
    ``BrokenProcessPool`` — the parent cannot tell culprit from victim.
    So a broken shared pool costs nobody an attempt; the survivors are
    re-run in *isolation mode*, one single-worker pool per job, where a
    dying worker indicts exactly one job.  A job that repeatedly kills
    its worker exhausts its bounded attempts and becomes one failed
    cell; everything else completes normally.
    """

    def __init__(
        self,
        max_workers: int,
        retries: int = 1,
        backoff: float = 0.0,
        timeout_factor: float | None = None,
    ) -> None:
        super().__init__(retries=retries, backoff=backoff,
                         timeout_factor=timeout_factor)
        self.max_workers = max(1, max_workers)

    def run(
        self,
        jobs: Sequence[Job],
        cache_dir: str | None = None,
        events: EventFn | None = None,
        fault_spec: str | None = None,
        on_outcome: OutcomeFn | None = None,
    ) -> list[JobOutcome]:
        events = events or _no_events
        on_outcome = on_outcome or _no_outcome
        order = [job.key for job in jobs]
        pending = {job.key: _Attempt(job) for job in jobs}
        done: dict[str, JobOutcome] = {}
        # At most one shared round can break (isolation latches on), and
        # isolation rounds charge an attempt to every job they submit,
        # so the loop terminates within retries + 2 rounds.
        isolate = False
        try:
            while pending:
                if isolate:
                    self._isolated_round(pending, done, cache_dir, events,
                                         fault_spec, on_outcome)
                else:
                    isolate = self._shared_round(pending, done, cache_dir,
                                                 events, fault_spec,
                                                 on_outcome)
        except KeyboardInterrupt:
            for state in pending.values():
                outcome = JobOutcome(
                    state.job, "interrupted", error=INTERRUPTED_ERROR,
                    attempts=state.attempts,
                )
                on_outcome(outcome)
                done[state.job.key] = outcome
        return [done[key] for key in order]

    def _shared_round(
        self,
        pending: dict[str, _Attempt],
        done: dict[str, JobOutcome],
        cache_dir: str | None,
        events: EventFn,
        fault_spec: str | None,
        on_outcome: OutcomeFn,
    ) -> bool:
        """One pass through a shared pool; True if the pool broke."""
        pool = _make_pool(self.max_workers)
        futures = {}
        broke = False
        settled = False
        try:
            for state in list(pending.values()):
                state.attempts += 1
                self.backoff_before(state.attempts)
                events("job_started", state.job, {"attempt": state.attempts})
                try:
                    future = pool.submit(_worker_run, state.job, cache_dir,
                                         state.attempts, fault_spec)
                except BrokenProcessPool:
                    # died mid-submission; uncharge and leave the rest
                    # of the batch for the isolation rounds
                    state.attempts -= 1
                    broke = True
                    break
                futures[future] = (state, time.monotonic())
            for future in as_completed(futures):
                state, started = futures[future]
                duration = time.monotonic() - started
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    # culprit unknown — uncharge the attempt and let the
                    # isolation rounds assign blame
                    state.attempts -= 1
                    broke = True
                except Exception as exc:
                    self._settle(state, None, exc, pending, done, duration,
                                 on_outcome)
                else:
                    self._settle(state, payload, None, pending, done,
                                 duration, on_outcome)
            settled = True
        finally:
            # Once every future has resolved, workers are idle or dead
            # and joining the pool's helper threads is cheap — and
            # necessary before the isolation rounds fork fresh pools:
            # forking while a dying pool's queue-feeder threads still
            # hold their locks can deadlock the new workers.  Only an
            # interrupt (a worker may be mid-job) skips the join.
            pool.shutdown(wait=settled, cancel_futures=True)
        return broke

    def _isolated_round(
        self,
        pending: dict[str, _Attempt],
        done: dict[str, JobOutcome],
        cache_dir: str | None,
        events: EventFn,
        fault_spec: str | None,
        on_outcome: OutcomeFn,
    ) -> None:
        """Run each pending job in its own single-worker pool."""
        states = list(pending.values())
        for start in range(0, len(states), self.max_workers):
            batch = states[start : start + self.max_workers]
            pools: list[ProcessPoolExecutor] = []
            futures = {}
            settled = False
            try:
                for state in batch:
                    state.attempts += 1
                    self.backoff_before(state.attempts)
                    events("job_started", state.job, {"attempt": state.attempts})
                    pool = _make_pool(1)
                    pools.append(pool)
                    futures[pool.submit(_worker_run, state.job, cache_dir,
                                        state.attempts, fault_spec)] = (
                        state,
                        time.monotonic(),
                    )
                for future in as_completed(futures):
                    state, started = futures[future]
                    duration = time.monotonic() - started
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        # single-worker pool: this job *is* the culprit
                        if state.attempts > self.retries:
                            outcome = JobOutcome(
                                state.job, "error",
                                error="worker process died (crash or kill)",
                                duration=duration, attempts=state.attempts,
                            )
                            on_outcome(outcome)
                            done[state.job.key] = outcome
                            del pending[state.job.key]
                    except Exception as exc:
                        self._settle(state, None, exc, pending, done,
                                     duration, on_outcome)
                    else:
                        self._settle(state, payload, None, pending, done,
                                     duration, on_outcome)
                settled = True
            finally:
                # join on the settled path for the same fork-safety
                # reason as the shared round (see above)
                for pool in pools:
                    pool.shutdown(wait=settled, cancel_futures=True)

    def _settle(
        self,
        state: _Attempt,
        envelope: dict | None,
        exc: BaseException | None,
        pending: dict[str, _Attempt],
        done: dict[str, JobOutcome],
        duration: float,
        on_outcome: OutcomeFn,
    ) -> None:
        """Resolve one attempt's (worker envelope, exception) pair.

        ``duration`` is parent-measured from submit time and only used
        for failures; successful jobs carry their worker-measured
        duration in the envelope, which excludes pool queue wait.
        """
        job = state.job
        outcome: JobOutcome | None = None
        if exc is None:
            assert envelope is not None
            outcome = JobOutcome(
                job, "ok", result=result_from_payload(envelope["result"]),
                duration=envelope["duration"], attempts=state.attempts,
            )
        elif isinstance(exc, JobTimeoutError):
            if self.escalate_timeout(state):
                return            # stays pending with a longer timeout
            outcome = JobOutcome(
                job, "timeout", error=str(exc),
                duration=duration, attempts=state.attempts,
            )
        elif state.attempts > self.retries:
            outcome = JobOutcome(
                job, "error", error=_format_error(exc),
                duration=duration, attempts=state.attempts,
            )
        if outcome is not None:
            on_outcome(outcome)
            done[job.key] = outcome
            del pending[job.key]
        # else: stays pending, retried next round


def _format_error(exc: BaseException) -> str:
    head = "".join(traceback.format_exception_only(type(exc), exc)).strip()
    return head
