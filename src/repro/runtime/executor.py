"""Executors — run jobs serially or across a process pool.

Two interchangeable drivers with identical semantics and results:

* :class:`SerialExecutor` — in-process, one job at a time.  No worker
  processes, so it is the ``--jobs 1`` default and the safe choice on
  platforms where ``fork`` is unavailable (Windows) or undesirable.
* :class:`ParallelExecutor` — a ``concurrent.futures``
  ``ProcessPoolExecutor`` fan-out with per-job timeouts, bounded
  retries, and crash isolation: a worker dying (segfault, ``os._exit``,
  OOM kill) breaks only its own cell, not the run — the pool is rebuilt
  and the surviving jobs resubmitted, while a job that repeatedly kills
  its worker exhausts its attempts and is reported as failed.

Timeouts are enforced *inside* the worker via ``SIGALRM`` (each pool
worker runs jobs on its main thread), so a timed-out job ends cleanly
without tearing down the pool.  Where ``SIGALRM`` does not exist the
timeout degrades to best-effort (the job runs to completion).
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.pipeline import SimResult
from repro.runtime.jobs import Job, execute_job, result_from_payload

# events callback: (kind, job, extra-fields) -> None
EventFn = Callable[[str, Job, dict], None]


class JobTimeoutError(RuntimeError):
    """A job exceeded its per-job timeout."""


@dataclass
class JobOutcome:
    """What happened to one job."""

    job: Job
    status: str                       # "ok" | "error" | "timeout"
    result: SimResult | None = None
    error: str | None = None
    duration: float = 0.0
    attempts: int = 1
    cache_hit: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _call_with_timeout(fn: Callable[[], object], timeout: float | None) -> object:
    """Run ``fn``, raising :class:`JobTimeoutError` after ``timeout`` s.

    Uses ``SIGALRM``/``setitimer``, which only works on the main thread
    of a process with POSIX signals — exactly where executor workers
    (and the serial driver) run.  Anywhere else the call is unbounded.
    """
    usable = (
        timeout is not None
        and timeout > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        return fn()

    def _on_alarm(signum, frame):
        raise JobTimeoutError(f"job exceeded timeout of {timeout:.3f}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _worker_run(job: Job, cache_dir: str | None) -> dict:
    """Pool-worker entry point: execute one job under its timeout.

    Returns an envelope ``{"result": payload, "duration": seconds}`` —
    the duration is measured here, in the worker, so it reflects actual
    execution time rather than time spent queued in the pool.
    """
    started = time.monotonic()
    payload = _call_with_timeout(lambda: execute_job(job, cache_dir), job.timeout)
    return {"result": payload, "duration": time.monotonic() - started}


def _no_events(kind: str, job: Job, fields: dict) -> None:
    pass


@dataclass
class _Attempt:
    job: Job
    attempts: int = 0


class SerialExecutor:
    """Run jobs one at a time in the calling process."""

    def __init__(self, retries: int = 1) -> None:
        self.retries = max(0, retries)

    def run(
        self,
        jobs: Sequence[Job],
        cache_dir: str | None = None,
        events: EventFn | None = None,
    ) -> list[JobOutcome]:
        events = events or _no_events
        outcomes = []
        for job in jobs:
            attempts = 0
            while True:
                attempts += 1
                events("job_started", job, {"attempt": attempts})
                started = time.monotonic()
                try:
                    envelope = _worker_run(job, cache_dir)
                except JobTimeoutError as exc:
                    outcome = JobOutcome(
                        job, "timeout", error=str(exc),
                        duration=time.monotonic() - started, attempts=attempts,
                    )
                except Exception as exc:
                    if attempts <= self.retries:
                        continue
                    outcome = JobOutcome(
                        job, "error", error=_format_error(exc),
                        duration=time.monotonic() - started, attempts=attempts,
                    )
                else:
                    outcome = JobOutcome(
                        job, "ok",
                        result=result_from_payload(envelope["result"]),
                        duration=envelope["duration"], attempts=attempts,
                    )
                break
            outcomes.append(outcome)
        return outcomes


class ParallelExecutor:
    """Fan jobs out over a ``ProcessPoolExecutor``.

    Crash isolation: when a worker dies, ``ProcessPoolExecutor`` breaks
    the whole pool and every in-flight future fails with
    ``BrokenProcessPool`` — the parent cannot tell culprit from victim.
    So a broken shared pool costs nobody an attempt; the survivors are
    re-run in *isolation mode*, one single-worker pool per job, where a
    dying worker indicts exactly one job.  A job that repeatedly kills
    its worker exhausts its bounded attempts and becomes one failed
    cell; everything else completes normally.
    """

    def __init__(self, max_workers: int, retries: int = 1) -> None:
        self.max_workers = max(1, max_workers)
        self.retries = max(0, retries)

    def run(
        self,
        jobs: Sequence[Job],
        cache_dir: str | None = None,
        events: EventFn | None = None,
    ) -> list[JobOutcome]:
        events = events or _no_events
        order = [job.key for job in jobs]
        pending = {job.key: _Attempt(job) for job in jobs}
        done: dict[str, JobOutcome] = {}
        # At most one shared round can break (isolation latches on), and
        # isolation rounds charge an attempt to every job they submit,
        # so the loop terminates within retries + 2 rounds.
        isolate = False
        while pending:
            if isolate:
                self._isolated_round(pending, done, cache_dir, events)
            else:
                isolate = self._shared_round(pending, done, cache_dir, events)
        return [done[key] for key in order]

    def _shared_round(
        self,
        pending: dict[str, _Attempt],
        done: dict[str, JobOutcome],
        cache_dir: str | None,
        events: EventFn,
    ) -> bool:
        """One pass through a shared pool; True if the pool broke."""
        pool = ProcessPoolExecutor(max_workers=self.max_workers)
        futures = {}
        broke = False
        try:
            for state in list(pending.values()):
                state.attempts += 1
                events("job_started", state.job, {"attempt": state.attempts})
                try:
                    future = pool.submit(_worker_run, state.job, cache_dir)
                except BrokenProcessPool:
                    # died mid-submission; uncharge and leave the rest
                    # of the batch for the isolation rounds
                    state.attempts -= 1
                    broke = True
                    break
                futures[future] = (state, time.monotonic())
            for future in as_completed(futures):
                state, started = futures[future]
                duration = time.monotonic() - started
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    # culprit unknown — uncharge the attempt and let the
                    # isolation rounds assign blame
                    state.attempts -= 1
                    broke = True
                except Exception as exc:
                    self._settle(state, None, exc, pending, done, duration)
                else:
                    self._settle(state, payload, None, pending, done, duration)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return broke

    def _isolated_round(
        self,
        pending: dict[str, _Attempt],
        done: dict[str, JobOutcome],
        cache_dir: str | None,
        events: EventFn,
    ) -> None:
        """Run each pending job in its own single-worker pool."""
        states = list(pending.values())
        for start in range(0, len(states), self.max_workers):
            batch = states[start : start + self.max_workers]
            pools: list[ProcessPoolExecutor] = []
            futures = {}
            try:
                for state in batch:
                    state.attempts += 1
                    events("job_started", state.job, {"attempt": state.attempts})
                    pool = ProcessPoolExecutor(max_workers=1)
                    pools.append(pool)
                    futures[pool.submit(_worker_run, state.job, cache_dir)] = (
                        state,
                        time.monotonic(),
                    )
                for future in as_completed(futures):
                    state, started = futures[future]
                    duration = time.monotonic() - started
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        # single-worker pool: this job *is* the culprit
                        if state.attempts > self.retries:
                            done[state.job.key] = JobOutcome(
                                state.job, "error",
                                error="worker process died (crash or kill)",
                                duration=duration, attempts=state.attempts,
                            )
                            del pending[state.job.key]
                    except Exception as exc:
                        self._settle(state, None, exc, pending, done, duration)
                    else:
                        self._settle(state, payload, None, pending, done, duration)
            finally:
                for pool in pools:
                    pool.shutdown(wait=False, cancel_futures=True)

    def _settle(
        self,
        state: _Attempt,
        envelope: dict | None,
        exc: BaseException | None,
        pending: dict[str, _Attempt],
        done: dict[str, JobOutcome],
        duration: float,
    ) -> None:
        """Resolve one attempt's (worker envelope, exception) pair.

        ``duration`` is parent-measured from submit time and only used
        for failures; successful jobs carry their worker-measured
        duration in the envelope, which excludes pool queue wait.
        """
        job = state.job
        if exc is None:
            assert envelope is not None
            done[job.key] = JobOutcome(
                job, "ok", result=result_from_payload(envelope["result"]),
                duration=envelope["duration"], attempts=state.attempts,
            )
            del pending[job.key]
        elif isinstance(exc, JobTimeoutError):
            done[job.key] = JobOutcome(
                job, "timeout", error=str(exc),
                duration=duration, attempts=state.attempts,
            )
            del pending[job.key]
        elif state.attempts > self.retries:
            done[job.key] = JobOutcome(
                job, "error", error=_format_error(exc),
                duration=duration, attempts=state.attempts,
            )
            del pending[job.key]
        # else: stays pending, retried next round


def _format_error(exc: BaseException) -> str:
    head = "".join(traceback.format_exception_only(type(exc), exc)).strip()
    return head
