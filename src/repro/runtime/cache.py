"""Content-addressed on-disk cache for simulation results and traces.

Layout under the cache root (``~/.cache/repro`` by default, overridden
by ``$REPRO_CACHE_DIR`` or ``--cache-dir``)::

    results/<k0k1>/<key>.json   # schema-versioned SimResult payloads
    traces/<key>.trace          # repro.trace.serialization v1 format

Result entries are JSON (never pickles): the payload embeds the job's
identity fields next to :meth:`SimResult.to_dict`, so an entry is
self-describing and auditable with standard tools.  All writes are
atomic (temp file + ``os.replace``) so concurrent workers and runs can
share one cache directory; any unreadable or schema-mismatched entry is
treated as a miss and overwritten, never trusted.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.pipeline.stats import RESULT_SCHEMA_VERSION, SimResult
from repro.trace.serialization import load_trace, save_trace
from repro.trace.trace import Trace

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_SCHEMA_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def _atomic_write_text(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ResultCache:
    """Content-addressed store for :class:`SimResult` and trace files."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    # -- results ---------------------------------------------------------

    def result_path(self, key: str) -> Path:
        return self.root / "results" / key[:2] / f"{key}.json"

    def get(self, key: str) -> SimResult | None:
        """The cached result for ``key``, or None on miss/corruption."""
        path = self.result_path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("cache_schema") != CACHE_SCHEMA_VERSION:
            return None
        try:
            return SimResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, key: str, result: SimResult, job_fields: dict | None = None) -> None:
        """Store ``result`` under ``key`` atomically."""
        payload = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "result_schema": RESULT_SCHEMA_VERSION,
            "key": key,
            "job": job_fields or {},
            "result": result.to_dict(),
        }
        _atomic_write_text(self.result_path(key), json.dumps(payload))

    def contains(self, key: str) -> bool:
        return self.get(key) is not None

    # -- traces ----------------------------------------------------------

    def trace_path(self, key: str) -> Path:
        return self.root / "traces" / f"{key}.trace"

    def get_trace(self, key: str) -> Trace | None:
        """The cached trace for ``key``, or None on miss/corruption."""
        path = self.trace_path(key)
        if not path.is_file():
            return None
        try:
            return load_trace(path)
        except (OSError, ValueError):
            return None

    def put_trace(self, key: str, trace: Trace) -> None:
        """Store ``trace`` under ``key`` atomically."""
        path = self.trace_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        os.close(fd)
        try:
            save_trace(trace, tmp)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
