"""Content-addressed on-disk cache for simulation results and traces.

Layout under the cache root (``~/.cache/repro`` by default, overridden
by ``$REPRO_CACHE_DIR`` or ``--cache-dir``)::

    results/<k0k1>/<key>.json   # schema-versioned SimResult payloads
    traces/<key>.trace          # repro.trace.serialization v1 format
    corrupt/                    # quarantined unreadable/bad-checksum entries

Result entries are JSON (never pickles): the payload embeds the job's
identity fields next to :meth:`SimResult.to_dict`, so an entry is
self-describing and auditable with standard tools.  All writes are
atomic (temp file + ``os.replace``) so concurrent workers and runs can
share one cache directory.

Integrity: every result payload carries a sha256 checksum over its
canonical result JSON.  An entry that cannot be parsed or whose
checksum does not match is **quarantined** — moved under ``corrupt/``
and reported through the ``on_corrupt`` callback (the runtime turns
that into a ``cache_corrupt`` journal event) — rather than silently
overwritten, so disk-level corruption stays observable and diagnosable.
A payload whose ``cache_schema`` is simply from an older release is a
plain miss (stale, not corrupt).  :meth:`ResultCache.verify` audits the
whole store; :meth:`ResultCache.gc` prunes it by age and size.

Eviction is least-recently-*used*, not least-recently-written: every
:meth:`ResultCache.get` hit refreshes the entry's atime/mtime with
``os.utime`` (filesystems mounted ``noatime``/``relatime`` would
otherwise never record reads), so a long-lived shared store — e.g. one
behind a :mod:`repro.serve` gateway — keeps its hot entries and
:meth:`ResultCache.gc` reclaims the ones nobody has asked for.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from collections.abc import Callable
from pathlib import Path

from repro.pipeline.stats import RESULT_SCHEMA_VERSION, SimResult
from repro.trace.columnar import ColumnarTrace
from repro.trace.serialization import load_trace, load_trace_columnar, save_trace
from repro.trace.trace import Trace

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_SCHEMA_VERSION = 2      # v2: payloads carry a sha256 checksum

# (key, reason, quarantine-destination) -> None
CorruptFn = Callable[[str, str, Path], None]


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def _atomic_write_text(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def result_checksum(result_payload: dict) -> str:
    """sha256 over the canonical JSON of a result payload."""
    blob = json.dumps(result_payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Content-addressed store for :class:`SimResult` and trace files.

    Args:
        root: Cache root directory (None: :func:`default_cache_dir`).
        on_corrupt: Called once per quarantined entry with
            ``(key, reason, destination)``; None ignores them silently.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        on_corrupt: CorruptFn | None = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.on_corrupt = on_corrupt

    # -- results ---------------------------------------------------------

    def result_path(self, key: str) -> Path:
        return self.root / "results" / key[:2] / f"{key}.json"

    def quarantine_dir(self) -> Path:
        return self.root / "corrupt"

    def _quarantine(self, key: str, path: Path, reason: str) -> Path | None:
        """Move a bad entry under ``corrupt/``; returns the destination."""
        dest = self.quarantine_dir() / path.name
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
        except OSError:
            return None
        if self.on_corrupt is not None:
            self.on_corrupt(key, reason, dest)
        return dest

    def get(self, key: str) -> SimResult | None:
        """The cached result for ``key``, or None on miss.

        Unparseable or checksum-failed entries are quarantined under
        ``corrupt/`` (never silently overwritten in place) and read as
        a miss; entries from an older cache schema are a plain miss.
        """
        path = self.result_path(key)
        if not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text())
        except OSError:
            return None
        except ValueError:
            self._quarantine(key, path, "unparseable JSON")
            return None
        if not isinstance(payload, dict):
            self._quarantine(key, path, "non-object payload")
            return None
        if payload.get("cache_schema") != CACHE_SCHEMA_VERSION:
            return None           # stale schema: a miss, not corruption
        result_payload = payload.get("result")
        if not isinstance(result_payload, dict) or payload.get(
            "sha256"
        ) != result_checksum(result_payload):
            self._quarantine(key, path, "checksum mismatch")
            return None
        try:
            result = SimResult.from_dict(result_payload)
        except (KeyError, TypeError, ValueError):
            self._quarantine(key, path, "undecodable result")
            return None
        self._touch(path)
        return result

    @staticmethod
    def _touch(path: Path) -> None:
        """Record a use: refresh atime+mtime so gc's LRU order is real."""
        try:
            os.utime(path)
        except OSError:
            pass

    def put(self, key: str, result: SimResult, job_fields: dict | None = None) -> None:
        """Store ``result`` under ``key`` atomically, with checksum."""
        result_payload = result.to_dict()
        payload = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "result_schema": RESULT_SCHEMA_VERSION,
            "key": key,
            "job": job_fields or {},
            "sha256": result_checksum(result_payload),
            "result": result_payload,
        }
        _atomic_write_text(self.result_path(key), json.dumps(payload))

    def contains(self, key: str) -> bool:
        """Cheap existence + schema check — no result deserialisation.

        Answers "would :meth:`get` even try this entry?" without paying
        for :meth:`SimResult.from_dict` or checksum verification (those
        stay the job of :meth:`get` and :meth:`verify`).
        """
        path = self.result_path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return False
        return (
            isinstance(payload, dict)
            and payload.get("cache_schema") == CACHE_SCHEMA_VERSION
            and isinstance(payload.get("result"), dict)
        )

    # -- maintenance -----------------------------------------------------

    def _result_files(self) -> list[Path]:
        results = self.root / "results"
        return sorted(results.rglob("*.json")) if results.is_dir() else []

    def _trace_files(self) -> list[Path]:
        traces = self.root / "traces"
        return sorted(traces.glob("*.trace")) if traces.is_dir() else []

    def verify(self) -> dict:
        """Audit every entry; quarantine bad ones; return counters.

        Returns ``{"results", "ok", "stale", "corrupt", "traces",
        "trace_corrupt"}`` — ``corrupt`` entries (and unreadable
        traces) end up under ``corrupt/`` with ``on_corrupt`` fired.
        """
        report = {"results": 0, "ok": 0, "stale": 0, "corrupt": 0,
                  "traces": 0, "trace_corrupt": 0}
        for path in self._result_files():
            report["results"] += 1
            key = path.stem
            if self.get(key) is not None:
                report["ok"] += 1
            elif path.is_file():      # still there: schema-stale miss
                report["stale"] += 1
            else:                     # gone: get() quarantined it
                report["corrupt"] += 1
        for path in self._trace_files():
            report["traces"] += 1
            try:
                load_trace(path)
            except (OSError, ValueError):
                report["trace_corrupt"] += 1
                self._quarantine(path.stem, path, "unreadable trace")
        return report

    def _quarantined_files(self) -> list[Path]:
        quarantine = self.quarantine_dir()
        return sorted(quarantine.glob("*")) if quarantine.is_dir() else []

    def stats(self) -> dict:
        """Entry counts and byte totals per store section.

        Returns ``{"results", "traces", "quarantined", "bytes"}`` —
        cheap enough to answer a serve ``status`` request on every poll.
        """
        report = {"results": 0, "traces": 0, "quarantined": 0, "bytes": 0}
        for section, files in (
            ("results", self._result_files()),
            ("traces", self._trace_files()),
            ("quarantined", self._quarantined_files()),
        ):
            for path in files:
                try:
                    size = path.stat().st_size
                except OSError:
                    continue
                report[section] += 1
                report["bytes"] += size
        return report

    def gc(
        self,
        max_age_days: float | None = None,
        max_size_mb: float | None = None,
    ) -> dict:
        """Prune the store by age and/or total size, least recently used
        first.

        Sweeps results, traces and quarantined files.  Entries unused
        for more than ``max_age_days`` are removed; then, if the
        remainder still exceeds ``max_size_mb``, the least recently
        used entries go until it fits.  "Used" means atime/mtime, which
        :meth:`get` refreshes on every hit — so a size-bounded shared
        store evicts cold cells, not merely old ones.

        Returns ``{"removed", "kept", "bytes_freed", "bytes_kept"}``
        plus per-section removal counts ``{"results_removed",
        "traces_removed", "quarantined_removed"}``.
        """
        entries = []          # (last_used, size, path, section)
        for section, files in (
            ("results", self._result_files()),
            ("traces", self._trace_files()),
            ("quarantined", self._quarantined_files()),
        ):
            for path in files:
                try:
                    stat = path.stat()
                except OSError:
                    continue
                last_used = max(stat.st_mtime, stat.st_atime)
                entries.append((last_used, stat.st_size, path, section))
        entries.sort(key=lambda e: e[:2])     # least recently used first
        now = time.time()
        doomed: list[tuple[float, int, Path, str]] = []
        if max_age_days is not None:
            cutoff = now - max_age_days * 86400.0
            doomed = [e for e in entries if e[0] < cutoff]
            entries = [e for e in entries if e[0] >= cutoff]
        if max_size_mb is not None:
            budget = max_size_mb * 1024 * 1024
            total = sum(size for _, size, _, _ in entries)
            while entries and total > budget:
                entry = entries.pop(0)          # coldest survivor
                doomed.append(entry)
                total -= entry[1]
        freed = 0
        removed_by_section = {"results": 0, "traces": 0, "quarantined": 0}
        for _, size, path, section in doomed:
            try:
                path.unlink()
                freed += size
                removed_by_section[section] += 1
            except OSError:
                pass
        return {
            "removed": sum(removed_by_section.values()),
            "kept": len(entries),
            "bytes_freed": freed,
            "bytes_kept": sum(size for _, size, _, _ in entries),
            "results_removed": removed_by_section["results"],
            "traces_removed": removed_by_section["traces"],
            "quarantined_removed": removed_by_section["quarantined"],
        }

    # -- traces ----------------------------------------------------------

    def trace_path(self, key: str) -> Path:
        return self.root / "traces" / f"{key}.trace"

    def get_trace(self, key: str) -> Trace | None:
        """The cached trace for ``key``, or None on miss/corruption.

        Reads either serialization format (v1 text or v2 columnar) —
        the loader sniffs the file.
        """
        path = self.trace_path(key)
        if not path.is_file():
            return None
        try:
            return load_trace(path)
        except (OSError, ValueError):
            return None

    def get_trace_columnar(self, key: str) -> ColumnarTrace | None:
        """The cached trace for ``key`` as a :class:`ColumnarTrace`.

        v2 entries decode straight into columns; v1 entries are
        converted on read.  None on miss/corruption.
        """
        path = self.trace_path(key)
        if not path.is_file():
            return None
        try:
            return load_trace_columnar(path)
        except (OSError, ValueError):
            return None

    def put_trace(self, key: str, trace: Trace | ColumnarTrace) -> None:
        """Store ``trace`` under ``key`` atomically.

        A :class:`ColumnarTrace` is stored in the v2 binary columnar
        format, a :class:`Trace` in v1 text; :meth:`get_trace` and
        :meth:`get_trace_columnar` both read either, so object and
        columnar jobs share one cache entry per trace key.
        """
        path = self.trace_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        os.close(fd)
        try:
            fmt = "v2" if isinstance(trace, ColumnarTrace) else "v1"
            save_trace(trace, tmp, format=fmt)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def put_trace_image(self, key: str, image: bytes) -> None:
        """Store an already-serialized v2 image under ``key`` atomically.

        ``image`` is exactly what ``v2_bytes`` produced — a valid v2
        file — so a caller that just serialized a trace for the shared
        fabric can land the identical bytes in the disk cache without
        paying a second serialization.
        """
        path = self.trace_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(image)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
