"""repro.runtime — parallel experiment orchestration.

Turns simulation into schedulable :class:`Job` objects keyed by a
deterministic content hash, executes them through a serial or
process-pool executor with per-job timeouts / bounded retries / crash
isolation, caches results and traces on disk so unchanged sweep cells
return instantly, and records every step in a JSONL run journal.

Typical use::

    from repro.runtime import Runtime

    runtime = Runtime(jobs=4)
    grid = runtime.run_grid(["baseline", "dlvp"], ["gzip", "nat"], 8_000)
    print(grid.speedups("dlvp"))
    print(runtime.journal.format_summary())
"""

from repro.runtime.api import GridResult, RunInterrupted, Runtime
from repro.runtime.cache import (
    CACHE_DIR_ENV,
    CACHE_SCHEMA_VERSION,
    ResultCache,
    default_cache_dir,
    result_checksum,
)
from repro.runtime.executor import (
    INTERRUPTED_ERROR,
    JobLease,
    JobOutcome,
    JobTimeoutError,
    ParallelExecutor,
    SerialExecutor,
)
from repro.runtime.jobs import (
    CODE_SALT_ENV,
    Job,
    TraceGroup,
    code_version_salt,
    execute_job,
    execute_job_info,
    job_from_identity,
    make_job,
    trace_cache_key,
)
from repro.runtime.journal import RunJournal, completed_results, read_journal
from repro.runtime.registry import (
    BASELINE_ID,
    SchemeSpec,
    config_key_of,
    get_scheme,
    register_scheme,
    scheme_ids,
)

__all__ = [
    "Runtime",
    "GridResult",
    "RunInterrupted",
    "INTERRUPTED_ERROR",
    "Job",
    "JobLease",
    "JobOutcome",
    "JobTimeoutError",
    "make_job",
    "job_from_identity",
    "execute_job",
    "execute_job_info",
    "TraceGroup",
    "code_version_salt",
    "trace_cache_key",
    "ResultCache",
    "default_cache_dir",
    "RunJournal",
    "read_journal",
    "completed_results",
    "result_checksum",
    "CACHE_SCHEMA_VERSION",
    "SerialExecutor",
    "ParallelExecutor",
    "SchemeSpec",
    "register_scheme",
    "get_scheme",
    "scheme_ids",
    "config_key_of",
    "BASELINE_ID",
    "CACHE_DIR_ENV",
    "CODE_SALT_ENV",
]
