"""The runtime facade: grid orchestration over cache + executor + journal.

:class:`Runtime` is what the experiments layer and the CLI talk to::

    runtime = Runtime(jobs=4)                 # cached, 4-way parallel
    grid = runtime.run_grid(
        schemes=["baseline", "dlvp", "vtage"],
        workloads=["gzip", "perlbmk"],
        n_instructions=8_000,
    )
    grid.speedups("dlvp")                     # {workload: speedup}

Result caching is transparent: each job's content hash is looked up
before anything is scheduled, so unchanged cells of a sweep return
instantly and only the misses ever reach an executor.  Every step is
recorded in the run journal.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.pipeline import RecoveryMode, SimResult
from repro.runtime.cache import ResultCache, default_cache_dir
from repro.runtime.executor import (
    JobOutcome,
    ParallelExecutor,
    SerialExecutor,
)
from repro.runtime.jobs import Job, make_job
from repro.runtime.journal import RunJournal
from repro.workloads import workload_names


class Runtime:
    """Schedule simulation jobs with caching, fan-out and journaling.

    Args:
        jobs: Worker processes; 1 selects the in-process
            :class:`SerialExecutor` (also the Windows-safe path).
        cache_dir: Cache root; None means the default
            (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``).
        use_cache: Disable to force every job to execute (``--no-cache``).
        journal: An existing journal to append to, or None to create one.
        journal_path: Where the created journal writes its JSONL file;
            None keeps events in memory only.
        timeout: Per-job wall-clock budget in seconds (None: unbounded).
        retries: Extra attempts for a job whose worker raised or died.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        use_cache: bool = True,
        journal: RunJournal | None = None,
        journal_path: str | Path | None = None,
        timeout: float | None = None,
        retries: int = 1,
    ) -> None:
        self.jobs = max(1, jobs)
        self.cache = (
            ResultCache(cache_dir if cache_dir is not None else default_cache_dir())
            if use_cache
            else None
        )
        self.journal = journal if journal is not None else RunJournal(journal_path)
        self.timeout = timeout
        if self.jobs > 1:
            self.executor: SerialExecutor | ParallelExecutor = ParallelExecutor(
                self.jobs, retries=retries
            )
        else:
            self.executor = SerialExecutor(retries=retries)

    # -- scheduling ------------------------------------------------------

    def run_jobs(self, jobs: Sequence[Job]) -> dict[str, JobOutcome]:
        """Run jobs (deduplicated by key), returning outcomes by key."""
        unique: dict[str, Job] = {}
        for job in jobs:
            unique.setdefault(job.key, job)
        self.journal.event(
            "run_started", jobs=len(unique), workers=self.jobs,
            cached=self.cache is not None,
        )
        outcomes: dict[str, JobOutcome] = {}
        to_run: list[Job] = []
        for key, job in unique.items():
            self.journal.event("job_submitted", **job.identity())
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                outcomes[key] = JobOutcome(job, "ok", result=cached, cache_hit=True)
                self.journal.event("cache_hit", key=key, workload=job.workload,
                                   scheme=job.scheme_id)
            else:
                if self.cache is not None:
                    self.journal.event("cache_miss", key=key, workload=job.workload,
                                       scheme=job.scheme_id)
                to_run.append(job)
        if to_run:
            executed = self.executor.run(
                to_run,
                cache_dir=str(self.cache.root) if self.cache is not None else None,
                events=self._executor_event,
            )
            for outcome in executed:
                self.journal.event(
                    "job_finished",
                    key=outcome.job.key,
                    workload=outcome.job.workload,
                    scheme=outcome.job.scheme_id,
                    status=outcome.status,
                    duration=round(outcome.duration, 6),
                    attempts=outcome.attempts,
                    error=outcome.error,
                )
                outcomes[outcome.job.key] = outcome
                if outcome.ok and self.cache is not None:
                    assert outcome.result is not None
                    self.cache.put(outcome.job.key, outcome.result,
                                   outcome.job.identity())
        self.journal.event("run_finished", **self.journal.summary())
        return outcomes

    def _executor_event(self, kind: str, job: Job, fields: dict) -> None:
        self.journal.event(kind, key=job.key, workload=job.workload,
                           scheme=job.scheme_id, **fields)

    def run_grid(
        self,
        schemes: Sequence[str],
        workloads: Sequence[str] | None = None,
        n_instructions: int = 8_000,
        recovery: RecoveryMode = RecoveryMode.FLUSH,
    ) -> "GridResult":
        """Run a (scheme x workload) grid of registered scheme ids."""
        workloads = list(workloads) if workloads is not None else workload_names()
        jobs = {
            (scheme, workload): make_job(
                workload, n_instructions, scheme, recovery=recovery,
                timeout=self.timeout,
            )
            for scheme in schemes
            for workload in workloads
        }
        outcomes = self.run_jobs(list(jobs.values()))
        return GridResult(
            schemes=list(schemes),
            workloads=workloads,
            n_instructions=n_instructions,
            recovery=recovery,
            cells={cell: outcomes[job.key] for cell, job in jobs.items()},
        )


@dataclass
class GridResult:
    """Outcomes of one grid run, addressable by (scheme, workload)."""

    schemes: list[str]
    workloads: list[str]
    n_instructions: int
    recovery: RecoveryMode
    cells: dict[tuple[str, str], JobOutcome]

    def outcome(self, scheme: str, workload: str) -> JobOutcome:
        return self.cells[(scheme, workload)]

    def result(self, scheme: str, workload: str) -> SimResult:
        """The cell's result; raises for failed/timed-out cells."""
        outcome = self.outcome(scheme, workload)
        if not outcome.ok:
            raise RuntimeError(
                f"job ({scheme}, {workload}) {outcome.status}: {outcome.error}"
            )
        assert outcome.result is not None
        return outcome.result

    def scheme_results(self, scheme: str) -> dict[str, SimResult]:
        """All of one scheme's results keyed by workload (all must be ok)."""
        return {w: self.result(scheme, w) for w in self.workloads}

    def failures(self) -> list[JobOutcome]:
        return [o for o in self.cells.values() if not o.ok]

    def speedups(self, scheme: str, baseline: str = "baseline") -> dict[str, float]:
        """Per-workload speedup of ``scheme`` over ``baseline`` cells."""
        return {
            w: self.result(scheme, w).speedup_over(self.result(baseline, w))
            for w in self.workloads
        }
