"""The runtime facade: grid orchestration over cache + executor + journal.

:class:`Runtime` is what the experiments layer and the CLI talk to::

    runtime = Runtime(jobs=4)                 # cached, 4-way parallel
    grid = runtime.run_grid(
        schemes=["baseline", "dlvp", "vtage"],
        workloads=["gzip", "perlbmk"],
        n_instructions=8_000,
    )
    grid.speedups("dlvp")                     # {workload: speedup}

Result caching is transparent: each job's content hash is looked up
before anything is scheduled, so unchanged cells of a sweep return
instantly and only the misses ever reach an executor.  Every step is
recorded in the run journal.

Fault tolerance:

* **Graceful interruption** — SIGINT/SIGTERM during :meth:`run_jobs`
  stops scheduling, marks unfinished cells ``"interrupted"``, emits a
  ``run_interrupted`` journal event, and still returns (and caches)
  every completed cell; :meth:`GridResult.partial_report` renders the
  damage instead of a stack trace.
* **Journal-driven resume** — ``resume_from=<journal>`` replays a
  previous run's ``job_finished`` events: any job whose key already
  finished ``ok`` is skipped (a ``job_resumed`` event) and its result
  reconstructed from the journal payload, which works even with the
  cache disabled.
* **Cache integrity** — corrupt cache entries are quarantined by
  :class:`~repro.runtime.cache.ResultCache` and surface here as
  ``cache_corrupt`` journal events, then the cell simply re-executes.
* **Fault injection** — a :class:`~repro.faults.FaultPlan` (or
  ``$REPRO_FAULT_SPEC``) makes chosen jobs crash/hang/raise/stall in
  the worker, and ``corrupt_cache`` faults garble the entry right
  after it is written, so every one of the paths above is testable.
"""

from __future__ import annotations

import signal
import threading
from collections.abc import Sequence
from dataclasses import dataclass, replace
from pathlib import Path

from repro.faults import FaultPlan, active_plan, corrupt_file
from repro.pipeline import RecoveryMode, SimResult
from repro.runtime.cache import ResultCache, default_cache_dir
from repro.runtime.executor import (
    INTERRUPTED_ERROR,
    JobOutcome,
    ParallelExecutor,
    SerialExecutor,
)
from repro.runtime.jobs import (
    Job,
    make_job,
    result_from_payload,
    trace_cache_key,
)
from repro.runtime.journal import RunJournal, completed_results
from repro.workloads import build_workload_columnar, workload_names


class RunInterrupted(RuntimeError):
    """A grid run was cut short by SIGINT/SIGTERM.

    Carries the partial :class:`GridResult` so callers can report the
    completed cells (which are already cached) and suggest ``--resume``.
    """

    def __init__(self, grid: "GridResult") -> None:
        super().__init__(grid.partial_report())
        self.grid = grid


class Runtime:
    """Schedule simulation jobs with caching, fan-out and journaling.

    Args:
        jobs: Worker processes; 1 selects the in-process
            :class:`SerialExecutor` (also the Windows-safe path).
        cache_dir: Cache root; None means the default
            (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``).
        use_cache: Disable to force every job to execute (``--no-cache``).
        journal: An existing journal to append to, or None to create one.
        journal_path: Where the created journal writes its JSONL file;
            None keeps events in memory only.
        timeout: Per-job wall-clock budget in seconds (None: unbounded).
        retries: Extra attempts for a job whose worker raised or died.
        backoff: Base seconds for the deterministic exponential retry
            delay (attempt n waits ``backoff * 2**(n-2)``); 0 disables.
        timeout_factor: When set, a timed-out job is retried (within
            its bounded attempts) with its timeout multiplied by this.
        faults: A :class:`~repro.faults.FaultPlan` or spec string for
            deterministic fault injection; None falls back to
            ``$REPRO_FAULT_SPEC`` (normally unset: no faults).
        resume_from: A journal path (or pre-read event list) whose
            completed jobs should be skipped and replayed from their
            journaled result payloads.
        trace_format: In-memory trace representation for executed jobs:
            ``"object"`` (default), ``"columnar"`` (struct-of-arrays
            fast loop), or ``"shared"`` — the zero-copy trace fabric:
            the parent generates each distinct trace once, publishes it
            to shared memory (:mod:`repro.trace.share`), and dispatches
            grid cells *grouped by trace* so each worker attaches one
            trace and simulates every scheme against it.  Results are
            bit-identical in all three modes, so the choice does not
            enter the cache key.
        trace_dir: When set, every executed job runs under the full
            observability stack (:mod:`repro.observe`) and writes its
            Chrome trace (and, on failure, flight-recorder dump) into
            this directory.  Traced jobs bypass cache *reads* — the
            artifacts are the point — but their results are still
            cached for later untraced sweeps.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        use_cache: bool = True,
        journal: RunJournal | None = None,
        journal_path: str | Path | None = None,
        timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.0,
        timeout_factor: float | None = None,
        faults: FaultPlan | str | None = None,
        resume_from: str | Path | list[dict] | None = None,
        trace_dir: str | Path | None = None,
        trace_format: str = "object",
    ) -> None:
        self.jobs = max(1, jobs)
        self.trace_dir = str(trace_dir) if trace_dir is not None else None
        self.trace_format = trace_format
        self.cache = (
            ResultCache(
                cache_dir if cache_dir is not None else default_cache_dir(),
                on_corrupt=self._on_cache_corrupt,
            )
            if use_cache
            else None
        )
        self.journal = journal if journal is not None else RunJournal(journal_path)
        self.timeout = timeout
        if isinstance(faults, str):
            faults = FaultPlan.parse(faults)
        self.faults = faults if faults is not None else active_plan()
        self._resume = (
            completed_results(resume_from) if resume_from is not None else {}
        )
        if self.jobs > 1:
            self.executor: SerialExecutor | ParallelExecutor = ParallelExecutor(
                self.jobs, retries=retries, backoff=backoff,
                timeout_factor=timeout_factor,
            )
        else:
            self.executor = SerialExecutor(
                retries=retries, backoff=backoff, timeout_factor=timeout_factor
            )

    # -- scheduling ------------------------------------------------------

    def run_jobs(self, jobs: Sequence[Job]) -> dict[str, JobOutcome]:
        """Run jobs (deduplicated by key), returning outcomes by key.

        Completed cells are returned (and cached) even when the run is
        interrupted mid-flight — the remainder come back with status
        ``"interrupted"`` after a ``run_interrupted`` journal event.
        """
        unique: dict[str, Job] = {}
        for job in jobs:
            unique.setdefault(job.key, job)
        self.journal.event(
            "run_started", jobs=len(unique), workers=self.jobs,
            cached=self.cache is not None, resumable=len(self._resume),
        )
        outcomes: dict[str, JobOutcome] = {}
        to_run: list[Job] = []
        for key, job in unique.items():
            self.journal.event("job_submitted", **job.identity())
            resumed = self._resumed_outcome(job)
            if resumed is not None:
                outcomes[key] = resumed
                self.journal.event("job_resumed", key=key,
                                   workload=job.workload,
                                   scheme=job.scheme_id)
                continue
            cached = (
                self.cache.get(key)
                if self.cache is not None and not job.trace_dir
                else None
            )
            if cached is not None:
                outcomes[key] = JobOutcome(job, "ok", result=cached, cache_hit=True)
                self.journal.event("cache_hit", key=key, workload=job.workload,
                                   scheme=job.scheme_id)
            else:
                if self.cache is not None:
                    self.journal.event("cache_miss", key=key, workload=job.workload,
                                       scheme=job.scheme_id)
                to_run.append(job)
        if to_run:
            interrupted = self._execute(to_run, outcomes)
            if interrupted:
                self.journal.event(
                    "run_interrupted",
                    completed=sum(1 for o in outcomes.values()
                                  if o.status != "interrupted"),
                    interrupted=sum(1 for o in outcomes.values()
                                    if o.status == "interrupted"),
                )
        self.journal.event("run_finished", **self.journal.summary())
        return outcomes

    def _execute(
        self, to_run: list[Job], outcomes: dict[str, JobOutcome]
    ) -> bool:
        """Run the cache misses through the executor; True if interrupted.

        Each job is journaled (``job_finished``) and cached *as it
        settles*, not when the whole batch returns — so a later hang,
        worker crash or SIGKILL cannot lose cells that already finished,
        and ``--resume`` can pick them up from the journal.  SIGTERM is
        converted to ``KeyboardInterrupt`` for the duration (main thread
        only), so ``kill <pid>`` gets the same graceful partial-result
        path as Ctrl-C.
        """
        fault_spec = self.faults.spec() if self.faults is not None else None
        interrupted = False

        def _finish(outcome: JobOutcome) -> None:
            nonlocal interrupted
            fields = dict(
                key=outcome.job.key,
                workload=outcome.job.workload,
                scheme=outcome.job.scheme_id,
                status=outcome.status,
                duration=round(outcome.duration, 6),
                attempts=outcome.attempts,
                error=outcome.error,
            )
            if outcome.trace_source is not None:
                fields["trace_source"] = outcome.trace_source
            if outcome.ok:
                assert outcome.result is not None
                # the journaled payload is what --resume replays
                fields["result"] = outcome.result.to_dict()
            self.journal.event("job_finished", **fields)
            outcomes[outcome.job.key] = outcome
            interrupted = interrupted or outcome.status == "interrupted"
            if outcome.ok and self.cache is not None:
                self.cache.put(outcome.job.key, outcome.result,
                               outcome.job.identity())
                self._maybe_corrupt_cache(outcome)

        cache_dir = str(self.cache.root) if self.cache is not None else None
        grouped, store = self._fabric_groups(to_run)
        try:
            with _sigterm_as_interrupt():
                if grouped is not None:
                    executed = self.executor.run_grouped(
                        grouped, cache_dir=cache_dir,
                        events=self._executor_event, fault_spec=fault_spec,
                        on_outcome=_finish,
                    )
                else:
                    executed = self.executor.run(
                        to_run, cache_dir=cache_dir,
                        events=self._executor_event, fault_spec=fault_spec,
                        on_outcome=_finish,
                    )
        finally:
            if store is not None:
                store.close()
        for outcome in executed:      # belt and braces: never drop a cell
            if outcome.job.key not in outcomes:
                _finish(outcome)
        return interrupted

    # -- trace fabric ----------------------------------------------------

    def _fabric_groups(self, to_run: list[Job]):
        """Group jobs by trace key and publish each trace to the fabric.

        Returns ``(groups, store)`` — or ``(None, None)`` outside
        ``trace_format="shared"``, where per-cell dispatch is used.  In
        fabric mode the parent acquires each distinct trace once
        (trace cache, else generate), publishes it to a
        :class:`~repro.trace.share.TraceStore`, and tags every job in
        the group with the attach ref; the executor then ships whole
        groups so a worker simulates N schemes per trace acquisition
        instead of one.  A failed publish degrades gracefully: the
        group still runs, each worker building locally.
        """
        if self.trace_format != "shared":
            return None, None
        from repro.trace.share import TraceStore

        root = Path(self.cache.root) / "fabric" if self.cache is not None else None
        store = TraceStore(root=root)
        if store.orphans_removed:
            self.journal.event("fabric_orphans_removed",
                               segments=store.orphans_removed)
        by_trace: dict[str, list[Job]] = {}
        singles: list[Job] = []
        for job in to_run:
            if job.trace_dir:
                # Observability cells keep their own full-stack run;
                # still dispatched as singleton groups for one code path.
                singles.append(job)
            else:
                tkey = trace_cache_key(job.workload, job.n_instructions,
                                       job.salt)
                by_trace.setdefault(tkey, []).append(job)
        groups: list[list[Job]] = []
        for tkey, members in by_trace.items():
            ref = self._publish_trace(store, tkey, members[0], len(members))
            if ref is None:
                groups.append(members)
            else:
                groups.append([replace(job, trace_ref=ref)
                               for job in members])
        groups.extend([job] for job in singles)
        return groups, store

    def _publish_trace(self, store, tkey: str, job: Job,
                       cells: int) -> str | None:
        """Acquire one trace in the parent and publish it; None on failure.

        A freshly built trace is serialized exactly once: the same v2
        image goes to the shared segment and (byte-identically) to the
        disk trace cache.
        """
        from repro.trace.serialization import v2_bytes

        try:
            trace = None
            built = False
            if self.cache is not None:
                trace = self.cache.get_trace_columnar(tkey)
            if trace is None:
                trace = build_workload_columnar(job.workload,
                                                job.n_instructions)
                built = True
            image = v2_bytes(trace)
            if built and self.cache is not None:
                self.cache.put_trace_image(tkey, image)
            ref = store.publish(tkey, trace, image=image)
        except Exception as exc:
            self.journal.event("trace_publish_failed", trace_key=tkey,
                               workload=job.workload, error=str(exc))
            return None
        if built:
            self.journal.event("trace_built", key=job.key,
                               workload=job.workload, scheme=job.scheme_id,
                               attempt=0)
        self.journal.event("trace_published", trace_key=tkey, ref=ref,
                           workload=job.workload,
                           n_instructions=job.n_instructions,
                           cells=cells)
        return ref

    def _resumed_outcome(self, job: Job) -> JobOutcome | None:
        """Rebuild a completed job's outcome from the resume journal."""
        payload = self._resume.get(job.key)
        if payload is None:
            return None
        try:
            result = result_from_payload(payload)
        except (KeyError, TypeError, ValueError):
            return None          # journaled payload unusable: re-run
        return JobOutcome(job, "ok", result=result, resumed=True)

    def _maybe_corrupt_cache(self, outcome: JobOutcome) -> None:
        """Apply a matching ``corrupt_cache`` fault to the fresh entry."""
        if self.faults is None or self.cache is None:
            return
        job = outcome.job
        rule = self.faults.rule_for(
            job.workload, job.scheme_id, outcome.attempts, job.key
        )
        if rule is None or rule.kind != "corrupt_cache":
            return
        corrupt_file(self.cache.result_path(job.key))
        self.journal.event("fault_injected", key=job.key, fault=rule.kind,
                           rule=rule.clause())

    def _on_cache_corrupt(self, key: str, reason: str, dest: Path) -> None:
        self.journal.event("cache_corrupt", key=key, reason=reason,
                           quarantined=str(dest))

    def _executor_event(self, kind: str, job: Job, fields: dict) -> None:
        self.journal.event(kind, key=job.key, workload=job.workload,
                           scheme=job.scheme_id, **fields)

    def run_grid(
        self,
        schemes: Sequence[str],
        workloads: Sequence[str] | None = None,
        n_instructions: int = 8_000,
        recovery: RecoveryMode = RecoveryMode.FLUSH,
    ) -> "GridResult":
        """Run a (scheme x workload) grid of registered scheme ids."""
        workloads = list(workloads) if workloads is not None else workload_names()
        jobs = {
            (scheme, workload): make_job(
                workload, n_instructions, scheme, recovery=recovery,
                timeout=self.timeout, trace_dir=self.trace_dir,
                trace_format=self.trace_format,
            )
            for scheme in schemes
            for workload in workloads
        }
        outcomes = self.run_jobs(list(jobs.values()))
        return GridResult(
            schemes=list(schemes),
            workloads=workloads,
            n_instructions=n_instructions,
            recovery=recovery,
            cells={cell: outcomes[job.key] for cell, job in jobs.items()},
        )


class _sigterm_as_interrupt:
    """Context manager turning SIGTERM into KeyboardInterrupt.

    Installed only on the main thread (signal handlers cannot be set
    elsewhere); a no-op anywhere else, where SIGTERM keeps its default
    disposition.
    """

    def __enter__(self) -> "_sigterm_as_interrupt":
        self._previous = None
        if (
            hasattr(signal, "SIGTERM")
            and threading.current_thread() is threading.main_thread()
        ):
            def _raise(signum, frame):
                raise KeyboardInterrupt(INTERRUPTED_ERROR)

            try:
                self._previous = signal.signal(signal.SIGTERM, _raise)
            except (ValueError, OSError):
                self._previous = None
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._previous is not None:
            signal.signal(signal.SIGTERM, self._previous)


@dataclass
class GridResult:
    """Outcomes of one grid run, addressable by (scheme, workload)."""

    schemes: list[str]
    workloads: list[str]
    n_instructions: int
    recovery: RecoveryMode
    cells: dict[tuple[str, str], JobOutcome]

    def outcome(self, scheme: str, workload: str) -> JobOutcome:
        return self.cells[(scheme, workload)]

    def result(self, scheme: str, workload: str) -> SimResult:
        """The cell's result; raises for failed/timed-out cells."""
        outcome = self.outcome(scheme, workload)
        if not outcome.ok:
            raise RuntimeError(
                f"job ({scheme}, {workload}) {outcome.status}: {outcome.error}"
            )
        assert outcome.result is not None
        return outcome.result

    def scheme_results(self, scheme: str) -> dict[str, SimResult]:
        """All of one scheme's results keyed by workload (all must be ok)."""
        return {w: self.result(scheme, w) for w in self.workloads}

    def failures(self) -> list[JobOutcome]:
        return [o for o in self.cells.values() if not o.ok]

    def interrupted(self) -> list[JobOutcome]:
        """Cells cut short by SIGINT/SIGTERM (status ``"interrupted"``)."""
        return [o for o in self.cells.values() if o.status == "interrupted"]

    @property
    def complete(self) -> bool:
        """True when no cell was interrupted (failures still count)."""
        return not self.interrupted()

    def partial_report(self) -> str:
        """Human-readable account of an interrupted grid.

        Completed cells are already cached and journaled, so the report
        points at ``--resume`` rather than apologising.
        """
        total = len(self.cells)
        stopped = len(self.interrupted())
        finished = total - stopped
        lines = [
            f"run interrupted: {finished}/{total} cells completed "
            f"(completed cells are cached/journaled), {stopped} not run",
        ]
        for outcome in self.interrupted():
            lines.append(
                f"  - {outcome.job.workload}/{outcome.job.scheme_id}: not run"
            )
        lines.append(
            "relaunch with --resume <journal> (or a warm cache) to continue"
        )
        return "\n".join(lines)

    def speedups(self, scheme: str, baseline: str = "baseline") -> dict[str, float]:
        """Per-workload speedup of ``scheme`` over ``baseline`` cells."""
        return {
            w: self.result(scheme, w).speedup_over(self.result(baseline, w))
            for w in self.workloads
        }
