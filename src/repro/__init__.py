"""repro — a from-scratch reproduction of *Load Value Prediction via
Path-based Address Prediction* (Sheikh, Cain, Damodaran; MICRO 2017).

Quickstart::

    from repro import build_workload, simulate, DlvpScheme

    trace = build_workload("perlbmk", n_instructions=20_000)
    baseline = simulate(trace)
    dlvp = simulate(trace, scheme=DlvpScheme())
    print(f"DLVP speedup: {dlvp.speedup_over(baseline):+.1%}")

Layout:

* :mod:`repro.predictors` — PAP (the paper's contribution), CAP, VTAGE,
  LVP, stride, tournament chooser.
* :mod:`repro.core` — the DLVP engine (PAQ, LSCD, PVT/VPE, probing).
* :mod:`repro.pipeline` — the Table 4 out-of-order core timing model.
* :mod:`repro.workloads` — the 78-workload synthetic suite.
* :mod:`repro.memory`, :mod:`repro.branch`, :mod:`repro.mdp` — substrates.
* :mod:`repro.energy` — Table 2 / Figure 6c/6d area-energy models.
* :mod:`repro.experiments` — one runner per paper table/figure.
"""

from repro.isa import Instruction, OpClass
from repro.trace import Trace, load_store_conflicts, repeatability
from repro.workloads import build_workload, build_suite, workload_names, SUITE
from repro.predictors import (
    PapConfig,
    PapPredictor,
    CapConfig,
    CapPredictor,
    VtageConfig,
    VtagePredictor,
    OpcodeFilterMode,
)
from repro.core import DlvpConfig, DlvpEngine
from repro.pipeline import (
    CoreConfig,
    RecoveryMode,
    SimResult,
    DlvpScheme,
    DvtageScheme,
    VtageScheme,
    TournamentScheme,
    simulate,
)
from repro.energy import pvt_design_table, predictor_cost_table, normalized_core_energy

__version__ = "1.0.0"

__all__ = [
    "Instruction",
    "OpClass",
    "Trace",
    "load_store_conflicts",
    "repeatability",
    "build_workload",
    "build_suite",
    "workload_names",
    "SUITE",
    "PapConfig",
    "PapPredictor",
    "CapConfig",
    "CapPredictor",
    "VtageConfig",
    "VtagePredictor",
    "OpcodeFilterMode",
    "DlvpConfig",
    "DlvpEngine",
    "CoreConfig",
    "RecoveryMode",
    "SimResult",
    "DlvpScheme",
    "DvtageScheme",
    "VtageScheme",
    "TournamentScheme",
    "simulate",
    "pvt_design_table",
    "predictor_cost_table",
    "normalized_core_energy",
    "__version__",
]
