"""TAGE conditional branch predictor (Seznec, MICRO 2011 flavour).

A bimodal base table backed by several partially tagged components
indexed with geometrically increasing global-history lengths.  The
implementation follows the canonical structure: longest-match provides
the prediction, the alternate prediction arbitrates for "newly
allocated" entries, and useful counters steer allocation on
mispredictions.

Index/tag hashes fold the global history through incrementally updated
:class:`~repro.branch.history.FoldedHistory` registers (one index fold
plus two tag folds per tagged table) instead of refolding the full
history on every lookup, and the per-PC key set is memoized across the
lookup/update/allocate calls of a single resolved branch — together the
bulk of the simulator's former ``fold_history`` hot path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.branch.history import GlobalHistory


@dataclass(frozen=True)
class TageConfig:
    """Geometry of the TAGE predictor."""

    base_entries: int = 4096
    tagged_entries: int = 1024
    tag_bits: int = 11
    history_lengths: tuple[int, ...] = (4, 8, 16, 32, 64, 128)
    counter_bits: int = 3
    useful_bits: int = 2
    max_history: int = 128


class _TaggedEntry:
    __slots__ = ("tag", "ctr", "useful")

    def __init__(self, tag: int = 0, ctr: int = 0, useful: int = 0) -> None:
        self.tag = tag
        self.ctr = ctr          # signed, [-4, 3] for 3 bits
        self.useful = useful


class Tage:
    """TAGE predictor with deterministic, seeded allocation randomness."""

    def __init__(self, config: TageConfig | None = None, seed: int = 0x7A6E) -> None:
        self.config = config or TageConfig()
        cfg = self.config
        self._rng = random.Random(seed)
        self.history = GlobalHistory(cfg.max_history)
        self._base = [0] * cfg.base_entries          # 2-bit counters, [0, 3]
        self._tables: list[list[_TaggedEntry]] = [
            [_TaggedEntry() for _ in range(cfg.tagged_entries)]
            for _ in cfg.history_lengths
        ]
        idx_bits = cfg.tagged_entries.bit_length() - 1
        self._idx_bits = idx_bits
        self._idx_folds = [
            self.history.folded_register(L, idx_bits) for L in cfg.history_lengths
        ]
        self._tag_folds = [
            self.history.folded_register(L, cfg.tag_bits) for L in cfg.history_lengths
        ]
        self._tag_folds2 = [
            self.history.folded_register(L, cfg.tag_bits - 1)
            for L in cfg.history_lengths
        ]
        # Per-table fold triples plus hoisted key-hash constants, so
        # _keys() does no per-call list indexing or config access.
        self._key_folds = list(zip(self._idx_folds, self._tag_folds, self._tag_folds2))
        self._entries_count = cfg.tagged_entries
        # tagged_entries is a power of two in every shipped config; the
        # modulo in the key hash then reduces to a mask.
        self._entries_mask = (
            cfg.tagged_entries - 1
            if cfg.tagged_entries & (cfg.tagged_entries - 1) == 0
            else None
        )
        self._tag_mask = (1 << cfg.tag_bits) - 1
        self._ctr_max = (1 << (cfg.counter_bits - 1)) - 1
        self._ctr_min = -(1 << (cfg.counter_bits - 1))
        self._useful_max = (1 << cfg.useful_bits) - 1
        # Memoized (index, tag) per table for the last (pc, history) pair.
        self._key_pc = -1
        self._key_version = -1
        self._key_cache: list[tuple[int, int]] = []
        # Optional precomputed key batch (columnar runs; see
        # repro.pipeline.batch.TageKeyBatch) and its chunk cursor.
        self._kb = None
        self._kb_keys: list = []
        self._kb_pos = 0
        self._kb_start = 0
        self._kb_end = 0
        self.predictions = 0
        self.mispredictions = 0

    # -- batched keys -------------------------------------------------

    def bind_key_batch(self, batch) -> None:
        """Attach (or with None, detach) a precomputed key batch.

        While bound, :meth:`update` takes its per-table (index, tag)
        sets from the batch — one entry per conditional branch in trace
        order — and :meth:`update_history` stops maintaining the folded
        registers (they go stale; only the raw history bits advance).
        Callers must resolve every conditional of the batched trace in
        order and must not call :meth:`predict` while bound.
        """
        self._kb = batch
        self._kb_keys = []
        self._kb_pos = 0
        self._kb_start = 0
        self._kb_end = 0

    def _kb_refill(self, pos: int) -> None:
        # Chunks holding only call events yield no keys; keep pulling.
        while pos >= self._kb_end:
            start, keys = self._kb.next_chunk()
            self._kb_keys = keys
            self._kb_start = start
            self._kb_end = start + len(keys)

    # -- indexing -----------------------------------------------------

    def _keys(self, pc: int) -> list[tuple[int, int]]:
        """(index, tag) per tagged table, memoized until pc/history change."""
        version = self.history.version
        if pc == self._key_pc and self._key_version == version:
            return self._key_cache
        tag_mask = self._tag_mask
        pc_idx = (pc >> 2) ^ (pc >> (2 + self._idx_bits))
        pc_tag = pc >> 2
        entries_mask = self._entries_mask
        if entries_mask is not None:
            keys = [
                (
                    (pc_idx ^ f_idx.value ^ table) & entries_mask,
                    (pc_tag ^ f_tag.value ^ (f_tag2.value << 1)) & tag_mask,
                )
                for table, (f_idx, f_tag, f_tag2) in enumerate(self._key_folds)
            ]
        else:
            entries = self._entries_count
            keys = [
                (
                    (pc_idx ^ f_idx.value ^ table) % entries,
                    (pc_tag ^ f_tag.value ^ (f_tag2.value << 1)) & tag_mask,
                )
                for table, (f_idx, f_tag, f_tag2) in enumerate(self._key_folds)
            ]
        self._key_pc = pc
        self._key_version = version
        self._key_cache = keys
        return keys

    def _index(self, pc: int, table: int) -> int:
        return self._keys(pc)[table][0]

    def _tag(self, pc: int, table: int) -> int:
        return self._keys(pc)[table][1]

    def _base_index(self, pc: int) -> int:
        return (pc >> 2) % self.config.base_entries

    # -- prediction ---------------------------------------------------

    def predict(self, pc: int) -> bool:
        """Predict taken/not-taken for the branch at ``pc``."""
        taken, _, _ = self._lookup(pc)
        return taken

    def _lookup(self, pc: int) -> tuple[bool, int | None, bool]:
        """Returns (prediction, provider table or None, alt prediction)."""
        provider = None
        provider_pred = None
        alt_pred = self._base[self._base_index(pc)] >= 2
        keys = self._keys(pc)
        tables = self._tables
        for table in range(len(keys) - 1, -1, -1):
            index, tag = keys[table]
            entry = tables[table][index]
            if entry.tag == tag:
                if provider is None:
                    provider = table
                    provider_pred = entry.ctr >= 0
                else:
                    alt_pred = entry.ctr >= 0
                    break
        if provider is None:
            return alt_pred, None, alt_pred
        assert provider_pred is not None
        return provider_pred, provider, alt_pred

    # -- update -------------------------------------------------------

    def update(self, pc: int, taken: bool) -> bool:
        """Train on the resolved branch; returns True if mispredicted.

        The caller is responsible for pushing the outcome into
        :attr:`history` afterwards via :meth:`update_history` (kept
        separate so speculative-history schemes can manage it).
        """
        if self._kb is not None:
            pos = self._kb_pos
            self._kb_pos = pos + 1
            if pos >= self._kb_end:
                self._kb_refill(pos)
            # Preload the key memo; _lookup/_allocate then hit the cache.
            self._key_pc = pc
            self._key_version = self.history.version
            self._key_cache = self._kb_keys[pos - self._kb_start]
        prediction, provider, alt_pred = self._lookup(pc)
        self.predictions += 1
        mispredicted = prediction != taken

        base_idx = self._base_index(pc)
        if provider is None or alt_pred == prediction:
            counter = self._base[base_idx]
            self._base[base_idx] = min(3, counter + 1) if taken else max(0, counter - 1)

        if provider is not None:
            entry = self._tables[provider][self._keys(pc)[provider][0]]
            if taken:
                entry.ctr = min(self._ctr_max, entry.ctr + 1)
            else:
                entry.ctr = max(self._ctr_min, entry.ctr - 1)
            provider_pred = prediction
            if provider_pred != alt_pred:
                if provider_pred == taken:
                    entry.useful = min(self._useful_max, entry.useful + 1)
                else:
                    entry.useful = max(0, entry.useful - 1)

        if mispredicted:
            self.mispredictions += 1
            self._allocate(pc, taken, provider)
        return mispredicted

    def _allocate(self, pc: int, taken: bool, provider: int | None) -> None:
        """Allocate in one table with longer history than the provider."""
        keys = self._keys(pc)
        start = 0 if provider is None else provider + 1
        candidates = [
            table
            for table in range(start, len(self.config.history_lengths))
            if self._tables[table][keys[table][0]].useful == 0
        ]
        if not candidates:
            for table in range(start, len(self.config.history_lengths)):
                entry = self._tables[table][keys[table][0]]
                entry.useful = max(0, entry.useful - 1)
            return
        # Prefer shorter history with probability 1/2 each step, the
        # usual TAGE anti-ping-pong heuristic.
        chosen = candidates[0]
        for candidate in candidates[1:]:
            if self._rng.random() < 0.5:
                break
            chosen = candidate
        entry = self._tables[chosen][keys[chosen][0]]
        entry.tag = keys[chosen][1]
        entry.ctr = 0 if taken else -1
        entry.useful = 0

    def make_update_fused(self, unit_stats=None):
        """Build a closure fusing :meth:`update` + :meth:`update_history`.

        For the columnar hot loop: one call per conditional branch
        replaces the update/_lookup/update_history/push chain, with the
        tables, counters and history captured as closure cells.  Handles
        both batched-key and live-fold modes, and trains identically to
        the layered methods (pinned by the golden suite).  When
        ``unit_stats`` (a BranchUnitStats) is given, the closure also
        maintains its conditional counters, fusing the BranchUnit layer.
        """
        s = self
        hist = self.history
        hist_mask = hist._mask
        tables = self._tables
        base = self._base
        base_entries = self.config.base_entries
        ctr_max = self._ctr_max
        ctr_min = self._ctr_min
        useful_max = self._useful_max
        allocate = self._allocate
        keys_live = self._keys

        def update_fused(pc: int, taken: bool) -> bool:
            if unit_stats is not None:
                unit_stats.conditional += 1
            assert taken is not None
            batched = s._kb is not None
            if batched:
                pos = s._kb_pos
                s._kb_pos = pos + 1
                if pos >= s._kb_end:
                    s._kb_refill(pos)
                keys = s._kb_keys[pos - s._kb_start]
            else:
                keys = keys_live(pc)
            # _lookup, inlined (alt_pred falls back to bimodal lazily).
            provider = None
            provider_entry = None
            prediction = False
            alt_pred = None
            for table in range(len(keys) - 1, -1, -1):
                index, tag = keys[table]
                entry = tables[table][index]
                if entry.tag == tag:
                    if provider is None:
                        provider = table
                        provider_entry = entry
                        prediction = entry.ctr >= 0
                    else:
                        alt_pred = entry.ctr >= 0
                        break
            base_idx = (pc >> 2) % base_entries
            if alt_pred is None:
                alt_pred = base[base_idx] >= 2
            if provider is None:
                prediction = alt_pred
            s.predictions += 1
            mispredicted = prediction != taken

            if provider is None or alt_pred == prediction:
                counter = base[base_idx]
                base[base_idx] = (
                    min(3, counter + 1) if taken else max(0, counter - 1)
                )

            if provider is not None:
                entry = provider_entry
                if taken:
                    entry.ctr = min(ctr_max, entry.ctr + 1)
                else:
                    entry.ctr = max(ctr_min, entry.ctr - 1)
                if prediction != alt_pred:
                    if prediction == taken:
                        entry.useful = min(useful_max, entry.useful + 1)
                    else:
                        entry.useful = max(0, entry.useful - 1)

            if mispredicted:
                s.mispredictions += 1
                if unit_stats is not None:
                    unit_stats.conditional_mispredicted += 1
                # _allocate reads keys through the memo; preload it
                # (only needed here — the common path skips the stores).
                s._key_pc = pc
                s._key_version = hist.version
                s._key_cache = keys
                allocate(pc, taken, provider)

            # update_history, inlined (push_light when batched).
            if batched:
                hist._bits = ((hist._bits << 1) | (1 if taken else 0)) & hist_mask
                hist.version += 1
            else:
                hist.push(1 if taken else 0)
            return mispredicted

        return update_fused

    def update_history(self, taken: bool) -> None:
        if self._kb is not None:
            self.history.push_light(1 if taken else 0)
        else:
            self.history.push(1 if taken else 0)

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions

    def storage_bits(self) -> int:
        """Approximate storage budget, for Table 4 style accounting."""
        cfg = self.config
        base = cfg.base_entries * 2
        tagged = (
            len(cfg.history_lengths)
            * cfg.tagged_entries
            * (cfg.tag_bits + cfg.counter_bits + cfg.useful_bits)
        )
        return base + tagged
