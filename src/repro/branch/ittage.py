"""ITTAGE indirect-target predictor.

Same tagged geometric-history structure as TAGE but entries carry a full
target address plus a 2-bit hysteresis counter; the longest matching
component supplies the predicted target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.history import GlobalHistory


@dataclass(frozen=True)
class IttageConfig:
    base_entries: int = 512
    tagged_entries: int = 512
    tag_bits: int = 11
    history_lengths: tuple[int, ...] = (4, 16, 64)
    max_history: int = 64


class _Entry:
    __slots__ = ("tag", "target", "confidence")

    def __init__(self, tag: int = -1, target: int = 0, confidence: int = 0) -> None:
        self.tag = tag
        self.target = target
        self.confidence = confidence


class Ittage:
    """Indirect-branch target predictor.

    Like :class:`~repro.branch.tage.Tage`, history folds are maintained
    incrementally per pushed bit rather than recomputed per lookup.
    """

    def __init__(self, config: IttageConfig | None = None) -> None:
        self.config = config or IttageConfig()
        cfg = self.config
        self.history = GlobalHistory(cfg.max_history)
        self._base: dict[int, int] = {}
        self._tables: list[list[_Entry]] = [
            [_Entry() for _ in range(cfg.tagged_entries)] for _ in cfg.history_lengths
        ]
        idx_bits = cfg.tagged_entries.bit_length() - 1
        self._idx_folds = [
            self.history.folded_register(L, idx_bits) for L in cfg.history_lengths
        ]
        self._tag_folds = [
            self.history.folded_register(L, cfg.tag_bits) for L in cfg.history_lengths
        ]
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int, table: int) -> int:
        cfg = self.config
        folded = self._idx_folds[table].value
        return ((pc >> 2) ^ folded ^ (table * 0x1F)) % cfg.tagged_entries

    def _tag(self, pc: int, table: int) -> int:
        cfg = self.config
        folded = self._tag_folds[table].value
        return ((pc >> 2) ^ (folded << 1)) & ((1 << cfg.tag_bits) - 1)

    def predict(self, pc: int) -> int | None:
        """Predicted target for the indirect branch at ``pc`` (None = no idea)."""
        for table in reversed(range(len(self.config.history_lengths))):
            entry = self._tables[table][self._index(pc, table)]
            if entry.tag == self._tag(pc, table):
                return entry.target
        return self._base.get((pc >> 2) % self.config.base_entries)

    def update(self, pc: int, target: int) -> bool:
        """Train on the resolved target; returns True if mispredicted."""
        predicted = self.predict(pc)
        self.predictions += 1
        mispredicted = predicted != target

        provider = None
        for table in reversed(range(len(self.config.history_lengths))):
            entry = self._tables[table][self._index(pc, table)]
            if entry.tag == self._tag(pc, table):
                provider = table
                if entry.target == target:
                    entry.confidence = min(3, entry.confidence + 1)
                else:
                    if entry.confidence == 0:
                        entry.target = target
                    else:
                        entry.confidence -= 1
                break
        self._base[(pc >> 2) % self.config.base_entries] = target

        if mispredicted:
            self.mispredictions += 1
            start = 0 if provider is None else provider + 1
            for table in range(start, len(self.config.history_lengths)):
                entry = self._tables[table][self._index(pc, table)]
                if entry.confidence == 0:
                    entry.tag = self._tag(pc, table)
                    entry.target = target
                    entry.confidence = 1
                    break
        return mispredicted

    def update_history(self, target: int) -> None:
        # Indirect targets contribute a couple of target bits to history.
        self.history.push((target >> 2) & 1)
        self.history.push((target >> 3) & 1)
