"""Front-end branch unit combining TAGE, ITTAGE and the RAS.

The timing model hands every control instruction to
:meth:`BranchUnit.resolve`, which predicts it, trains the predictors,
and reports whether the front-end would have fetched down the wrong
path (a flush-and-refill event).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import Instruction, OpClass, INSTRUCTION_BYTES
from repro.branch.tage import Tage, TageConfig
from repro.branch.ittage import Ittage, IttageConfig
from repro.branch.ras import ReturnAddressStack

_BRANCH = int(OpClass.BRANCH)
_JUMP = int(OpClass.JUMP)
_CALL = int(OpClass.CALL)
_RETURN = int(OpClass.RETURN)
_INDIRECT = int(OpClass.INDIRECT)


@dataclass
class BranchUnitStats:
    conditional: int = 0
    conditional_mispredicted: int = 0
    indirect: int = 0
    indirect_mispredicted: int = 0
    returns: int = 0
    returns_mispredicted: int = 0
    calls: int = 0
    jumps: int = 0

    @property
    def branches(self) -> int:
        return self.conditional + self.indirect + self.returns + self.calls + self.jumps

    @property
    def mispredictions(self) -> int:
        return (
            self.conditional_mispredicted
            + self.indirect_mispredicted
            + self.returns_mispredicted
        )

    @property
    def mpki_numerator(self) -> int:
        return self.mispredictions


class BranchUnit:
    """Complete baseline branch-prediction front-end."""

    def __init__(
        self,
        tage_config: TageConfig | None = None,
        ittage_config: IttageConfig | None = None,
        ras_depth: int = 16,
    ) -> None:
        self.tage = Tage(tage_config)
        self.ittage = Ittage(ittage_config)
        self.ras = ReturnAddressStack(ras_depth)
        self.stats = BranchUnitStats()
        # The TAGE global branch history (VTAGE's context source).  A
        # plain attribute, not a property: the value-prediction schemes
        # alias this object at bind() and read .value once per load, so
        # the reference must be stable for the lifetime of the unit
        # (Tage never rebinds its history register).
        self.global_history = self.tage.history

    def resolve(self, inst: Instruction) -> bool:
        """Predict + train on one control instruction.

        Returns True if the branch was mispredicted (direction or
        target), i.e. the pipeline must flush and refetch.
        """
        if inst.op is OpClass.BRANCH:
            self.stats.conditional += 1
            assert inst.taken is not None
            mispredicted = self.tage.update(inst.pc, inst.taken)
            self.tage.update_history(inst.taken)
            if mispredicted:
                self.stats.conditional_mispredicted += 1
            return mispredicted

        if inst.op is OpClass.JUMP:
            self.stats.jumps += 1
            return False

        if inst.op is OpClass.CALL:
            self.stats.calls += 1
            self.ras.push(inst.pc + INSTRUCTION_BYTES)
            self.tage.update_history(True)
            return False

        if inst.op is OpClass.RETURN:
            self.stats.returns += 1
            predicted = self.ras.pop()
            mispredicted = predicted != inst.target
            if mispredicted:
                self.stats.returns_mispredicted += 1
            return mispredicted

        if inst.op is OpClass.INDIRECT:
            self.stats.indirect += 1
            assert inst.target is not None
            mispredicted = self.ittage.update(inst.pc, inst.target)
            self.ittage.update_history(inst.target)
            if mispredicted:
                self.stats.indirect_mispredicted += 1
            return mispredicted

        raise ValueError(f"not a control instruction: {inst.op!r}")

    def make_resolve_conditional(self):
        """Fused BRANCH arm of :meth:`resolve_fields` for the hot loop.

        Returns a ``(pc, taken) -> mispredicted`` closure combining the
        conditional stats and the whole TAGE update/history chain into
        one call (see :meth:`Tage.make_update_fused`).  Same updates,
        same return value as ``resolve_fields(BRANCH, ...)``.
        """
        return self.tage.make_update_fused(self.stats)

    def resolve_fields(
        self, op: int, pc: int, taken: bool | None, target: int | None
    ) -> bool:
        """Scalar-field twin of :meth:`resolve` for the columnar loop.

        ``op`` is the plain integer opcode class — the columnar
        simulate() path resolves branches straight from the trace
        columns without materializing an :class:`Instruction`.  Same
        predictor updates, same return value, pinned together by the
        golden-equivalence suite.
        """
        if op == _BRANCH:
            self.stats.conditional += 1
            assert taken is not None
            mispredicted = self.tage.update(pc, taken)
            self.tage.update_history(taken)
            if mispredicted:
                self.stats.conditional_mispredicted += 1
            return mispredicted

        if op == _JUMP:
            self.stats.jumps += 1
            return False

        if op == _CALL:
            self.stats.calls += 1
            self.ras.push(pc + INSTRUCTION_BYTES)
            self.tage.update_history(True)
            return False

        if op == _RETURN:
            self.stats.returns += 1
            predicted = self.ras.pop()
            mispredicted = predicted != target
            if mispredicted:
                self.stats.returns_mispredicted += 1
            return mispredicted

        if op == _INDIRECT:
            self.stats.indirect += 1
            assert target is not None
            mispredicted = self.ittage.update(pc, target)
            self.ittage.update_history(target)
            if mispredicted:
                self.stats.indirect_mispredicted += 1
            return mispredicted

        raise ValueError(f"not a control instruction: op={op}")
