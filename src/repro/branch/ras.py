"""Return address stack (16 entries per Table 4)."""

from __future__ import annotations


class ReturnAddressStack:
    """Circular return-address stack.

    Overflow wraps (overwriting the oldest entry) and underflow returns
    ``None``, matching typical hardware behaviour where a too-deep call
    chain corrupts the bottom of the stack rather than faulting.
    """

    def __init__(self, depth: int = 16) -> None:
        if depth <= 0:
            raise ValueError("RAS depth must be positive")
        self.depth = depth
        self._stack: list[int] = []
        self.pushes = 0
        self.pops = 0
        self.underflows = 0

    def push(self, return_address: int) -> None:
        self.pushes += 1
        if len(self._stack) == self.depth:
            del self._stack[0]
        self._stack.append(return_address)

    def pop(self) -> int | None:
        self.pops += 1
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def peek(self) -> int | None:
        return self._stack[-1] if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)
