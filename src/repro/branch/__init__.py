"""Branch-prediction substrate.

The baseline core (Table 4) uses a 32KB TAGE conditional-branch
predictor, a 32KB ITTAGE indirect predictor and a 16-entry return
address stack.  Branch mispredictions set the flush-cost context in
which value prediction operates, and VTAGE borrows TAGE's global
branch history as its value-prediction context.
"""

from repro.branch.history import GlobalHistory, fold_history
from repro.branch.tage import Tage, TageConfig
from repro.branch.ittage import Ittage, IttageConfig
from repro.branch.ras import ReturnAddressStack
from repro.branch.unit import BranchUnit, BranchUnitStats

__all__ = [
    "GlobalHistory",
    "fold_history",
    "Tage",
    "TageConfig",
    "Ittage",
    "IttageConfig",
    "ReturnAddressStack",
    "BranchUnit",
    "BranchUnitStats",
]
