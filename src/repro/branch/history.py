"""Global history registers and history folding.

Both TAGE (branch outcomes) and PAP (load-path bits) maintain a global
shift register of single-bit events.  :func:`fold_history` compresses a
long history into a short index contribution by XOR-folding fixed-width
chunks, the standard TAGE construction.

Hot-path note: refolding the full history on every predictor lookup is
O(history/target) work per call and dominated the simulator profile.
:class:`FoldedHistory` keeps the folded image as a circularly updated
register, exactly as real TAGE/VTAGE hardware does (Seznec's CBP code;
Perais & Seznec, HPCA 2014): pushing one event bit rotates the folded
register and XORs the incoming and outgoing history bits in/out.  The
invariant — checked by the tests — is that a :class:`FoldedHistory`
always equals ``fold_history(history, history_bits, target_bits)`` of
the register it mirrors.
"""

from __future__ import annotations


def fold_history(history: int, history_bits: int, target_bits: int) -> int:
    """XOR-fold the low ``history_bits`` of ``history`` to ``target_bits``."""
    if target_bits <= 0:
        return 0
    mask = (1 << target_bits) - 1
    value = history & ((1 << history_bits) - 1) if history_bits < 64 * 64 else history
    folded = 0
    while value:
        folded ^= value & mask
        value >>= target_bits
    return folded


class FoldedHistory:
    """Incrementally maintained XOR-fold of a bounded shift register.

    Mirrors the low ``history_bits`` of a :class:`GlobalHistory`, folded
    to ``target_bits``.  ``push`` must be fed the same bit entering the
    history plus the bit falling off position ``history_bits - 1``.
    """

    __slots__ = ("history_bits", "target_bits", "value", "_mask", "_out_shift")

    def __init__(self, history_bits: int, target_bits: int) -> None:
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self.history_bits = history_bits
        self.target_bits = target_bits
        self.value = 0
        self._mask = (1 << target_bits) - 1 if target_bits > 0 else 0
        self._out_shift = history_bits % target_bits if target_bits > 0 else 0

    def push(self, new_bit: int, outgoing_bit: int) -> None:
        """Shift ``new_bit`` into the mirrored history; fold incrementally.

        Every bit of the mirrored history contributes to fold position
        ``i mod target_bits``; shifting the history left by one rotates
        each contribution by one position, the new bit lands at position
        0 and the outgoing bit is cancelled at its post-rotation slot
        ``history_bits mod target_bits``.
        """
        target = self.target_bits
        if target <= 0:
            return
        folded = self.value
        folded = ((folded << 1) | (folded >> (target - 1))) & self._mask
        folded ^= new_bit & 1
        folded ^= (outgoing_bit & 1) << self._out_shift
        self.value = folded

    def rebuild(self, history: int) -> None:
        """Recompute from scratch (snapshot-restore path, rare)."""
        self.value = fold_history(history, self.history_bits, self.target_bits)


class GlobalHistory:
    """Bounded global shift register of single-bit events.

    Supports snapshot/restore, which is how speculative history is
    managed: the front-end takes a snapshot alongside each speculative
    update and restores it on a squash (Section 2.2 highlights that this
    is cheap precisely because the history is global, unlike CAP's
    per-static-load history).

    Predictors register :class:`FoldedHistory` views via
    :meth:`folded_register`; each ``push`` updates every registered fold
    in O(1) and :attr:`version` lets callers memoize per-history-state
    derived values (e.g. TAGE index/tag sets).
    """

    __slots__ = (
        "length", "_mask", "_bits", "_folds", "_fold_params", "_fold_groups",
        "version",
    )

    def __init__(self, length: int) -> None:
        if length <= 0:
            raise ValueError("history length must be positive")
        self.length = length
        self._mask = (1 << length) - 1
        self._bits = 0
        self._folds: list[FoldedHistory] = []
        # Flattened (fold, out_bit_shift, rot_shift, mask, out_shift)
        # tuples so push() updates every fold without method dispatch.
        self._fold_params: list[tuple[FoldedHistory, int, int, int, int]] = []
        # The same folds grouped by mirrored-history length (out-bit
        # position): folds sharing a length see the same outgoing bit,
        # so push() extracts it once per group (TAGE registers three
        # folds per history length — index plus two tag hashes).
        self._fold_groups: list[tuple[int, tuple[tuple[FoldedHistory, int, int, int], ...]]] = []
        self.version = 0

    @property
    def value(self) -> int:
        return self._bits

    def folded_register(self, history_bits: int, target_bits: int) -> FoldedHistory:
        """Create (and keep updated) an incremental fold of this history."""
        if history_bits > self.length:
            raise ValueError(
                f"folded length {history_bits} exceeds history length {self.length}"
            )
        fold = FoldedHistory(history_bits, target_bits)
        fold.rebuild(self._bits)
        self._folds.append(fold)
        if target_bits > 0:
            self._fold_params.append(
                (fold, fold.history_bits - 1, target_bits - 1,
                 fold._mask, fold._out_shift)
            )
            groups: dict[int, list[tuple[FoldedHistory, int, int, int]]] = {}
            for f, out_bit_shift, rot, mask, out_shift in self._fold_params:
                groups.setdefault(out_bit_shift, []).append(
                    (f, rot, mask, 1 << out_shift)
                )
            self._fold_groups = [(obs, tuple(g)) for obs, g in groups.items()]
        return fold

    def push(self, bit: int) -> None:
        """Shift one event bit in (oldest bit falls off).

        Folds are updated per history-length group: the outgoing bit is
        extracted once per group, and the (incoming, outgoing) XOR terms
        are specialized by branching on the two bits — each inner loop
        then applies only the XOR masks that are actually non-zero.
        """
        bit &= 1
        bits = self._bits
        for out_bit_shift, group in self._fold_groups:
            if (bits >> out_bit_shift) & 1:
                if bit:
                    for fold, rot, mask, out_mask in group:
                        value = fold.value
                        fold.value = ((((value << 1) | (value >> rot)) & mask) ^ 1) ^ out_mask
                else:
                    for fold, rot, mask, out_mask in group:
                        value = fold.value
                        fold.value = (((value << 1) | (value >> rot)) & mask) ^ out_mask
            elif bit:
                for fold, rot, mask, _out_mask in group:
                    value = fold.value
                    fold.value = (((value << 1) | (value >> rot)) & mask) ^ 1
            else:
                for fold, rot, mask, _out_mask in group:
                    value = fold.value
                    fold.value = ((value << 1) | (value >> rot)) & mask
        self._bits = ((bits << 1) | bit) & self._mask
        self.version += 1

    def push_light(self, bit: int) -> None:
        """Shift one bit in WITHOUT maintaining the folded registers.

        For batched-key runs (repro.pipeline.batch): the folds go stale
        but the raw bits — what :attr:`value`/:meth:`snapshot` readers
        consume — stay exact.  :meth:`restore` rebuilds the folds, so a
        later snapshot/restore re-synchronizes them.
        """
        self._bits = ((self._bits << 1) | (bit & 1)) & self._mask
        self.version += 1

    def folded(self, target_bits: int) -> int:
        return fold_history(self._bits, self.length, target_bits)

    def snapshot(self) -> int:
        return self._bits

    def restore(self, snapshot: int) -> None:
        self._bits = snapshot & self._mask
        for fold in self._folds:
            fold.rebuild(self._bits)
        self.version += 1
