"""Global history registers and history folding.

Both TAGE (branch outcomes) and PAP (load-path bits) maintain a global
shift register of single-bit events.  :func:`fold_history` compresses a
long history into a short index contribution by XOR-folding fixed-width
chunks, the standard TAGE construction.
"""

from __future__ import annotations


def fold_history(history: int, history_bits: int, target_bits: int) -> int:
    """XOR-fold the low ``history_bits`` of ``history`` to ``target_bits``."""
    if target_bits <= 0:
        return 0
    mask = (1 << target_bits) - 1
    value = history & ((1 << history_bits) - 1) if history_bits < 64 * 64 else history
    folded = 0
    while value:
        folded ^= value & mask
        value >>= target_bits
    return folded


class GlobalHistory:
    """Bounded global shift register of single-bit events.

    Supports snapshot/restore, which is how speculative history is
    managed: the front-end takes a snapshot alongside each speculative
    update and restores it on a squash (Section 2.2 highlights that this
    is cheap precisely because the history is global, unlike CAP's
    per-static-load history).
    """

    def __init__(self, length: int) -> None:
        if length <= 0:
            raise ValueError("history length must be positive")
        self.length = length
        self._mask = (1 << length) - 1
        self._bits = 0

    @property
    def value(self) -> int:
        return self._bits

    def push(self, bit: int) -> None:
        """Shift one event bit in (oldest bit falls off)."""
        self._bits = ((self._bits << 1) | (bit & 1)) & self._mask

    def folded(self, target_bits: int) -> int:
        return fold_history(self._bits, self.length, target_bits)

    def snapshot(self) -> int:
        return self._bits

    def restore(self, snapshot: int) -> None:
        self._bits = snapshot & self._mask
