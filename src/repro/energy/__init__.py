"""Area/energy modelling.

The paper uses an in-house, RTL-PTPX-validated 28nm model that cannot
be reproduced; we substitute an analytical SRAM model (bits x port
scaling, CACTI-flavoured) and a core-energy accounting that charges
per-event costs plus a static/clock term per cycle.  Only *relative*
numbers are reported anywhere in the paper (Table 2 and Figures 6c/6d
are all normalized), and the substitution preserves orderings and rough
magnitudes; EXPERIMENTS.md records the residuals.
"""

from repro.energy.sram import SramModel, SramPort
from repro.energy.prf import PvtDesign, pvt_design_table
from repro.energy.predictor_costs import predictor_cost_table
from repro.energy.core_energy import EnergyWeights, core_energy, normalized_core_energy

__all__ = [
    "SramModel",
    "SramPort",
    "PvtDesign",
    "pvt_design_table",
    "predictor_cost_table",
    "EnergyWeights",
    "core_energy",
    "normalized_core_energy",
]
