"""Figure 6c: total core energy normalized to the no-prediction baseline.

Accounting: every run's :class:`~repro.pipeline.stats.EnergyEvents`
carries counts of the activities that differ across schemes — cache
demand accesses, DLVP's speculative probes (cheap when way-predicted),
L2/L3 traffic, predictor table reads/writes, PVT traffic — plus cycles
and instructions.  Energy is the weighted event sum plus a static/clock
term proportional to cycles: a scheme that probes more but finishes
sooner can still come out even, which is precisely the paper's claim
for DLVP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pipeline.stats import SimResult


@dataclass(frozen=True)
class EnergyWeights:
    """Per-event energy weights (arbitrary units).

    Defaults put the static/clock share of baseline core energy around
    30-40%, typical for a 28nm high-performance core, and charge a
    way-predicted probe roughly a quarter of a full L1 access (1 way of
    4 read, no fill path).
    """

    instruction: float = 1.0
    l1_access: float = 2.0
    l1_probe: float = 0.40
    l1_probe_way_predicted: float = 0.10
    l2_access: float = 8.0
    l3_access: float = 20.0
    predictor_read_per_kbit: float = 0.0015
    predictor_write_per_kbit: float = 0.0015
    pvt_access: float = 0.1
    static_per_cycle: float = 2.2


def core_energy(result: SimResult, weights: EnergyWeights | None = None) -> float:
    """Total core energy of one run (arbitrary units)."""
    w = weights or EnergyWeights()
    e = result.energy
    table_kbits = max(e.predictor_bits, 1) / 1024.0
    # Way-predicted probes read one data way instead of the full set;
    # charge them the discounted weight and the rest the full probe cost.
    full_probes = max(0, e.l1d_probes - e.l1d_probes_way_predicted)
    return (
        w.instruction * e.instructions
        + w.l1_access * e.l1d_accesses
        + w.l1_probe * full_probes
        + w.l1_probe_way_predicted * e.l1d_probes_way_predicted
        + w.l2_access * e.l2_accesses
        + w.l3_access * e.l3_accesses
        + w.predictor_read_per_kbit * table_kbits * e.predictor_reads
        + w.predictor_write_per_kbit * table_kbits * e.predictor_writes
        + w.pvt_access * (e.pvt_reads + e.pvt_writes)
        + w.static_per_cycle * e.cycles
    )


def normalized_core_energy(
    result: SimResult,
    baseline: SimResult,
    weights: EnergyWeights | None = None,
) -> float:
    """Figure 6c's metric: scheme energy / baseline energy, same trace."""
    if result.trace_name != baseline.trace_name:
        raise ValueError("normalize against the baseline of the same trace")
    return core_energy(result, weights) / core_energy(baseline, weights)
