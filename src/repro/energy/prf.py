"""Table 2: the three PRF/PVT designs for communicating predicted values.

* Design #1 — arbitrate on the existing PRF write ports (8rd/8wr).
* Design #2 — widen the PRF to 8rd/10wr to absorb predicted writes.
* Design #3 — Design #1's PRF plus a small 2rd/2wr PVT (the paper's
  choice, and this repository's).

``pvt_design_table`` reproduces the normalized area / read energy /
write energy rows, assuming (like the paper) that 30% of register
values read/written are predicted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.sram import SramModel, SramPort

_PRF_ENTRIES = 348
_VALUE_BITS = 64
_PVT_ENTRIES = 32
_PVT_TAG_BITS = 9          # physical register number


@dataclass(frozen=True)
class PvtDesign:
    """One row of Table 2 (values normalized to Design #1)."""

    name: str
    area: float
    read_energy: float
    write_energy: float


def _prf(write_ports: int) -> SramModel:
    return SramModel(
        bits=_PRF_ENTRIES * _VALUE_BITS,
        ports=SramPort(read=8, write=write_ports),
    )


def _pvt() -> SramModel:
    return SramModel(
        bits=_PVT_ENTRIES * (_VALUE_BITS + _PVT_TAG_BITS),
        ports=SramPort(read=2, write=2),
    )


def pvt_design_table(predicted_fraction: float = 0.30) -> dict[str, PvtDesign]:
    """Compute Table 2.

    Args:
        predicted_fraction: Share of register reads/writes that involve
            predicted values (the paper assumes 30%).

    Returns:
        ``{"pvt", "design1", "design2", "design3"}`` rows, all
        normalized to Design #1.
    """
    if not 0.0 <= predicted_fraction <= 1.0:
        raise ValueError("predicted_fraction must be in [0, 1]")

    base = _prf(8)
    wide = _prf(10)
    pvt = _pvt()
    p = predicted_fraction

    base_read, base_write = base.read_energy(), base.write_energy()

    rows = {
        "pvt": PvtDesign(
            name="PVT (2rd/2wr)",
            area=pvt.area() / base.area(),
            read_energy=pvt.read_energy() / base_read,
            write_energy=pvt.write_energy() / base_write,
        ),
        "design1": PvtDesign(name="Design #1 (PRF 8rd/8wr)", area=1.0,
                             read_energy=1.0, write_energy=1.0),
        "design2": PvtDesign(
            name="Design #2 (PRF 8rd/10wr)",
            area=wide.area() / base.area(),
            # Every access now pays the bigger array's cost.
            read_energy=wide.read_energy() / base_read,
            write_energy=(wide.write_energy() * (1 + p)) / base_write,
        ),
        "design3": PvtDesign(
            name="Design #3 (Design #1 + PVT)",
            area=(base.area() + pvt.area()) / base.area(),
            # Predicted reads are served by the cheap PVT instead.
            read_energy=((1 - p) * base_read + p * pvt.read_energy()) / base_read,
            # Predicted values are written twice: PVT now, PRF at execute.
            write_energy=(base_write + p * pvt.write_energy()) / base_write,
        ),
    }
    return rows
