"""Analytical SRAM area/energy model.

A standard first-order model of multi-ported SRAM arrays:

* each additional port adds a wordline + bitline pair, growing the cell
  linearly in both dimensions, so cell area scales with
  ``(1 + k(P - 1))^2``;
* read/write energy scales with the bitline/wordline capacitance
  switched per access — proportional to the array's linear dimensions,
  i.e. ``sqrt(bits)`` times the port-pitch factor.

Constants were chosen so the Table 2 orderings and rough magnitudes
come out; no absolute joules/mm2 are claimed (the paper only reports
normalized values).
"""

from __future__ import annotations

from dataclasses import dataclass

_PORT_PITCH = 0.09       # per-port cell-pitch growth
_FIXED_OVERHEAD_BITS = 1024   # decoders/sense-amps floor for tiny arrays


@dataclass(frozen=True)
class SramPort:
    """Port configuration of one array."""

    read: int
    write: int

    @property
    def total(self) -> int:
        return self.read + self.write


class SramModel:
    """Area and per-access energy of one SRAM structure."""

    def __init__(self, bits: int, ports: SramPort) -> None:
        if bits <= 0:
            raise ValueError("bits must be positive")
        if ports.read < 0 or ports.write < 0 or ports.total == 0:
            raise ValueError("need at least one port")
        self.bits = bits
        self.ports = ports

    def _pitch_factor(self) -> float:
        return 1.0 + _PORT_PITCH * (self.ports.total - 1)

    def area(self) -> float:
        """Relative silicon area (arbitrary units)."""
        return (self.bits + _FIXED_OVERHEAD_BITS) * self._pitch_factor() ** 2

    def read_energy(self) -> float:
        """Energy of one read access (arbitrary units)."""
        return (self.bits + _FIXED_OVERHEAD_BITS) ** 0.5 * self._pitch_factor()

    def write_energy(self) -> float:
        """Energy of one write access (arbitrary units)."""
        # Writes drive full-swing bitlines: a constant factor above reads.
        return 1.25 * self.read_energy()

    def leakage(self) -> float:
        """Relative leakage power (scales with area)."""
        return 0.01 * self.area()
