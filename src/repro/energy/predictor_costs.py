"""Figure 6d: predictor area / read energy / write energy, normalized
to the PAP predictor.

Structure geometries follow Table 4:

* PAP — one 1k-entry direct-mapped table (~67k bits, ARMv8);
* CAP — two 1k-entry tables (~95k bits total); a prediction reads both
  (load buffer then link table) and training writes both;
* VTAGE — three 256-entry tables (~62.3k bits); a prediction reads all
  three in parallel, training writes (mostly) one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.sram import SramModel, SramPort
from repro.predictors.cap import CapConfig, CapPredictor
from repro.predictors.pap import PapConfig, PapPredictor
from repro.predictors.vtage import VtageConfig, VtagePredictor

_PORTS = SramPort(read=1, write=1)


@dataclass(frozen=True)
class PredictorCost:
    """One bar group of Figure 6d (normalized to PAP)."""

    name: str
    storage_bits: int
    area: float
    read_energy: float
    write_energy: float


def _models(bits_per_table: list[int]) -> list[SramModel]:
    return [SramModel(bits=b, ports=_PORTS) for b in bits_per_table]


def predictor_cost_table(
    pap_config: PapConfig | None = None,
    cap_config: CapConfig | None = None,
    vtage_config: VtageConfig | None = None,
) -> dict[str, PredictorCost]:
    """Compute Figure 6d's three bar groups."""
    pap = PapPredictor(pap_config)
    cap = CapPredictor(cap_config)
    vtage = VtagePredictor(vtage_config)

    pap_tables = _models([pap.storage_bits(include_way=True)])
    cap_cfg = cap.config
    lb_bits = cap_cfg.load_buffer_entries * (cap_cfg.tag_bits + 2 + 8 + cap_cfg.history_bits)
    link_bits = cap.storage_bits() - lb_bits
    cap_tables = _models([lb_bits, link_bits])
    vtage_per_table = vtage.storage_bits() // len(vtage.config.history_lengths)
    vtage_tables = _models([vtage_per_table] * len(vtage.config.history_lengths))

    def cost(name: str, bits: int, tables: list[SramModel], write_tables: float) -> PredictorCost:
        return PredictorCost(
            name=name,
            storage_bits=bits,
            area=sum(t.area() for t in tables),
            read_energy=sum(t.read_energy() for t in tables),
            write_energy=write_tables * tables[0].write_energy(),
        )

    raw = {
        "pap": cost("PAP", pap.storage_bits(include_way=True), pap_tables, 1.0),
        "cap": cost("CAP", cap.storage_bits(), cap_tables, 2.0),
        "vtage": cost("VTAGE", vtage.storage_bits(), vtage_tables, 1.0),
    }
    base = raw["pap"]
    return {
        key: PredictorCost(
            name=c.name,
            storage_bits=c.storage_bits,
            area=c.area / base.area,
            read_energy=c.read_energy / base.read_energy,
            write_energy=c.write_energy / base.write_energy,
        )
        for key, c in raw.items()
    }
