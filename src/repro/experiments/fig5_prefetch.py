"""Figure 5 — benefit of DLVP-generated prefetches.

DLVP issues a prefetch when a probe finds the predicted address absent
from L1 (Section 3.2.2).  Paper headline: the fraction of loads that
trigger a prefetch is small (0.3% on average, ~1.1% for h264ref) and
so is the average gain from enabling it (~0.1%) — but it is free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import DlvpConfig
from repro.core.dlvp import DlvpStats
from repro.experiments.runner import SuiteRunner, arithmetic_mean, format_table
from repro.pipeline import DlvpScheme
from repro.runtime import register_scheme

_PREFETCH_ON = DlvpConfig(prefetch_on_miss=True)
_PREFETCH_OFF = DlvpConfig(prefetch_on_miss=False)

register_scheme(
    "dlvp/prefetch", lambda: DlvpScheme(_PREFETCH_ON), config=_PREFETCH_ON
)
register_scheme(
    "dlvp/no-prefetch", lambda: DlvpScheme(_PREFETCH_OFF), config=_PREFETCH_OFF
)


@dataclass(frozen=True)
class Fig5Result:
    speedup_with: dict[str, float]
    speedup_without: dict[str, float]
    prefetch_fraction: dict[str, float]

    @property
    def average_delta(self) -> float:
        """Average speedup gained by enabling prefetching (paper ~0.1%)."""
        deltas = [
            self.speedup_with[n] - self.speedup_without[n] for n in self.speedup_with
        ]
        return arithmetic_mean(deltas)

    @property
    def average_prefetch_fraction(self) -> float:
        return arithmetic_mean(self.prefetch_fraction.values())

    def rows(self) -> list[tuple[str, float, float, float]]:
        return [
            (
                name,
                self.speedup_with[name],
                self.speedup_without[name],
                self.prefetch_fraction[name],
            )
            for name in sorted(self.speedup_with)
        ]

    def render(self, top: int = 12) -> str:
        interesting = sorted(
            self.rows(), key=lambda r: r[3], reverse=True
        )[:top]
        rows = [
            [name, f"{w:+7.1%}", f"{wo:+7.1%}", f"{pf:6.2%}"]
            for name, w, wo, pf in interesting
        ]
        table = format_table(
            ["workload", "prefetch on", "prefetch off", "loads prefetched"], rows
        )
        summary = (
            f"\naverage prefetch fraction: {self.average_prefetch_fraction:.2%} (paper ~0.3%)"
            f"\naverage speedup delta:     {self.average_delta:+.2%} (paper ~+0.1%)"
        )
        return "Figure 5 — DLVP prefetch benefit (top prefetchers shown)\n" + table + summary


def run(runner: SuiteRunner) -> Fig5Result:
    """Run DLVP with prefetching enabled and disabled."""
    with_pf = runner.run_scheme("dlvp/prefetch")
    without_pf = runner.run_scheme("dlvp/no-prefetch")
    fractions = {}
    for name, result in with_pf.items():
        stats = result.scheme_stats
        assert isinstance(stats, DlvpStats)
        fractions[name] = stats.prefetch_fraction
    return Fig5Result(
        speedup_with=runner.speedups(with_pf),
        speedup_without=runner.speedups(without_pf),
        prefetch_fraction=fractions,
    )
