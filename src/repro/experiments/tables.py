"""Tables 1-4 — configuration/structure tables regenerated from code.

* Table 1 — APT entry field widths.
* Table 2 — PVT design area/energy (computed by :mod:`repro.energy.prf`).
* Table 3 — the workload suite.
* Table 4 — baseline core configuration plus predictor storage budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy import pvt_design_table
from repro.energy.prf import PvtDesign
from repro.experiments.runner import format_table
from repro.pipeline import CoreConfig
from repro.predictors import (
    AptEntryLayout,
    CapConfig,
    CapPredictor,
    PapConfig,
    PapPredictor,
    VtageConfig,
    VtagePredictor,
)
from repro.workloads import PAPER_GROUPS, SUITE_GROUPS


@dataclass(frozen=True)
class Table1Result:
    layout: AptEntryLayout
    armv7_bits: int
    armv8_bits: int

    def render(self) -> str:
        rows = [
            ["tag", str(self.layout.tag_bits)],
            ["memory address (ARMv8)", str(self.layout.address_bits)],
            ["confidence (FPC)", str(self.layout.confidence_bits)],
            ["size", str(self.layout.size_bits)],
            ["cache way (optional)", str(self.layout.way_bits)],
            ["entry total ARMv7 / ARMv8", f"{self.armv7_bits} / {self.armv8_bits}"],
        ]
        return "Table 1 — APT entry fields (bits)\n" + format_table(["field", "bits"], rows)


def table1() -> Table1Result:
    """Compute Table 1 (APT entry field widths)."""
    layout = AptEntryLayout()
    v7 = AptEntryLayout(address_bits=32)
    return Table1Result(
        layout=layout, armv7_bits=v7.bits(), armv8_bits=layout.bits()
    )


@dataclass(frozen=True)
class Table2Result:
    designs: dict[str, PvtDesign]

    def render(self) -> str:
        rows = [
            [d.name, f"{d.area:5.2f}", f"{d.read_energy:5.2f}", f"{d.write_energy:5.2f}"]
            for d in self.designs.values()
        ]
        return (
            "Table 2 — PVT designs normalized to Design #1 "
            "(paper: area 0.06/1.00/1.16/1.06; read 0.10/1.00/1.10/0.80; "
            "write 0.07/1.00/1.51/1.07)\n"
            + format_table(["design", "area", "read energy", "write energy"], rows)
        )


def table2(predicted_fraction: float = 0.30) -> Table2Result:
    """Compute Table 2 (PVT design area/energy)."""
    return Table2Result(designs=pvt_design_table(predicted_fraction))


@dataclass(frozen=True)
class Table3Result:
    groups: dict[str, list[str]]

    @property
    def total(self) -> int:
        return sum(len(names) for names in self.groups.values())

    def render(self) -> str:
        rows = [
            [group, str(len(names)), ", ".join(sorted(names))]
            for group, names in sorted(self.groups.items())
        ]
        return (
            f"Table 3 — workload suite ({self.total} workloads)\n"
            + format_table(["group", "count", "workloads"], rows)
        )


def table3() -> Table3Result:
    """Compute Table 3 (the paper's workload suite).

    Restricted to :data:`~repro.workloads.PAPER_GROUPS`: adversarial
    stress workloads live in the registry for the farm's chaos tests
    but are not part of the paper's 78-benchmark pool.
    """
    return Table3Result(
        groups={g: list(SUITE_GROUPS[g]) for g in PAPER_GROUPS}
    )


@dataclass(frozen=True)
class Table4Result:
    core: CoreConfig
    pap_bits: int
    pap_bits_v7: int
    cap_bits: int
    vtage_bits: int

    def render(self) -> str:
        cfg = self.core
        rows = [
            ["fetch-rename width", f"{cfg.fetch_width} instr/cycle"],
            ["issue-commit width", f"{cfg.issue_width} instr/cycle"],
            ["execution lanes", f"{cfg.ls_lanes} load-store + {cfg.generic_lanes} generic"],
            ["ROB/IQ/LDQ/STQ", f"{cfg.rob_entries}/{cfg.iq_entries}/{cfg.ldq_entries}/{cfg.stq_entries}"],
            ["physical registers", str(cfg.physical_registers)],
            ["fetch-to-execute", f"{cfg.fetch_to_execute} cycles"],
            ["PAP budget (v7/v8)", f"{self.pap_bits_v7 // 1024}k / {self.pap_bits // 1024}k bits"],
            ["CAP budget", f"{self.cap_bits // 1024}k bits"],
            ["VTAGE budget", f"{self.vtage_bits / 1024:.1f}k bits"],
        ]
        return (
            "Table 4 — baseline core and predictor budgets "
            "(paper: PAP 50k/67k, CAP 78k/95k, VTAGE 62.3k bits)\n"
            + format_table(["parameter", "value"], rows)
        )


def table4() -> Table4Result:
    """Compute Table 4 (core config and predictor budgets)."""
    pap = PapPredictor(PapConfig())
    pap_v7 = PapPredictor(PapConfig(address_bits=32))
    cap = CapPredictor(CapConfig())
    vtage = VtagePredictor(VtageConfig())
    return Table4Result(
        core=CoreConfig(),
        pap_bits=pap.storage_bits(),
        pap_bits_v7=pap_v7.storage_bits(),
        cap_bits=cap.storage_bits(),
        vtage_bits=vtage.storage_bits(),
    )
