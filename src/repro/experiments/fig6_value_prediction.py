"""Figure 6 — the paper's headline comparison of CAP, VTAGE and DLVP:

* 6a per-workload speedup (paper: DLVP 4.8% avg / up to 71% on perlbmk;
  VTAGE 2.1%; CAP 2.3%);
* 6b coverage (paper: DLVP 31.1%, VTAGE 29.6%, CAP 23.8%);
* 6c total core energy normalized to the baseline (paper: DLVP on par
  with baseline and VTAGE);
* 6d predictor area / read / write energy normalized to PAP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy import EnergyWeights, normalized_core_energy, predictor_cost_table
from repro.energy.predictor_costs import PredictorCost
from repro.experiments.runner import (
    SuiteRunner,
    arithmetic_mean,
    format_table,
)
from repro.pipeline import SimResult

_SCHEMES = ("cap", "vtage", "dlvp")


@dataclass(frozen=True)
class Fig6Result:
    results: dict[str, dict[str, SimResult]]     # scheme -> workload -> run
    speedups: dict[str, dict[str, float]]        # scheme -> workload -> speedup
    energy: dict[str, dict[str, float]]          # scheme -> workload -> normalized
    predictor_costs: dict[str, PredictorCost]

    def average_speedup(self, scheme: str) -> float:
        return arithmetic_mean(self.speedups[scheme].values())

    def max_speedup(self, scheme: str) -> tuple[str, float]:
        name = max(self.speedups[scheme], key=self.speedups[scheme].get)
        return name, self.speedups[scheme][name]

    def average_coverage(self, scheme: str) -> float:
        return arithmetic_mean(
            r.value_coverage for r in self.results[scheme].values()
        )

    def average_accuracy(self, scheme: str) -> float:
        return arithmetic_mean(
            r.value_accuracy for r in self.results[scheme].values()
        )

    def average_energy(self, scheme: str) -> float:
        return arithmetic_mean(self.energy[scheme].values())

    def workloads_improved(self, scheme: str, by: float = 0.01) -> int:
        return sum(1 for s in self.speedups[scheme].values() if s > by)

    def render(self) -> str:
        parts = ["Figure 6a/6b/6c — value-prediction schemes over the suite"]
        rows = []
        for scheme in _SCHEMES:
            best_name, best = self.max_speedup(scheme)
            rows.append(
                [
                    scheme,
                    f"{self.average_speedup(scheme):+7.1%}",
                    f"{best:+7.1%} ({best_name})",
                    f"{self.average_coverage(scheme):6.1%}",
                    f"{self.average_accuracy(scheme):7.2%}",
                    f"{self.average_energy(scheme):6.3f}",
                    f"{self.workloads_improved(scheme)}",
                ]
            )
        parts.append(
            format_table(
                ["scheme", "avg speedup", "max speedup", "coverage", "accuracy",
                 "norm energy", ">1% wins"],
                rows,
            )
        )
        parts.append(
            "(paper: DLVP +4.8%/max +71% perlbmk/31.1%/>99%, VTAGE +2.1%/29.6%, "
            "CAP +2.3%/23.8%; energy ~1.00)"
        )
        parts.append("\nFigure 6d — predictor costs normalized to PAP")
        cost_rows = [
            [c.name, f"{c.area:5.2f}", f"{c.read_energy:5.2f}", f"{c.write_energy:5.2f}"]
            for c in self.predictor_costs.values()
        ]
        parts.append(format_table(["predictor", "area", "read", "write"], cost_rows))
        return "\n".join(parts)


def run(runner: SuiteRunner, energy_weights: EnergyWeights | None = None) -> Fig6Result:
    """Run CAP, VTAGE and DLVP over the suite (Figures 6a-6d).

    The schemes are submitted through the runner's runtime by their
    registered ids, so cells hit the result cache and fan out across
    workers when the runtime allows it.
    """
    baselines = runner.baselines()
    results: dict[str, dict[str, SimResult]] = {}
    speedups: dict[str, dict[str, float]] = {}
    energy: dict[str, dict[str, float]] = {}
    for scheme in _SCHEMES:
        runs = runner.run_scheme(scheme)
        results[scheme] = runs
        speedups[scheme] = runner.speedups(runs)
        energy[scheme] = {
            name: normalized_core_energy(run, baselines[name], energy_weights)
            for name, run in runs.items()
        }
    return Fig6Result(
        results=results,
        speedups=speedups,
        energy=energy,
        predictor_costs=predictor_cost_table(),
    )
