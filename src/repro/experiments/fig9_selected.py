"""Figure 9 — selected benchmarks where speedup does not track coverage.

The paper picks bzip2, pdfjs, gcc, soplex and avmshell and shows the
second-order effects that decouple the two metrics: TLB pressure from
DLVP's double cache probe (bzip2 hurt, avmshell helped) and small
accuracy differences (pdfjs favours VTAGE, gcc/soplex favour DLVP).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import SuiteRunner, format_table
from repro.pipeline import SimResult

SELECTED = ("bzip2", "pdfjs", "gcc", "soplex", "avmshell")


@dataclass(frozen=True)
class Fig9Result:
    dlvp: dict[str, SimResult]
    vtage: dict[str, SimResult]
    dlvp_speedups: dict[str, float]
    vtage_speedups: dict[str, float]

    def rows(self) -> list[list[str]]:
        rows = []
        for name in SELECTED:
            d, v = self.dlvp[name], self.vtage[name]
            rows.append(
                [
                    name,
                    f"{self.dlvp_speedups[name]:+7.2%}",
                    f"{d.value_coverage:6.1%}",
                    f"{d.value_accuracy:7.2%}",
                    f"{d.tlb_miss_rate:8.4%}",
                    f"{self.vtage_speedups[name]:+7.2%}",
                    f"{v.value_coverage:6.1%}",
                    f"{v.value_accuracy:7.2%}",
                    f"{v.tlb_miss_rate:8.4%}",
                ]
            )
        return rows

    def render(self) -> str:
        table = format_table(
            [
                "workload",
                "dlvp spd", "dlvp cov", "dlvp acc", "dlvp tlb-miss",
                "vtage spd", "vtage cov", "vtage acc", "vtage tlb-miss",
            ],
            self.rows(),
        )
        return (
            "Figure 9 — selected benchmarks (speedup vs coverage decoupled "
            "by TLB and accuracy second-order effects)\n" + table
        )


def run(runner: SuiteRunner) -> Fig9Result:
    """Run DLVP and VTAGE on the paper's five selected benchmarks."""
    selected_runner = SuiteRunner(
        n_instructions=runner.n_instructions,
        names=list(SELECTED),
        runtime=runner.runtime,
    )
    dlvp = selected_runner.run_scheme("dlvp")
    vtage = selected_runner.run_scheme("vtage")
    return Fig9Result(
        dlvp=dlvp,
        vtage=vtage,
        dlvp_speedups=selected_runner.speedups(dlvp),
        vtage_speedups=selected_runner.speedups(vtage),
    )
