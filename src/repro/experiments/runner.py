"""Shared experiment machinery.

:class:`SuiteRunner` builds the workload suite once, caches the traces
and the baseline runs, and executes value-prediction schemes over the
suite.  Scheme objects are stateful, so a fresh instance is constructed
per (scheme, trace) pair via factory callables.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable

from repro.pipeline import (
    DlvpScheme,
    RecoveryMode,
    Scheme,
    SimResult,
    TournamentScheme,
    VtageScheme,
    simulate,
)
from repro.predictors.cap import CapConfig
from repro.predictors.vtage import VtageConfig
from repro.trace import Trace
from repro.workloads import build_suite, workload_names


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain average; 0.0 for an empty sequence."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def geometric_mean(speedups: Iterable[float]) -> float:
    """Geometric mean of (1 + speedup) factors, returned as a speedup."""
    factors = [1.0 + s for s in speedups]
    if not factors:
        return 0.0
    return math.exp(sum(math.log(f) for f in factors) / len(factors)) - 1.0


def default_scheme_factories() -> dict[str, Callable[[], Scheme]]:
    """The paper's three value predictors plus the Figure 8 tournament.

    ``cap`` is DLVP with the CAP address predictor at confidence 24,
    the best point found by the paper's sweep (Section 5.2.3);
    ``vtage`` uses the static opcode filter on loads only, the winning
    Figure 7 configuration.
    """
    return {
        "dlvp": DlvpScheme,
        "cap": lambda: DlvpScheme(
            use_cap=True, cap_config=CapConfig(confidence_threshold=24)
        ),
        "vtage": lambda: VtageScheme(VtageConfig()),
        "tournament": TournamentScheme,
    }


class SuiteRunner:
    """Build-once, simulate-many experiment driver."""

    def __init__(
        self,
        n_instructions: int = 12_000,
        names: list[str] | None = None,
    ) -> None:
        self.names = names if names is not None else workload_names()
        self.n_instructions = n_instructions
        self._traces: dict[str, Trace] | None = None
        self._baselines: dict[str, SimResult] | None = None

    @property
    def traces(self) -> dict[str, Trace]:
        if self._traces is None:
            self._traces = build_suite(self.n_instructions, names=self.names)
        return self._traces

    def baselines(self) -> dict[str, SimResult]:
        """Baseline (no value prediction) run per workload, cached."""
        if self._baselines is None:
            self._baselines = {
                name: simulate(trace) for name, trace in self.traces.items()
            }
        return self._baselines

    def run_scheme(
        self,
        scheme_factory: Callable[[], Scheme] | None,
        recovery: RecoveryMode = RecoveryMode.FLUSH,
    ) -> dict[str, SimResult]:
        """Run one scheme (or the baseline for None) over the suite."""
        if scheme_factory is None:
            return self.baselines()
        return {
            name: simulate(trace, scheme=scheme_factory(), recovery=recovery)
            for name, trace in self.traces.items()
        }

    def speedups(self, results: dict[str, SimResult]) -> dict[str, float]:
        """Per-workload speedup of ``results`` over the cached baselines."""
        baselines = self.baselines()
        return {
            name: result.speedup_over(baselines[name])
            for name, result in results.items()
        }


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Plain-text table rendering used by every experiment's render()."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
