"""Shared experiment machinery.

:class:`SuiteRunner` is the experiments' front door to the
:mod:`repro.runtime` subsystem: every scheme run over the suite becomes
a grid of content-hashed jobs submitted through a
:class:`~repro.runtime.Runtime`, which supplies result caching,
parallel fan-out and the run journal.  Schemes are addressed by
registered id (``"dlvp"``, ``"vtage"``, ...); passing a factory
callable is still supported for ad-hoc schemes, and runs in-process
without caching (a closure has no content hash).
"""

from __future__ import annotations

import math
import warnings
from collections.abc import Callable, Iterable

from repro.pipeline import (
    DlvpScheme,
    RecoveryMode,
    Scheme,
    SimResult,
    TournamentScheme,
    VtageScheme,
    simulate,
)
from repro.predictors.cap import CapConfig
from repro.predictors.vtage import VtageConfig
from repro.runtime import GridResult, RunInterrupted, Runtime
from repro.trace import Trace
from repro.workloads import build_suite, workload_names


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain average; 0.0 for an empty sequence."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def geometric_mean(speedups: Iterable[float]) -> float:
    """Geometric mean of (1 + speedup) factors, returned as a speedup.

    A speedup of -100% or worse makes its factor non-positive, for
    which the geometric mean is undefined; such entries are skipped
    with a warning rather than poisoning the whole aggregate.
    """
    factors = [1.0 + s for s in speedups]
    positive = [f for f in factors if f > 0.0]
    if len(positive) != len(factors):
        warnings.warn(
            f"geometric_mean: skipped {len(factors) - len(positive)} "
            "non-positive speedup factor(s) (speedup <= -100%)",
            RuntimeWarning,
            stacklevel=2,
        )
    if not positive:
        return 0.0
    return math.exp(sum(math.log(f) for f in positive) / len(positive)) - 1.0


def default_scheme_factories() -> dict[str, Callable[[], Scheme]]:
    """The paper's three value predictors plus the Figure 8 tournament.

    ``cap`` is DLVP with the CAP address predictor at confidence 24,
    the best point found by the paper's sweep (Section 5.2.3);
    ``vtage`` uses the static opcode filter on loads only, the winning
    Figure 7 configuration.

    These factories mirror the scheme ids registered with
    :mod:`repro.runtime.registry`; experiments that want caching and
    parallelism should pass the *id* to :meth:`SuiteRunner.run_scheme`.
    """
    return {
        "dlvp": DlvpScheme,
        "cap": lambda: DlvpScheme(
            use_cap=True, cap_config=CapConfig(confidence_threshold=24)
        ),
        "vtage": lambda: VtageScheme(VtageConfig()),
        "tournament": TournamentScheme,
    }


class SuiteRunner:
    """Build-once, simulate-many experiment driver.

    Args:
        n_instructions: Trace length per workload.
        names: Workload subset (default: the whole suite).
        runtime: The scheduling runtime.  The default is serial and
            uncached, which keeps library/test usage free of disk
            side effects; the CLI passes a cached, parallel runtime.
    """

    def __init__(
        self,
        n_instructions: int = 12_000,
        names: list[str] | None = None,
        runtime: Runtime | None = None,
    ) -> None:
        self.names = names if names is not None else workload_names()
        self.n_instructions = n_instructions
        self.runtime = runtime if runtime is not None else Runtime(
            jobs=1, use_cache=False
        )
        self._traces: dict[str, Trace] | None = None
        self._baselines: dict[str, SimResult] | None = None

    @property
    def traces(self) -> dict[str, Trace]:
        if self._traces is None:
            self._traces = build_suite(self.n_instructions, names=self.names)
        return self._traces

    def baselines(self) -> dict[str, SimResult]:
        """Baseline (no value prediction) run per workload, cached."""
        if self._baselines is None:
            grid = self.runtime.run_grid(
                ["baseline"], self.names, self.n_instructions
            )
            self._baselines = self._complete(grid).scheme_results("baseline")
        return self._baselines

    @staticmethod
    def _complete(grid: GridResult) -> GridResult:
        """Pass the grid through, unless Ctrl-C/SIGTERM cut it short.

        An interrupted grid raises :class:`RunInterrupted` carrying the
        partial results, so figure code never renders a half-grid as if
        it were the real thing and the CLI can print a partial report
        (with a ``--resume`` hint) instead of a stack trace.
        """
        if not grid.complete:
            raise RunInterrupted(grid)
        return grid

    def run_scheme(
        self,
        scheme: str | Callable[[], Scheme] | None,
        recovery: RecoveryMode = RecoveryMode.FLUSH,
    ) -> dict[str, SimResult]:
        """Run one scheme over the suite.

        ``scheme`` is a registered scheme id (cached, parallelizable),
        a factory callable (in-process, uncached), or None for the
        baseline.
        """
        if scheme is None:
            return self.baselines()
        if isinstance(scheme, str):
            grid = self.runtime.run_grid(
                [scheme], self.names, self.n_instructions, recovery=recovery
            )
            return self._complete(grid).scheme_results(scheme)
        return {
            name: simulate(trace, scheme=scheme(), recovery=recovery)
            for name, trace in self.traces.items()
        }

    def speedups(self, results: dict[str, SimResult]) -> dict[str, float]:
        """Per-workload speedup of ``results`` over the cached baselines."""
        baselines = self.baselines()
        return {
            name: result.speedup_over(baselines[name])
            for name, result in results.items()
        }


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Plain-text table rendering used by every experiment's render()."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
