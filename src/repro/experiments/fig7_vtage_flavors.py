"""Figure 7 — VTAGE flavours on an ARM-like ISA.

The paper's diagnosis (Section 5.2.2): multi-destination loads (LDP,
LDM) and vector loads (VLD) poison vanilla VTAGE — one predictor entry
per destination register inflates table pressure, and a single wrong
slot flushes.  Filters fix it:

* vanilla < dynamic filter < static filter (the dynamic filter pays for
  its own training mispredictions);
* predicting loads only beats predicting all instructions at a modest
  (8KB) budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import SuiteRunner, arithmetic_mean, format_table
from repro.pipeline import SimResult, VtageScheme
from repro.predictors import OpcodeFilterMode, VtageConfig
from repro.runtime import register_scheme

CONFIGS: dict[str, VtageConfig] = {
    "vanilla/loads": VtageConfig(filter_mode=OpcodeFilterMode.NONE, loads_only=True),
    "dynamic/loads": VtageConfig(filter_mode=OpcodeFilterMode.DYNAMIC, loads_only=True),
    "static/loads": VtageConfig(filter_mode=OpcodeFilterMode.STATIC, loads_only=True),
    "vanilla/all": VtageConfig(filter_mode=OpcodeFilterMode.NONE, loads_only=False),
    "dynamic/all": VtageConfig(filter_mode=OpcodeFilterMode.DYNAMIC, loads_only=False),
    "static/all": VtageConfig(filter_mode=OpcodeFilterMode.STATIC, loads_only=False),
}

# Each flavour is a registered scheme id so suite runs are cacheable
# grid jobs; the config is folded into every job's content hash.
_SCHEME_IDS: dict[str, str] = {
    name: f"vtage/{name}" for name in CONFIGS
}
for _name, _config in CONFIGS.items():
    register_scheme(
        _SCHEME_IDS[_name],
        lambda config=_config: VtageScheme(config),
        config=_config,
    )


@dataclass(frozen=True)
class Fig7Result:
    results: dict[str, dict[str, SimResult]]
    speedups: dict[str, dict[str, float]]

    def average_speedup(self, config: str) -> float:
        return arithmetic_mean(self.speedups[config].values())

    def average_coverage(self, config: str) -> float:
        return arithmetic_mean(
            r.value_coverage for r in self.results[config].values()
        )

    def average_accuracy(self, config: str) -> float:
        return arithmetic_mean(
            r.value_accuracy for r in self.results[config].values()
        )

    def render(self) -> str:
        rows = [
            [
                config,
                f"{self.average_speedup(config):+7.2%}",
                f"{self.average_coverage(config):6.1%}",
                f"{self.average_accuracy(config):7.2%}",
            ]
            for config in CONFIGS
        ]
        table = format_table(["configuration", "speedup", "coverage", "accuracy"], rows)
        return (
            "Figure 7 — VTAGE flavours "
            "(paper: static >= dynamic > vanilla; loads-only wins)\n" + table
        )


def run(runner: SuiteRunner) -> Fig7Result:
    """Run all six VTAGE filter/eligibility configurations."""
    results = {}
    speedups = {}
    for name in CONFIGS:
        runs = runner.run_scheme(_SCHEME_IDS[name])
        results[name] = runs
        speedups[name] = runner.speedups(runs)
    return Fig7Result(results=results, speedups=speedups)
