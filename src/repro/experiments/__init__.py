"""Experiment runners — one per table/figure in the paper's evaluation.

Every module exposes a ``run(...)`` function returning a small result
object with ``rows()`` (machine-readable) and ``render()`` (the text
the benchmark harness prints).  The common machinery — building the
suite once, running schemes, aggregating speedups — lives in
:mod:`repro.experiments.runner`.

| Paper artefact | Module |
|---|---|
| Figure 1  | :mod:`repro.experiments.fig1_conflicts` |
| Figure 2  | :mod:`repro.experiments.fig2_repeatability` |
| Figure 4  | :mod:`repro.experiments.fig4_address_prediction` |
| Figure 5  | :mod:`repro.experiments.fig5_prefetch` |
| Figure 6  | :mod:`repro.experiments.fig6_value_prediction` |
| Figure 7  | :mod:`repro.experiments.fig7_vtage_flavors` |
| Figure 8  | :mod:`repro.experiments.fig8_tournament` |
| Figure 9  | :mod:`repro.experiments.fig9_selected` |
| Figure 10 | :mod:`repro.experiments.fig10_recovery` |
| Tables 1-4| :mod:`repro.experiments.tables` |
"""

from repro.experiments.runner import SuiteRunner, geometric_mean, arithmetic_mean

__all__ = ["SuiteRunner", "geometric_mean", "arithmetic_mean"]
