"""Figure 4 — standalone address-prediction coverage and accuracy:
PAP (confidence 8) versus CAP at confidences 3..64.

Paper headline: at equal confidence (8), PAP wins on both coverage
(37% vs 29.5%) and accuracy (99.1% vs 97.7%); CAP needs confidence 64
to match PAP's accuracy, at which point its coverage drops to 24%.

The standalone drivers replicate exactly the front-end conditions the
predictors would see in the pipeline — fetch-group slotting for PAP's
FGA-keyed APT, speculative load-path history updates — but train on
every load with no LSCD filtering, which is what "standalone address
predictor" means in Section 5.1 (that is why PAP's standalone coverage,
37%, exceeds DLVP's in-pipeline coverage, 31.1%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import SuiteRunner, format_table
from repro.isa import OpClass, fetch_group_address
from repro.predictors import CapConfig, CapPredictor, PapConfig, PapPredictor
from repro.predictors.base import PredictorStats
from repro.trace import Trace


def evaluate_pap(trace: Trace, config: PapConfig | None = None) -> PredictorStats:
    """Drive a standalone PAP over one trace; returns coverage/accuracy."""
    pap = PapPredictor(config)
    prev_pc: int | None = None
    current_group = -1
    loads_in_group = 0
    for inst in trace:
        if inst.pc != (prev_pc + 4 if prev_pc is not None else None) or (
            fetch_group_address(inst.pc) != current_group
        ):
            current_group = fetch_group_address(inst.pc)
            loads_in_group = 0
        prev_pc = inst.pc
        if inst.op != OpClass.LOAD:
            continue
        assert inst.mem_addr is not None
        slot = loads_in_group
        loads_in_group += 1
        if slot >= 2:
            pap.stats.loads_seen += 1
            pap.history.push_load(inst.pc)
            continue
        key_pc = fetch_group_address(inst.pc) | (slot << 2)
        index, tag = pap.compute_key(key_pc)
        prediction = pap.predict(index, tag)
        pap.history.push_load(inst.pc)
        pap.record_outcome(prediction, inst.mem_addr)
        pap.train(index, tag, inst.mem_addr, inst.mem_size, None)
    return pap.stats


def evaluate_cap(trace: Trace, config: CapConfig | None = None) -> PredictorStats:
    """Drive a standalone CAP over one trace."""
    cap = CapPredictor(config)
    for inst in trace:
        if inst.op != OpClass.LOAD:
            continue
        assert inst.mem_addr is not None
        prediction = cap.predict_pc(inst.pc)
        cap.record_outcome(prediction, inst.mem_addr)
        cap.train(inst.pc, inst.mem_addr)
    return cap.stats


@dataclass(frozen=True)
class Fig4Result:
    """Coverage/accuracy per predictor configuration, suite-aggregated."""

    pap: PredictorStats
    cap_by_confidence: dict[int, PredictorStats]

    def rows(self) -> list[tuple[str, float, float]]:
        rows = [("PAP (conf 8)", self.pap.coverage, self.pap.accuracy)]
        rows.extend(
            (f"CAP (conf {c})", s.coverage, s.accuracy)
            for c, s in sorted(self.cap_by_confidence.items())
        )
        return rows

    def render(self) -> str:
        rows = [
            [name, f"{cov:6.1%}", f"{acc:7.2%}"] for name, cov, acc in self.rows()
        ]
        table = format_table(["predictor", "coverage", "accuracy"], rows)
        return (
            "Figure 4 — standalone address prediction "
            "(paper: PAP 37%/99.1%, CAP@8 29.5%/97.7%, CAP@64 24%/99%)\n" + table
        )


def run(
    runner: SuiteRunner,
    cap_confidences: tuple[int, ...] = (3, 8, 16, 24, 32, 64),
) -> Fig4Result:
    """Drive standalone PAP and a CAP confidence sweep over the suite."""
    pap_total = PredictorStats()
    cap_totals = {c: PredictorStats() for c in cap_confidences}
    for trace in runner.traces.values():
        pap_total = pap_total.merge(evaluate_pap(trace))
        for c in cap_confidences:
            cap_totals[c] = cap_totals[c].merge(
                evaluate_cap(trace, CapConfig(confidence_threshold=c))
            )
    return Fig4Result(pap=pap_total, cap_by_confidence=cap_totals)
