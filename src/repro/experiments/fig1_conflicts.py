"""Figure 1 — fraction of dynamic loads consuming a value produced by a
store since the prior instance of that load, split committed/in-flight.

Paper headline: a substantial fraction of loads conflict, and ~67% of
the conflicts are with *committed* stores — the ones DLVP neutralises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import SuiteRunner, arithmetic_mean, format_table
from repro.trace import ConflictProfile, load_store_conflicts


@dataclass(frozen=True)
class Fig1Result:
    profiles: dict[str, ConflictProfile]

    def rows(self) -> list[tuple[str, float, float]]:
        """(workload, committed-conflict fraction, in-flight fraction)."""
        return [
            (name, p.fraction_committed, p.fraction_inflight)
            for name, p in sorted(self.profiles.items())
        ]

    @property
    def average_committed_share(self) -> float:
        """Share of conflicts that involve committed stores (paper ~0.67)."""
        shares = [p.committed_share for p in self.profiles.values() if p.conflicts]
        return arithmetic_mean(shares)

    @property
    def average_conflict_fraction(self) -> float:
        return arithmetic_mean(p.fraction_conflicting for p in self.profiles.values())

    def render(self) -> str:
        rows = [
            [name, f"{c:6.1%}", f"{i:6.1%}"]
            for name, c, i in self.rows()
        ]
        table = format_table(["workload", "committed", "in-flight"], rows)
        summary = (
            f"\naverage conflicting-load fraction: {self.average_conflict_fraction:.1%}"
            f"\ncommitted share of conflicts:      {self.average_committed_share:.1%}"
            f"  (paper: ~67%)"
        )
        return "Figure 1 — load-store conflict breakdown\n" + table + summary


def run(runner: SuiteRunner, window: int = 64) -> Fig1Result:
    """Profile every workload's load-store conflicts.

    The default window is the *typical in-flight span* — commit lag
    (~16-40 cycles) times IPC (~0.5-2.5) is a few dozen instructions —
    rather than the 224-entry ROB capacity bound, which only binds when
    the machine is fully backed up.  Pass ``window=224`` for the
    capacity-bound classification.
    """
    profiles = {
        name: load_store_conflicts(trace, window=window)
        for name, trace in runner.traces.items()
    }
    return Fig1Result(profiles=profiles)
