"""Figure 2 — breakdown of dynamic loads by how often their address or
value repeats for that static load.

Paper headlines: values repeat slightly more often than addresses
overall, but 91% of loads have addresses repeating >= 8 times while
only 80% have values repeating >= 64 times — the asymmetry that lets an
address predictor run at a far lower confidence threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import SuiteRunner, arithmetic_mean, format_table
from repro.trace import RepeatabilityProfile, repeatability

THRESHOLDS = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class Fig2Result:
    profiles: dict[str, RepeatabilityProfile]

    def average_fraction(self, kind: str, at_least: int) -> float:
        return arithmetic_mean(
            p.fraction_repeating(kind, at_least) for p in self.profiles.values()
        )

    def series(self, kind: str) -> dict[int, float]:
        """The Figure 2 cumulative series averaged over the suite."""
        return {t: self.average_fraction(kind, t) for t in THRESHOLDS}

    @property
    def address_ge8(self) -> float:
        """Paper: 91%."""
        return self.average_fraction("address", 8)

    @property
    def value_ge64(self) -> float:
        """Paper: 80%."""
        return self.average_fraction("value", 64)

    def render(self) -> str:
        addr = self.series("address")
        value = self.series("value")
        rows = [
            [f">={t}", f"{addr[t]:6.1%}", f"{value[t]:6.1%}"] for t in THRESHOLDS
        ]
        table = format_table(["repeats", "address", "value"], rows)
        summary = (
            f"\naddresses repeating >= 8:  {self.address_ge8:.1%}  (paper: 91%)"
            f"\nvalues repeating >= 64:    {self.value_ge64:.1%}  (paper: 80%)"
        )
        return "Figure 2 — address/value repeatability\n" + table + summary


def run(runner: SuiteRunner) -> Fig2Result:
    """Profile address/value repeatability over the suite."""
    profiles = {
        name: repeatability(trace) for name, trace in runner.traces.items()
    }
    return Fig2Result(profiles=profiles)
