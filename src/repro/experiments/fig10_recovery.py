"""Figure 10 — flush versus oracle-replay recovery.

Paper headlines: oracle replay lifts CAP substantially (2.3% -> 4.2%,
its accuracy is the lowest so it flushes the most), while VTAGE and
DLVP — already above 99% accuracy — gain only ~0.7-0.8%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import (
    SuiteRunner,
    arithmetic_mean,
    format_table,
)
from repro.pipeline import RecoveryMode

_SCHEMES = ("cap", "vtage", "dlvp")


@dataclass(frozen=True)
class Fig10Result:
    flush: dict[str, float]          # scheme -> average speedup
    replay: dict[str, float]

    def delta(self, scheme: str) -> float:
        return self.replay[scheme] - self.flush[scheme]

    def render(self) -> str:
        rows = [
            [
                scheme,
                f"{self.flush[scheme]:+7.2%}",
                f"{self.replay[scheme]:+7.2%}",
                f"{self.delta(scheme):+7.2%}",
            ]
            for scheme in _SCHEMES
        ]
        table = format_table(["scheme", "flush", "oracle replay", "delta"], rows)
        return (
            "Figure 10 — recovery mechanisms "
            "(paper: CAP +2.3->+4.2, VTAGE +0.7 delta, DLVP +0.8 delta)\n" + table
        )


def run(runner: SuiteRunner) -> Fig10Result:
    """Run the three schemes under flush and oracle-replay recovery."""
    flush = {}
    replay = {}
    for scheme in _SCHEMES:
        flush_runs = runner.run_scheme(scheme, recovery=RecoveryMode.FLUSH)
        replay_runs = runner.run_scheme(scheme, recovery=RecoveryMode.ORACLE_REPLAY)
        flush[scheme] = arithmetic_mean(runner.speedups(flush_runs).values())
        replay[scheme] = arithmetic_mean(runner.speedups(replay_runs).values())
    return Fig10Result(flush=flush, replay=replay)
