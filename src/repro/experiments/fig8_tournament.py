"""Figure 8 — combining DLVP and VTAGE as a tournament.

Paper headlines: the combined coverage barely exceeds either predictor
alone (heavy overlap between the loads each captures), and of the final
predictions DLVP supplies more (18.2% of loads) than VTAGE (16.1%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import (
    SuiteRunner,
    arithmetic_mean,
    format_table,
)
from repro.pipeline import SimResult
from repro.pipeline.schemes import TournamentStats


@dataclass(frozen=True)
class Fig8Result:
    dlvp: dict[str, SimResult]
    vtage: dict[str, SimResult]
    tournament: dict[str, SimResult]
    speedups: dict[str, dict[str, float]]

    def average_speedup(self, scheme: str) -> float:
        return arithmetic_mean(self.speedups[scheme].values())

    def average_coverage(self, scheme: str) -> float:
        runs = {"dlvp": self.dlvp, "vtage": self.vtage, "tournament": self.tournament}[scheme]
        return arithmetic_mean(r.value_coverage for r in runs.values())

    def prediction_breakdown(self) -> tuple[float, float]:
        """(DLVP share, VTAGE share) of loads whose final prediction each
        engine made (Figure 8b; paper: 18.2% vs 16.1%)."""
        dlvp_share = []
        vtage_share = []
        for result in self.tournament.values():
            stats = result.scheme_stats
            assert isinstance(stats, dict)
            tstats = stats["tournament"]
            assert isinstance(tstats, TournamentStats)
            dlvp_share.append(tstats.dlvp_share)
            vtage_share.append(tstats.vtage_share)
        return arithmetic_mean(dlvp_share), arithmetic_mean(vtage_share)

    def render(self) -> str:
        rows = [
            [
                scheme,
                f"{self.average_speedup(scheme):+7.2%}",
                f"{self.average_coverage(scheme):6.1%}",
            ]
            for scheme in ("dlvp", "vtage", "tournament")
        ]
        table = format_table(["scheme", "avg speedup", "coverage"], rows)
        d_share, v_share = self.prediction_breakdown()
        summary = (
            f"\nfinal predictions by DLVP:  {d_share:6.1%} of loads (paper 18.2%)"
            f"\nfinal predictions by VTAGE: {v_share:6.1%} of loads (paper 16.1%)"
        )
        return "Figure 8 — DLVP+VTAGE tournament\n" + table + summary


def run(runner: SuiteRunner) -> Fig8Result:
    """Run DLVP, VTAGE and their tournament over the suite."""
    dlvp = runner.run_scheme("dlvp")
    vtage = runner.run_scheme("vtage")
    tournament = runner.run_scheme("tournament")
    speedups = {
        "dlvp": runner.speedups(dlvp),
        "vtage": runner.speedups(vtage),
        "tournament": runner.speedups(tournament),
    }
    return Fig8Result(dlvp=dlvp, vtage=vtage, tournament=tournament, speedups=speedups)
