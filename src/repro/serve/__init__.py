"""repro.serve — a multi-tenant simulation-farm service over the runtime.

A long-running gateway that owns one shared :class:`ResultCache` and a
pool of crash-isolated single-worker leases, accepting sweep-grid
submissions from many tenants over a newline-delimited-JSON TCP
protocol.  What the farm adds over ``Runtime.run_grid``:

* **dedup across tenants** — grid cells are content-hashed jobs; a
  cell hits the shared cache, joins an identical in-flight execution,
  or runs exactly once no matter how many clients ask for it;
* **fairness** — per-tenant bounded queues drained round-robin, so one
  tenant's flood cannot starve another's two-cell grid;
* **live progress** — the server's journal is tapped into an event
  stream multiplexed to submitters and ``watch`` connections;
* **graceful drain** — SIGINT/SIGTERM (or the ``shutdown`` op) stops
  intake, finishes or interrupts in-flight work within a grace period,
  and notifies every connected watcher with a terminal event;
* **crash survivability** — tickets are durable records under the
  cache root; a disconnected client (or a SIGKILL'd gateway restarted
  on the same root) re-attaches with ``resume``, settled cells replay
  from journal/cache and the rest re-execute exactly once.  A lease
  watchdog reaps attempts that outlive their bound, and global
  admission control sheds load with ``retry_after`` hints instead of
  queueing without bound.

Layering: :mod:`repro.serve.protocol` (wire format + validation),
:mod:`repro.serve.tickets` (durable ticket records),
:mod:`repro.serve.scheduler` (dedup/fairness/leases/recovery),
:mod:`repro.serve.server` (asyncio gateway),
:mod:`repro.serve.client` (blocking client + reconnect + fallback).
"""

from repro.serve.client import (
    CellResult,
    ConnectionLost,
    ServeClient,
    ServeError,
    ServerOverloadedError,
    ServerShutdown,
    ServeUnavailable,
    SweepResponse,
    UnknownTicketError,
    submit_or_local,
)
from repro.serve.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    GridRequest,
    ProtocolError,
    addr_file_path,
    clear_addr_file,
    read_addr_file,
    read_addr_record,
)
from repro.serve.scheduler import (
    Scheduler,
    ServerClosing,
    ServerOverloaded,
    TenantQueueFull,
    Ticket,
    UnknownTicket,
)
from repro.serve.server import ServerHandle, SweepServer
from repro.serve.tickets import TicketRecordError, TicketStore

__all__ = [
    "CellResult",
    "ConnectionLost",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "GridRequest",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Scheduler",
    "ServeClient",
    "ServeError",
    "ServeUnavailable",
    "ServerClosing",
    "ServerHandle",
    "ServerOverloaded",
    "ServerOverloadedError",
    "ServerShutdown",
    "SweepResponse",
    "SweepServer",
    "TenantQueueFull",
    "Ticket",
    "TicketRecordError",
    "TicketStore",
    "UnknownTicket",
    "UnknownTicketError",
    "addr_file_path",
    "clear_addr_file",
    "read_addr_file",
    "read_addr_record",
    "submit_or_local",
]
