"""repro.serve — a multi-tenant simulation-farm service over the runtime.

A long-running gateway that owns one shared :class:`ResultCache` and a
pool of crash-isolated single-worker leases, accepting sweep-grid
submissions from many tenants over a newline-delimited-JSON TCP
protocol.  What the farm adds over ``Runtime.run_grid``:

* **dedup across tenants** — grid cells are content-hashed jobs; a
  cell hits the shared cache, joins an identical in-flight execution,
  or runs exactly once no matter how many clients ask for it;
* **fairness** — per-tenant bounded queues drained round-robin, so one
  tenant's flood cannot starve another's two-cell grid;
* **live progress** — the server's journal is tapped into an event
  stream multiplexed to submitters and ``watch`` connections;
* **graceful drain** — SIGINT/SIGTERM (or the ``shutdown`` op) stops
  intake, finishes or interrupts in-flight work within a grace period,
  and notifies every connected watcher with a terminal event.

Layering: :mod:`repro.serve.protocol` (wire format + validation),
:mod:`repro.serve.scheduler` (dedup/fairness/leases),
:mod:`repro.serve.server` (asyncio gateway),
:mod:`repro.serve.client` (blocking client + in-process fallback).
"""

from repro.serve.client import (
    CellResult,
    ServeClient,
    ServeError,
    ServerShutdown,
    ServeUnavailable,
    SweepResponse,
    submit_or_local,
)
from repro.serve.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    GridRequest,
    ProtocolError,
    addr_file_path,
    read_addr_file,
)
from repro.serve.scheduler import Scheduler, ServerClosing, TenantQueueFull, Ticket
from repro.serve.server import ServerHandle, SweepServer

__all__ = [
    "CellResult",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "GridRequest",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Scheduler",
    "ServeClient",
    "ServeError",
    "ServeUnavailable",
    "ServerClosing",
    "ServerHandle",
    "ServerShutdown",
    "SweepResponse",
    "SweepServer",
    "TenantQueueFull",
    "Ticket",
    "addr_file_path",
    "read_addr_file",
    "submit_or_local",
]
