"""Durable ticket records — the farm's crash-survivable submission state.

Every admitted submission is persisted as one small JSON file under
``<cache-root>/tickets/<ticket-id>.json`` holding enough to reconstruct
the grid after *any* participant dies: the tenant, the full cell list
as :meth:`~repro.runtime.Job.identity` dicts (including each job's
content key and the code salt it was hashed with), and a ``finished``
flag with the final summary once the grid settles.

The record is deliberately **not** updated per settlement — the farm
journal already holds every ``job_finished`` line (with the result
payload for ok cells), so the settled-set is derived from the journal
at resume time instead of being double-written on the hot path.  A
ticket file is written exactly twice: once at admission, once at
completion, each via write-to-temp + ``os.replace`` so readers never
see a torn record from a *clean* writer.  A record torn by a crash
mid-``replace`` (or corrupted on disk) fails validation and is
reported, never trusted.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.runtime import Job, job_from_identity

TICKETS_DIRNAME = "tickets"


class TicketRecordError(ValueError):
    """A ticket record exists but cannot be trusted (torn/corrupt)."""


class TicketStore:
    """Atomic load/save of ticket records under one directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path(self, ticket_id: str) -> Path:
        return self.root / f"{ticket_id}.json"

    def save(
        self,
        ticket_id: str,
        *,
        tenant: str,
        watch: bool,
        cells: list[dict],
        finished: bool = False,
        summary: dict | None = None,
        created: float | None = None,
    ) -> Path:
        """Persist one record atomically (temp file + ``os.replace``)."""
        record = {
            "ticket": ticket_id,
            "tenant": tenant,
            "watch": watch,
            "created": created if created is not None else time.time(),
            "cells": cells,
            "finished": finished,
            "summary": summary,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(ticket_id)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(record) + "\n")
        os.replace(tmp, path)
        return path

    def load(self, ticket_id: str) -> dict | None:
        """One validated record, None when absent; raises
        :class:`TicketRecordError` for an unreadable/torn record."""
        path = self.path(ticket_id)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise TicketRecordError(f"unreadable ticket record {path}: {exc}") \
                from None
        return self._validate(path, text)

    def load_all(self) -> tuple[list[dict], list[Path]]:
        """Every record on disk: ``(valid records, corrupt paths)``."""
        records: list[dict] = []
        corrupt: list[Path] = []
        if not self.root.is_dir():
            return records, corrupt
        for path in sorted(self.root.glob("*.json")):
            try:
                records.append(self._validate(path, path.read_text()))
            except (OSError, TicketRecordError):
                corrupt.append(path)
        return records, corrupt

    @staticmethod
    def _validate(path: Path, text: str) -> dict:
        try:
            record = json.loads(text)
        except ValueError as exc:
            raise TicketRecordError(
                f"torn ticket record {path}: {exc}"
            ) from None
        if (
            not isinstance(record, dict)
            or not isinstance(record.get("ticket"), str)
            or not isinstance(record.get("tenant"), str)
            or not isinstance(record.get("cells"), list)
            or not all(isinstance(c, dict) for c in record["cells"])
        ):
            raise TicketRecordError(f"invalid ticket record {path}")
        return record

    @staticmethod
    def jobs(record: dict) -> dict[str, Job]:
        """key -> reconstructed :class:`Job` for every cell in a record.

        Raises :class:`TicketRecordError` when any cell's identity is
        incomplete or fails its key cross-check — a record that cannot
        name its cells exactly must not be resumed approximately.
        """
        jobs: dict[str, Job] = {}
        for cell in record["cells"]:
            try:
                job = job_from_identity(cell)
            except ValueError as exc:
                raise TicketRecordError(
                    f"ticket {record.get('ticket')!r}: {exc}"
                ) from None
            jobs[job.key] = job
        return jobs
