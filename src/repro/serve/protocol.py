"""The serve wire protocol: newline-delimited JSON over TCP.

One connection carries **one request and its response stream**: the
client sends a single JSON object on one line, the server answers with
one or more JSON objects, one per line, and closes (or the client hangs
up).  Keeping connections single-shot makes message ordering trivial —
the acknowledgement always precedes the stream — and lets a dumb client
(``nc``, a shell script) speak the protocol.

Requests (``op`` selects the verb)::

    {"op": "ping"}
    {"op": "submit", "tenant": "alice", "schemes": [...],
     "workloads": [...], "n_instructions": 8000, "recovery": "flush",
     "watch": true}
    {"op": "resume", "ticket": "ab12cd34", "watch": true}
    {"op": "watch"}                       # stream every journal event
    {"op": "status"}
    {"op": "cache", "action": "gc"|"verify", "max_size_mb": ...,
     "max_age_days": ...}
    {"op": "shutdown", "grace": 5.0}

Responses (``type`` tags each line)::

    {"type": "pong", "version": 2, "server": <run_id>}
    {"type": "submitted", "ticket": ..., "cells": N, "executing": n,
     "cached": n, "shared": n}
    {"type": "resumed", "ticket": ..., "cells": N, "settled": n,
     "pending": n, "revived": bool}
    {"type": "event", "event": {...journal event...}}     # watch only
    {"type": "result", "workload": ..., "scheme": ..., "key": ...,
     "status": ..., "cache_hit": ..., "shared": ..., "resumed": ...,
     "attempts": ..., "error": ..., "result": {SimResult payload,
     ok only}}
    {"type": "done", "ticket": ..., "summary": {...}}
    {"type": "status", ...}  /  {"type": "cache_report", ...}
    {"type": "shutting_down"}  /  {"type": "server_shutdown", ...}
    {"type": "error", "error": "...", "code": ..., "retry_after": ...}

Every ``submit`` settles each cell with exactly one ``result`` line and
ends with exactly one ``done`` (or terminal ``server_shutdown``) line —
that contract is what the client blocks on.  ``resume`` re-enters the
same stream by ticket id: settled cells are replayed, unsettled ones
stream as they finish.  Error lines may carry a machine-readable
``code`` (``"overloaded"``, ``"unknown_ticket"``, ``"ticket_corrupt"``)
and, for overload shedding, a ``retry_after`` hint in seconds.

Version history: v1 had no ``resume`` op, no error codes, and no
``resumed`` field on result lines; a v2 client talking to a v1 server
sees ``unknown op 'resume'`` and should treat the ticket as
unresumable.

Discovery: a running server records ``host port pid`` as JSON in
``<cache-dir>/serve.addr``; clients without an explicit address read it
from the same cache root they would simulate against, which is also
what makes the "no server reachable -> run in-process" fallback cheap
to decide.  The advertisement is trust-but-verify: readers drop (and
delete) a record whose pid is no longer alive, writers only withdraw
their *own* record (pid-guarded), and clients still probe before
relying on it — a crashed server must degrade discovery into the
in-process fallback, never into a hang.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.pipeline import RecoveryMode
from repro.runtime import Job, default_cache_dir, make_job, scheme_ids
from repro.workloads import SUITE

PROTOCOL_VERSION = 2
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8790
ADDR_FILE = "serve.addr"
# Requests are small; this bounds the server-side readline buffer.
MAX_REQUEST_BYTES = 1 << 20
MAX_GRID_CELLS = 4096
MAX_INSTRUCTIONS = 10_000_000


class ProtocolError(ValueError):
    """A malformed or invalid protocol message."""


def encode_message(message: dict) -> bytes:
    """One protocol message as a single newline-terminated JSON line."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: str | bytes) -> dict:
    """Parse one line into a message dict or raise :class:`ProtocolError`."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"not JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def error_message(error: str, code: str | None = None,
                  **extra: object) -> dict:
    """The standard error response line.

    ``code`` is the optional machine-readable discriminator clients
    dispatch on (``"overloaded"``, ``"unknown_ticket"``, ...); ``extra``
    carries code-specific fields such as ``retry_after``.
    """
    message: dict = {"type": "error", "error": error}
    if code is not None:
        message["code"] = code
    message.update(extra)
    return message


@dataclass(frozen=True)
class GridRequest:
    """A validated sweep-grid submission.

    Validation happens at the protocol edge — scheme ids and workload
    names are checked against the registries, sizes are bounded — so
    the scheduler behind it only ever sees well-formed grids.
    """

    tenant: str
    schemes: tuple[str, ...]
    workloads: tuple[str, ...]
    n_instructions: int
    recovery: str
    watch: bool = True

    @classmethod
    def from_message(cls, message: dict) -> "GridRequest":
        """Validate a ``submit`` request; raises :class:`ProtocolError`."""
        tenant = message.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant or len(tenant) > 128:
            raise ProtocolError("tenant must be a short non-empty string")
        schemes = message.get("schemes")
        workloads = message.get("workloads")
        if not isinstance(schemes, list) or not schemes:
            raise ProtocolError("schemes must be a non-empty list")
        if not isinstance(workloads, list) or not workloads:
            raise ProtocolError("workloads must be a non-empty list")
        known_schemes = scheme_ids()
        unknown = [s for s in schemes if s not in known_schemes]
        if unknown:
            raise ProtocolError(f"unknown scheme(s) {unknown}")
        # validate against the full registry (adversarial stress
        # workloads included), not just the paper's default suite
        unknown = [w for w in workloads if w not in SUITE]
        if unknown:
            raise ProtocolError(f"unknown workload(s) {unknown}")
        if len(schemes) * len(workloads) > MAX_GRID_CELLS:
            raise ProtocolError(
                f"grid exceeds {MAX_GRID_CELLS} cells"
            )
        n_instructions = message.get("n_instructions", 8_000)
        if (
            not isinstance(n_instructions, int)
            or isinstance(n_instructions, bool)
            or not 1 <= n_instructions <= MAX_INSTRUCTIONS
        ):
            raise ProtocolError(
                f"n_instructions must be an int in [1, {MAX_INSTRUCTIONS}]"
            )
        recovery = message.get("recovery", RecoveryMode.FLUSH.value)
        try:
            recovery = RecoveryMode(recovery).value
        except ValueError:
            raise ProtocolError(f"unknown recovery mode {recovery!r}") from None
        return cls(
            tenant=tenant,
            schemes=tuple(dict.fromkeys(schemes)),
            workloads=tuple(dict.fromkeys(workloads)),
            n_instructions=n_instructions,
            recovery=recovery,
            watch=bool(message.get("watch", True)),
        )

    def to_message(self) -> dict:
        """This request as a ``submit`` wire message."""
        return {
            "op": "submit",
            "tenant": self.tenant,
            "schemes": list(self.schemes),
            "workloads": list(self.workloads),
            "n_instructions": self.n_instructions,
            "recovery": self.recovery,
            "watch": self.watch,
        }

    def jobs(self, timeout: float | None = None) -> list[Job]:
        """Expand the grid into content-hashed runtime jobs."""
        return [
            make_job(
                workload, self.n_instructions, scheme,
                recovery=RecoveryMode(self.recovery), timeout=timeout,
            )
            for scheme in self.schemes
            for workload in self.workloads
        ]


# -- server discovery ----------------------------------------------------


def addr_file_path(cache_dir: str | Path | None = None) -> Path:
    """Where a server advertising on ``cache_dir`` records its address."""
    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    return root / ADDR_FILE


def write_addr_file(
    cache_dir: str | Path | None, host: str, port: int
) -> Path:
    """Advertise a listening server for clients sharing this cache."""
    path = addr_file_path(cache_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps({"host": host, "port": port, "pid": os.getpid()}) + "\n"
    )
    return path


def read_addr_record(
    cache_dir: str | Path | None = None,
) -> dict | None:
    """The raw advertisement record, or None when absent/unreadable."""
    path = addr_file_path(cache_dir)
    try:
        payload = json.loads(path.read_text())
        if not isinstance(payload, dict):
            return None
        return payload
    except (OSError, ValueError):
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (OSError, PermissionError):
        # EPERM et al.: the pid exists but isn't ours — treat as alive
        return True
    return True


def read_addr_file(
    cache_dir: str | Path | None = None,
) -> tuple[str, int] | None:
    """The advertised (host, port), or None when absent/unreadable.

    Staleness guard: an advertisement whose recorded pid is provably
    dead is a crashed server's leftover — it is deleted on sight and
    ``None`` is returned, so discovery degrades into the in-process
    fallback instead of pointing clients at a corpse (or worse, at an
    unrelated process that later reused the port).
    """
    payload = read_addr_record(cache_dir)
    if payload is None:
        return None
    try:
        host, port = str(payload["host"]), int(payload["port"])
    except (KeyError, TypeError, ValueError):
        return None
    pid = payload.get("pid")
    if isinstance(pid, int) and not _pid_alive(pid):
        clear_addr_file(cache_dir, pid=pid)
        return None
    return host, port


def clear_addr_file(
    cache_dir: str | Path | None = None, pid: int | None = None
) -> None:
    """Withdraw the advertisement (clean shutdown).

    With ``pid`` given, the file is only removed when its record names
    that pid — so a slow old server shutting down *after* a replacement
    started cannot withdraw the new server's advertisement.
    """
    if pid is not None:
        record = read_addr_record(cache_dir)
        if record is not None and record.get("pid") not in (None, pid):
            return
    try:
        addr_file_path(cache_dir).unlink()
    except OSError:
        pass
