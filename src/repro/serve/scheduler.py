"""The farm scheduler: dedup, fairness, and worker-lease dispatch.

One :class:`Scheduler` sits between the gateway's connections and the
runtime's executors.  Every submitted grid is expanded into
content-hashed :class:`~repro.runtime.Job` cells and each cell takes
exactly one of three paths:

* **cache hit** — the shared :class:`~repro.runtime.ResultCache`
  already holds the result; it is returned immediately (and the entry's
  LRU clock refreshed) without touching a worker.
* **in-flight join** — another tenant's identical cell is already
  queued or executing; this ticket *subscribes* to that execution
  instead of scheduling a second one.  Two users asking for the same
  (workload, scheme, config) cell pay for one simulation.
* **miss** — the cell is queued on its tenant's queue and eventually
  dispatched to a :class:`~repro.runtime.JobLease` worker slot.

Fairness is round-robin **across tenants, not across jobs**: each
dispatch takes the head of the next non-empty tenant queue, so a tenant
flooding thousands of cells delays its own backlog, not a neighbour's
two-cell grid.  Queues are bounded per tenant (`max_pending_per_tenant`)
and a submission that would overflow is rejected atomically — partial
grids never enter the farm.

Progress multiplexing reuses the journal: every event the scheduler
journals is tapped into an :class:`~repro.observe.EventStream` (for
``watch`` connections) and routed to the tickets subscribed to that
job key (for ``submit --watch`` progress), so the wire stream and the
on-disk journal can never disagree.

Shutdown reuses the PR 2 interruption machinery: queued-but-unstarted
cells settle as ``"interrupted"`` (:data:`~repro.runtime.executor.
INTERRUPTED_ERROR`) immediately, running cells get a grace period and
are then cancelled via :meth:`JobLease.cancel`, and every subscribed
client still receives a terminal line for every cell it asked about.
"""

from __future__ import annotations

import asyncio
import time
import uuid
from collections import Counter, deque
from dataclasses import dataclass, field

from repro.observe import EventStream, Subscription
from repro.runtime import (
    INTERRUPTED_ERROR,
    Job,
    JobLease,
    JobOutcome,
    ResultCache,
    RunJournal,
)
from repro.serve.protocol import GridRequest

DEFAULT_MAX_PENDING = 512


class TenantQueueFull(RuntimeError):
    """A submission would overflow its tenant's bounded queue."""


class ServerClosing(RuntimeError):
    """The scheduler is draining and accepts no new submissions."""


@dataclass
class Ticket:
    """One client submission's view of the farm.

    A ticket owns the connection's :class:`Subscription` mailbox; the
    scheduler posts ``result`` lines (must-deliver), optional progress
    ``event`` lines (droppable), and finally one ``done`` line before
    closing the mailbox.
    """

    id: str
    tenant: str
    watch: bool
    sub: Subscription
    jobs: dict[str, Job]                     # key -> unique cell
    pending: set[str] = field(default_factory=set)
    shared_keys: set[str] = field(default_factory=set)
    counters: Counter = field(default_factory=Counter)
    created: float = field(default_factory=time.time)

    @property
    def done(self) -> bool:
        return not self.pending

    def summary(self) -> dict:
        """The ``done`` line's accounting for this submission."""
        return {
            "cells": len(self.jobs),
            "executed": self.counters["executed"],
            "cached": self.counters["cached"],
            "shared": self.counters["shared"],
            "failed": self.counters["failed"],
            "interrupted": self.counters["interrupted"],
        }


@dataclass
class _InFlight:
    """One queued-or-executing unique cell and its subscribers."""

    job: Job
    tenant: str                              # who queued it first
    tickets: list[Ticket]
    running: bool = False
    lease: JobLease | None = None


class Scheduler:
    """Expand, dedup, queue fairly, dispatch, and settle sweep cells.

    All methods run on the owning event loop's thread; executor lease
    work happens in worker threads via ``asyncio.to_thread`` with
    events hopped back onto the loop.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        cache: ResultCache | None,
        journal: RunJournal,
        stream: EventStream,
        timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.0,
        timeout_factor: float | None = None,
        fault_spec: str | None = None,
        max_pending_per_tenant: int = DEFAULT_MAX_PENDING,
        max_cache_mb: float | None = None,
    ) -> None:
        self.cache = cache
        self.journal = journal
        self.stream = stream
        self.timeout = timeout
        self.fault_spec = fault_spec
        self.max_pending_per_tenant = max(1, max_pending_per_tenant)
        self.max_cache_mb = max_cache_mb
        self.leases = [
            JobLease(retries=retries, backoff=backoff,
                     timeout_factor=timeout_factor)
            for _ in range(max(1, workers))
        ]
        self.counters: Counter = Counter()
        self.closing = False
        self._inflight: dict[str, _InFlight] = {}
        self._queues: dict[str, deque[str]] = {}
        self._rr: deque[str] = deque()       # tenant rotation order
        self._work: asyncio.Condition = asyncio.Condition()
        self._tasks: list[asyncio.Task] = []
        self._busy = 0
        # journal tap -> live stream: one event pathway, two sinks
        self.journal.tap = self._on_journal_event

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Spawn one dispatch task per worker lease."""
        for lease in self.leases:
            self._tasks.append(asyncio.create_task(self._worker(lease)))

    async def shutdown(self, grace: float = 10.0) -> dict:
        """Drain the farm: PR 2 interruption semantics, farm-wide.

        Queued cells settle ``"interrupted"`` immediately; running
        cells get ``grace`` seconds, then their leases are cancelled
        (worker process terminated) and they settle ``"interrupted"``
        too.  Returns ``{"completed", "interrupted"}`` counts.
        """
        if not self.closing:
            self.closing = True
            async with self._work:
                self._work.notify_all()
            queued = [key for q in self._queues.values() for key in q]
            for q in self._queues.values():
                q.clear()
            for key in queued:
                entry = self._inflight.get(key)
                if entry is not None:
                    self._settle(key, JobOutcome(
                        entry.job, "interrupted", error=INTERRUPTED_ERROR,
                        attempts=0,
                    ))
        if self._tasks:
            _, still_running = await asyncio.wait(self._tasks, timeout=grace)
            if still_running:
                for entry in list(self._inflight.values()):
                    if entry.lease is not None:
                        entry.lease.cancel()
                await asyncio.wait(self._tasks, timeout=10.0)
            self._tasks = []
        for lease in self.leases:
            lease.close()
        return {
            "completed": self.counters["ok"],
            "interrupted": self.counters["interrupted"],
        }

    # -- submission ------------------------------------------------------

    async def submit(self, request: GridRequest, sub: Subscription) -> Ticket:
        """Admit one grid: dedup against cache and in-flight, queue misses.

        Raises :class:`ServerClosing` while draining and
        :class:`TenantQueueFull` when the tenant's bounded queue cannot
        take the grid's cache-missing cells (nothing is admitted in
        that case — admission is all-or-nothing).
        """
        if self.closing:
            raise ServerClosing("server is shutting down")
        unique = {job.key: job for job in request.jobs(timeout=self.timeout)}
        ticket = Ticket(
            id=uuid.uuid4().hex[:8], tenant=request.tenant,
            watch=request.watch, sub=sub, jobs=unique,
        )
        # Classify without mutating shared state so the queue bound can
        # reject the whole submission atomically.  No awaits here: the
        # classification cannot go stale under the single-threaded loop.
        shared: list[str] = []
        hits: list[tuple[str, object]] = []
        misses: list[str] = []
        for key, job in unique.items():
            if key in self._inflight:
                shared.append(key)
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                hits.append((key, cached))
            else:
                misses.append(key)
        queue = self._queues.setdefault(request.tenant, deque())
        if len(queue) + len(misses) > self.max_pending_per_tenant:
            self.journal.event(
                "submit_rejected", tenant=request.tenant, ticket=ticket.id,
                queued=len(queue), cells=len(misses),
                bound=self.max_pending_per_tenant,
            )
            raise TenantQueueFull(
                f"tenant {request.tenant!r} queue is full "
                f"({len(queue)} queued, bound {self.max_pending_per_tenant})"
            )
        self.journal.event(
            "grid_submitted", tenant=request.tenant, ticket=ticket.id,
            cells=len(unique), executing=len(misses), cached=len(hits),
            shared=len(shared),
        )
        for key, job in unique.items():
            self.journal.event("job_submitted", tenant=request.tenant,
                               ticket=ticket.id, **job.identity())
        for key in shared:
            entry = self._inflight[key]
            entry.tickets.append(ticket)
            ticket.pending.add(key)
            ticket.shared_keys.add(key)
            ticket.counters["shared"] += 1
            self.counters["shared"] += 1
            self.journal.event(
                "job_shared", key=key, workload=unique[key].workload,
                scheme=unique[key].scheme_id, tenant=request.tenant,
                first_tenant=entry.tenant,
            )
        for key, result in hits:
            job = unique[key]
            ticket.counters["cached"] += 1
            self.counters["cache_hits"] += 1
            self.journal.event("cache_hit", key=key, workload=job.workload,
                               scheme=job.scheme_id, tenant=request.tenant)
            sub.put(self._result_message(
                JobOutcome(job, "ok", result=result, cache_hit=True),
                shared=False,
            ), droppable=False)
        for key in misses:
            job = unique[key]
            self.journal.event("cache_miss", key=key, workload=job.workload,
                               scheme=job.scheme_id, tenant=request.tenant)
            self._inflight[key] = _InFlight(
                job=job, tenant=request.tenant, tickets=[ticket],
            )
            ticket.pending.add(key)
            queue.append(key)
        if request.tenant not in self._rr:
            self._rr.append(request.tenant)
        self.counters["submitted"] += len(unique)
        if ticket.done:
            self._finish_ticket(ticket)
        if misses:
            async with self._work:
                self._work.notify_all()
        return ticket

    # -- dispatch --------------------------------------------------------

    async def _worker(self, lease: JobLease) -> None:
        """One worker slot: pull fairly, execute on the lease, settle."""
        loop = asyncio.get_running_loop()
        while True:
            key = await self._next_key()
            if key is None:
                return
            entry = self._inflight.get(key)
            if entry is None:          # settled while queued (shutdown race)
                continue
            entry.running = True
            entry.lease = lease
            self._busy += 1

            def on_event(kind: str, job: Job, fields: dict,
                         _key: str = key) -> None:
                # lease thread -> loop thread; journal+stream stay
                # single-threaded
                loop.call_soon_threadsafe(self._job_event, kind, _key, fields)

            try:
                outcome = await asyncio.to_thread(
                    lease.run_one, entry.job, self._cache_dir(), on_event,
                    self.fault_spec,
                )
            finally:
                self._busy -= 1
            self._settle(key, outcome)
            if outcome.ok and self.max_cache_mb is not None:
                await self._enforce_cache_bound()

    async def _next_key(self) -> str | None:
        """The next job key, round-robin across tenants; None to exit."""
        async with self._work:
            while True:
                for _ in range(len(self._rr)):
                    tenant = self._rr[0]
                    self._rr.rotate(-1)
                    queue = self._queues.get(tenant)
                    if queue:
                        return queue.popleft()
                if self.closing:
                    return None
                await self._work.wait()

    def _cache_dir(self) -> str | None:
        return str(self.cache.root) if self.cache is not None else None

    def _job_event(self, kind: str, key: str, fields: dict) -> None:
        entry = self._inflight.get(key)
        if entry is None:
            return
        self.journal.event(kind, key=key, workload=entry.job.workload,
                           scheme=entry.job.scheme_id, **fields)

    # -- settlement ------------------------------------------------------

    def _settle(self, key: str, outcome: JobOutcome) -> None:
        """Resolve one unique cell for every ticket subscribed to it."""
        entry = self._inflight.pop(key, None)
        if entry is None:
            return
        job = entry.job
        fields = dict(
            key=key, workload=job.workload, scheme=job.scheme_id,
            status=outcome.status, duration=round(outcome.duration, 6),
            attempts=outcome.attempts, error=outcome.error,
            tenants=sorted({t.tenant for t in entry.tickets}),
        )
        if outcome.ok:
            assert outcome.result is not None
            # journaled payload keeps the farm journal resume-compatible
            fields["result"] = outcome.result.to_dict()
            if outcome.attempts > 0 and self.cache is not None:
                self.cache.put(key, outcome.result, job.identity())
        self.journal.event("job_finished", **fields)
        self.counters["executed"] += 1 if outcome.attempts else 0
        self.counters[outcome.status if not outcome.ok else "ok"] += 1
        for ticket in entry.tickets:
            shared = key in ticket.shared_keys
            if outcome.attempts and not shared:
                ticket.counters["executed"] += 1
            if not outcome.ok:
                ticket.counters[
                    "interrupted" if outcome.status == "interrupted"
                    else "failed"
                ] += 1
            ticket.sub.put(self._result_message(outcome, shared=shared),
                           droppable=False)
            ticket.pending.discard(key)
            if ticket.done:
                self._finish_ticket(ticket)

    def _finish_ticket(self, ticket: Ticket) -> None:
        self.journal.event("grid_finished", tenant=ticket.tenant,
                           ticket=ticket.id, **ticket.summary())
        ticket.sub.put(
            {"type": "done", "ticket": ticket.id,
             "summary": ticket.summary()},
            droppable=False,
        )
        ticket.sub.close()

    @staticmethod
    def _result_message(outcome: JobOutcome, shared: bool) -> dict:
        job = outcome.job
        message = {
            "type": "result",
            "workload": job.workload,
            "scheme": job.scheme_id,
            "key": job.key,
            "status": outcome.status,
            "cache_hit": outcome.cache_hit,
            "shared": shared,
            "attempts": outcome.attempts,
            "duration": round(outcome.duration, 6),
            "error": outcome.error,
        }
        if outcome.ok:
            assert outcome.result is not None
            message["result"] = outcome.result.to_dict()
        return message

    # -- event multiplexing ---------------------------------------------

    def _on_journal_event(self, entry: dict) -> None:
        """Journal tap: broadcast + route to the key's watching tickets."""
        self.stream.publish(entry)
        key = entry.get("key")
        if not key:
            return
        inflight = self._inflight.get(key)
        if inflight is None:
            return
        for ticket in inflight.tickets:
            if ticket.watch:
                ticket.sub.put({"type": "event", "event": entry},
                               droppable=True)

    # -- cache lifecycle -------------------------------------------------

    async def _enforce_cache_bound(self) -> None:
        """Size-bound the shared store (LRU) after a fresh result lands."""
        if self.cache is None or self.max_cache_mb is None:
            return
        report = await asyncio.to_thread(
            self.cache.gc, None, self.max_cache_mb
        )
        if report["removed"]:
            self.journal.event("cache_gc", **report)

    # -- introspection ---------------------------------------------------

    def status(self) -> dict:
        """Queue depths, worker occupancy and lifetime counters."""
        return {
            "workers": len(self.leases),
            "busy": self._busy,
            "inflight": len(self._inflight),
            "queued": sum(len(q) for q in self._queues.values()),
            "tenants": {
                tenant: len(queue)
                for tenant, queue in self._queues.items() if queue
            },
            "counters": dict(self.counters),
            "closing": self.closing,
        }
