"""The farm scheduler: dedup, fairness, worker-lease dispatch, recovery.

One :class:`Scheduler` sits between the gateway's connections and the
runtime's executors.  Every submitted grid is expanded into
content-hashed :class:`~repro.runtime.Job` cells and each cell takes
exactly one of three paths:

* **cache hit** — the shared :class:`~repro.runtime.ResultCache`
  already holds the result; it is returned immediately (and the entry's
  LRU clock refreshed) without touching a worker.
* **in-flight join** — another tenant's identical cell is already
  queued or executing; this ticket *subscribes* to that execution
  instead of scheduling a second one.  Two users asking for the same
  (workload, scheme, config) cell pay for one simulation.
* **miss** — the cell is queued on its tenant's queue and eventually
  dispatched to a :class:`~repro.runtime.JobLease` worker slot.

Fairness is round-robin **across tenants, not across jobs**: each
dispatch takes the head of the next non-empty tenant queue, so a tenant
flooding thousands of cells delays its own backlog, not a neighbour's
two-cell grid.  Queues are bounded per tenant (`max_pending_per_tenant`)
and — on top of that — globally (`max_pending_total` cells and
`max_pending_cost` summed instructions): a submission that would
overflow its tenant bound raises :class:`TenantQueueFull`, one that
would overload the farm as a whole raises :class:`ServerOverloaded`
carrying a ``retry_after`` hint derived from the observed per-cell
settle rate.  Admission is all-or-nothing — partial grids never enter
the farm.

Crash survivability (none of which costs the settle hot path a write):

* every admitted ticket is persisted once to a :class:`~repro.serve.
  tickets.TicketStore` record (and once more at completion);
* the settled-set lives in the journal — every ``job_finished`` line
  embeds the result payload for ok cells — so :meth:`resume` can
  re-attach a disconnected client to a live ticket (replaying what
  already settled) or replay a finished ticket wholesale;
* :meth:`recover` rebuilds the queues from unfinished ticket records on
  gateway startup, settling journal/cache-covered cells immediately and
  re-queueing the rest, so a SIGKILL'd gateway restarted on the same
  cache root finishes the grid;
* a lease watchdog reaps worker slots silent past ``lease_timeout`` —
  the reaped attempt flows down the ordinary retry/backoff path, so a
  chaos-injected hang costs its cell bounded retries, never the slot.

Progress multiplexing reuses the journal: every event the scheduler
journals is tapped into an :class:`~repro.observe.EventStream` (for
``watch`` connections) and routed to the tickets subscribed to that
job key (for ``submit --watch`` progress), so the wire stream and the
on-disk journal can never disagree.

Shutdown reuses the PR 2 interruption machinery: queued-but-unstarted
cells settle as ``"interrupted"`` (:data:`~repro.runtime.executor.
INTERRUPTED_ERROR`) immediately, running cells get a grace period and
are then cancelled via :meth:`JobLease.cancel`, and every subscribed
client still receives a terminal line for every cell it asked about.
Client disconnect, by contrast, cancels **nothing** — the grid keeps
executing into the shared cache and the ticket stays resumable.
"""

from __future__ import annotations

import asyncio
import time
import uuid
from collections import Counter, deque
from dataclasses import dataclass, field

from repro.observe import EventStream, Subscription
from repro.runtime import (
    INTERRUPTED_ERROR,
    Job,
    JobLease,
    JobOutcome,
    ResultCache,
    RunJournal,
    read_journal,
    trace_cache_key,
)
from repro.serve.protocol import GridRequest
from repro.serve.tickets import TicketRecordError, TicketStore

DEFAULT_MAX_PENDING = 512
# retry_after hints are clamped to this window: short enough that a
# well-behaved client retries within one farm "breath", long enough
# that a thundering herd cannot re-flood a still-loaded queue.
MIN_RETRY_AFTER = 1.0
MAX_RETRY_AFTER = 60.0


class TenantQueueFull(RuntimeError):
    """A submission would overflow its tenant's bounded queue."""


class ServerClosing(RuntimeError):
    """The scheduler is draining and accepts no new submissions."""


class ServerOverloaded(RuntimeError):
    """The farm-wide admission bound rejected a submission.

    ``retry_after`` is the server's estimate (seconds) of when the
    backlog will have drained enough to admit a grid of this size.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class UnknownTicket(KeyError):
    """``resume`` named a ticket with no live state and no record."""


@dataclass
class Ticket:
    """One client submission's view of the farm.

    A ticket owns the connection's :class:`Subscription` mailbox; the
    scheduler posts ``result`` lines (must-deliver), optional progress
    ``event`` lines (droppable), and finally one ``done`` line before
    closing the mailbox.  ``settled`` keeps every result line already
    delivered so a reconnecting client (:meth:`Scheduler.resume`) can
    be replayed the part of the stream it missed; the mailbox itself is
    swappable — client disconnect orphans the mailbox, never the grid.
    """

    id: str
    tenant: str
    watch: bool
    sub: Subscription
    jobs: dict[str, Job]                     # key -> unique cell
    pending: set[str] = field(default_factory=set)
    shared_keys: set[str] = field(default_factory=set)
    counters: Counter = field(default_factory=Counter)
    settled: list[dict] = field(default_factory=list)
    created: float = field(default_factory=time.time)

    @property
    def done(self) -> bool:
        return not self.pending

    def summary(self) -> dict:
        """The ``done`` line's accounting for this submission."""
        return {
            "cells": len(self.jobs),
            "executed": self.counters["executed"],
            "cached": self.counters["cached"],
            "shared": self.counters["shared"],
            "failed": self.counters["failed"],
            "interrupted": self.counters["interrupted"],
        }

    def deliver(self, message: dict) -> None:
        """One must-deliver result line: record for replay, then post."""
        self.settled.append(message)
        self.sub.put(message, droppable=False)


@dataclass
class _InFlight:
    """One queued-or-executing unique cell and its subscribers."""

    job: Job
    tenant: str                              # who queued it first
    tickets: list[Ticket]
    running: bool = False
    lease: JobLease | None = None
    # monotonic clock of the running attempt's start; the watchdog
    # compares it against ``lease_timeout`` to spot wedged slots
    attempt_started: float | None = None
    # the cell's own attempt has actually begun on the worker
    # (``job_started`` seen since dispatch).  A cell dispatched as part
    # of a trace group waits its turn on the lease thread with
    # ``running=True`` but ``started=False`` — the watchdog must not
    # attribute a groupmate's hang to a cell still waiting in line.
    started: bool = False


class Scheduler:
    """Expand, dedup, queue fairly, dispatch, settle — and survive.

    All methods run on the owning event loop's thread; executor lease
    work happens in worker threads via ``asyncio.to_thread`` with
    events hopped back onto the loop.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        cache: ResultCache | None,
        journal: RunJournal,
        stream: EventStream,
        timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.0,
        timeout_factor: float | None = None,
        fault_spec: str | None = None,
        max_pending_per_tenant: int = DEFAULT_MAX_PENDING,
        max_pending_total: int | None = None,
        max_pending_cost: int | None = None,
        max_cache_mb: float | None = None,
        tickets: TicketStore | None = None,
        lease_timeout: float | None = None,
        heartbeat: float | None = None,
        group_cells: int = 8,
    ) -> None:
        self.cache = cache
        self.journal = journal
        self.stream = stream
        self.timeout = timeout
        self.fault_spec = fault_spec
        self.max_pending_per_tenant = max(1, max_pending_per_tenant)
        self.max_pending_total = max_pending_total
        self.max_pending_cost = max_pending_cost
        self.max_cache_mb = max_cache_mb
        self.tickets = tickets
        # Trace-group dispatch: a worker pulling a cell also steals up
        # to group_cells-1 more cells *from the same tenant's queue*
        # that share the cell's trace key, and runs the whole group on
        # one lease over one generated trace.  Stealing never crosses
        # tenants, so round-robin fairness is untouched.  1 disables.
        self.group_cells = max(1, group_cells)
        self.lease_timeout = lease_timeout
        self.leases = [
            JobLease(retries=retries, backoff=backoff,
                     timeout_factor=timeout_factor, heartbeat=heartbeat)
            for _ in range(max(1, workers))
        ]
        self.counters: Counter = Counter()
        self.closing = False
        self._inflight: dict[str, _InFlight] = {}
        self._queues: dict[str, deque[str]] = {}
        self._rr: deque[str] = deque()       # tenant rotation order
        self._work: asyncio.Condition = asyncio.Condition()
        self._tasks: list[asyncio.Task] = []
        self._watchdog_task: asyncio.Task | None = None
        self._busy = 0
        self._tickets: dict[str, Ticket] = {}    # live (unfinished) only
        # EMA of executed-cell wall time, seeding the retry_after hint
        self._avg_cell_s = 2.0
        # journal tap -> live stream: one event pathway, two sinks
        self.journal.tap = self._on_journal_event

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Spawn one dispatch task per worker lease (+ the watchdog)."""
        for lease in self.leases:
            self._tasks.append(asyncio.create_task(self._worker(lease)))
        if self.lease_timeout is not None and self.lease_timeout > 0:
            self._watchdog_task = asyncio.create_task(self._watchdog())

    async def shutdown(self, grace: float = 10.0) -> dict:
        """Drain the farm: PR 2 interruption semantics, farm-wide.

        Queued cells settle ``"interrupted"`` immediately; running
        cells get ``grace`` seconds, then their leases are cancelled
        (worker process terminated) and they settle ``"interrupted"``
        too.  Returns ``{"completed", "interrupted"}`` counts.
        """
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
            self._watchdog_task = None
        if not self.closing:
            self.closing = True
            async with self._work:
                self._work.notify_all()
            queued = [key for q in self._queues.values() for key in q]
            for q in self._queues.values():
                q.clear()
            for key in queued:
                entry = self._inflight.get(key)
                # Never settle a *running* cell here: its outcome is in
                # flight on a lease thread and will settle itself — a
                # second settle would double-count the cell (the
                # drain/lease-cancel race this guard exists for).
                if entry is not None and not entry.running:
                    self._settle(key, JobOutcome(
                        entry.job, "interrupted", error=INTERRUPTED_ERROR,
                        attempts=0,
                    ))
        if self._tasks:
            _, still_running = await asyncio.wait(self._tasks, timeout=grace)
            if still_running:
                for entry in list(self._inflight.values()):
                    if entry.lease is not None and entry.running:
                        entry.lease.cancel()
                await asyncio.wait(self._tasks, timeout=10.0)
            self._tasks = []
        for lease in self.leases:
            lease.close()
        return {
            "completed": self.counters["ok"],
            "interrupted": self.counters["interrupted"],
        }

    # -- submission ------------------------------------------------------

    async def submit(self, request: GridRequest, sub: Subscription) -> Ticket:
        """Admit one grid: dedup against cache and in-flight, queue misses.

        Raises :class:`ServerClosing` while draining,
        :class:`TenantQueueFull` when the tenant's bounded queue cannot
        take the grid's cache-missing cells, and
        :class:`ServerOverloaded` when the farm-wide admission bound
        would be exceeded (nothing is admitted in any rejection case —
        admission is all-or-nothing).
        """
        if self.closing:
            raise ServerClosing("server is shutting down")
        unique = {job.key: job for job in request.jobs(timeout=self.timeout)}
        ticket = Ticket(
            id=uuid.uuid4().hex[:8], tenant=request.tenant,
            watch=request.watch, sub=sub, jobs=unique,
        )
        # Classify without mutating shared state so the queue bounds can
        # reject the whole submission atomically.  No awaits here: the
        # classification cannot go stale under the single-threaded loop.
        shared: list[str] = []
        hits: list[tuple[str, object]] = []
        misses: list[str] = []
        for key, job in unique.items():
            if key in self._inflight:
                shared.append(key)
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                hits.append((key, cached))
            else:
                misses.append(key)
        queue = self._queues.setdefault(request.tenant, deque())
        if len(queue) + len(misses) > self.max_pending_per_tenant:
            self.counters["rejected"] += 1
            self.journal.event(
                "submit_rejected", tenant=request.tenant, ticket=ticket.id,
                reason="tenant_queue_full", queued=len(queue),
                cells=len(misses), bound=self.max_pending_per_tenant,
            )
            raise TenantQueueFull(
                f"tenant {request.tenant!r} queue is full "
                f"({len(queue)} queued, bound {self.max_pending_per_tenant})"
            )
        self._check_overload(request.tenant, ticket.id, misses, unique)
        if self.tickets is not None:
            self.tickets.save(
                ticket.id, tenant=ticket.tenant, watch=ticket.watch,
                cells=[job.identity() for job in unique.values()],
                created=ticket.created,
            )
        self._tickets[ticket.id] = ticket
        self.journal.event(
            "grid_submitted", tenant=request.tenant, ticket=ticket.id,
            cells=len(unique), executing=len(misses), cached=len(hits),
            shared=len(shared),
        )
        for key, job in unique.items():
            self.journal.event("job_submitted", tenant=request.tenant,
                               ticket=ticket.id, **job.identity())
        for key in shared:
            entry = self._inflight[key]
            entry.tickets.append(ticket)
            ticket.pending.add(key)
            ticket.shared_keys.add(key)
            ticket.counters["shared"] += 1
            self.counters["shared"] += 1
            self.journal.event(
                "job_shared", key=key, workload=unique[key].workload,
                scheme=unique[key].scheme_id, tenant=request.tenant,
                first_tenant=entry.tenant,
            )
        for key, result in hits:
            job = unique[key]
            ticket.counters["cached"] += 1
            self.counters["cache_hits"] += 1
            self.journal.event("cache_hit", key=key, workload=job.workload,
                               scheme=job.scheme_id, tenant=request.tenant)
            ticket.deliver(self._result_message(
                JobOutcome(job, "ok", result=result, cache_hit=True),
                shared=False,
            ))
        for key in misses:
            job = unique[key]
            self.journal.event("cache_miss", key=key, workload=job.workload,
                               scheme=job.scheme_id, tenant=request.tenant)
            self._inflight[key] = _InFlight(
                job=job, tenant=request.tenant, tickets=[ticket],
            )
            ticket.pending.add(key)
            queue.append(key)
        if request.tenant not in self._rr:
            self._rr.append(request.tenant)
        self.counters["submitted"] += len(unique)
        if ticket.done:
            self._finish_ticket(ticket)
        if misses:
            async with self._work:
                self._work.notify_all()
        return ticket

    def _check_overload(
        self, tenant: str, ticket_id: str, misses: list[str], unique: dict
    ) -> None:
        """Farm-wide load shedding: reject with a ``retry_after`` hint."""
        if self.max_pending_total is None and self.max_pending_cost is None:
            return
        cells, cost = self._queued_totals()
        new_cost = sum(unique[key].n_instructions for key in misses)
        over_cells = (
            self.max_pending_total is not None
            and cells + len(misses) > self.max_pending_total
        )
        over_cost = (
            self.max_pending_cost is not None
            and cost + new_cost > self.max_pending_cost
        )
        if not over_cells and not over_cost:
            return
        retry_after = self.retry_after_hint(extra_cells=len(misses))
        self.counters["rejected"] += 1
        self.counters["rejected_overload"] += 1
        self.journal.event(
            "submit_rejected", tenant=tenant, ticket=ticket_id,
            reason="overloaded", queued=cells, queued_cost=cost,
            cells=len(misses), bound=self.max_pending_total,
            cost_bound=self.max_pending_cost,
            retry_after=retry_after,
        )
        raise ServerOverloaded(
            f"farm overloaded ({cells} cells queued"
            + (f", bound {self.max_pending_total}"
               if self.max_pending_total is not None else "")
            + (f"; {cost} instructions queued, bound {self.max_pending_cost}"
               if self.max_pending_cost is not None else "")
            + f"); retry in {retry_after:.0f}s",
            retry_after=retry_after,
        )

    def _queued_totals(self) -> tuple[int, int]:
        """(queued cells, queued instruction cost) across all tenants."""
        cells = 0
        cost = 0
        for queue in self._queues.values():
            for key in queue:
                cells += 1
                entry = self._inflight.get(key)
                if entry is not None:
                    cost += entry.job.n_instructions
        return cells, cost

    def retry_after_hint(self, extra_cells: int = 0) -> float:
        """Seconds until the backlog plausibly fits the rejected grid."""
        cells, _ = self._queued_totals()
        eta = (cells + extra_cells) / max(1, len(self.leases)) \
            * self._avg_cell_s
        return round(min(MAX_RETRY_AFTER, max(MIN_RETRY_AFTER, eta)), 3)

    # -- resume / recovery ----------------------------------------------

    async def resume(
        self, ticket_id: str, sub: Subscription, watch: bool = True
    ) -> dict:
        """Re-attach a client to a ticket by id; returns the ack fields.

        Three cases, one verb: a **live** ticket gets its mailbox
        swapped to ``sub`` with every already-settled result replayed; a
        **finished** (or no-longer-live) ticket is replayed wholesale
        from the journal/cache; a finished-record ticket with cells the
        journal cannot settle (the gateway died mid-grid) is *revived*
        — its unsettled cells re-enter the queues, bypassing admission
        bounds, because recovery traffic must never be shed.

        Raises :class:`UnknownTicket` when neither live state nor a
        record exists, :class:`~repro.serve.tickets.TicketRecordError`
        for a torn record, and :class:`ServerClosing` while draining.
        """
        if self.closing:
            raise ServerClosing("server is shutting down")
        live = self._tickets.get(ticket_id)
        if live is not None:
            live.sub.close()                 # orphan the old mailbox
            live.sub = sub
            live.watch = watch
            for message in live.settled:
                sub.put(message, droppable=False)
            self.journal.event(
                "ticket_attached", ticket=ticket_id, tenant=live.tenant,
                replayed=len(live.settled), pending=len(live.pending),
            )
            return {
                "ticket": live.id, "tenant": live.tenant,
                "cells": len(live.jobs), "settled": len(live.settled),
                "pending": len(live.pending), "revived": False,
            }
        if self.tickets is None:
            raise UnknownTicket(f"unknown ticket {ticket_id!r}")
        record = self.tickets.load(ticket_id)
        if record is None:
            raise UnknownTicket(f"unknown ticket {ticket_id!r}")
        ticket = await self._revive(record, sub, watch=watch,
                                    reason="client_resume")
        return {
            "ticket": ticket.id, "tenant": ticket.tenant,
            "cells": len(ticket.jobs), "settled": len(ticket.settled),
            "pending": len(ticket.pending), "revived": True,
        }

    async def recover(self) -> dict | None:
        """Gateway crash recovery: rebuild queues from ticket records.

        Called once at server startup, before connections are accepted.
        Every unfinished record is revived headless (no client mailbox
        is pumped; a later ``resume`` re-attaches one): cells the
        journal or cache already settle are settled immediately, the
        rest re-enter the queues.  Torn records are journaled as
        ``ticket_record_corrupt`` and skipped — an unparseable record
        must not wedge startup.  Journals one ``gateway_recovered``
        event (and returns its fields) when there was anything to do.
        """
        if self.tickets is None:
            return None
        records, corrupt = self.tickets.load_all()
        for path in corrupt:
            self.journal.event("ticket_record_corrupt", path=str(path))
        unfinished = [r for r in records if not r.get("finished")]
        revived = 0
        requeued = 0
        replayed = 0
        for record in unfinished:
            try:
                ticket = await self._revive(
                    record, Subscription(), watch=False,
                    reason="gateway_recovery",
                )
            except TicketRecordError as exc:
                self.journal.event(
                    "ticket_record_corrupt",
                    path=str(self.tickets.path(record["ticket"])),
                    error=str(exc),
                )
                continue
            revived += 1
            requeued += len(ticket.pending)
            replayed += len(ticket.settled)
        if not unfinished and not corrupt:
            return None
        report = {
            "tickets": revived, "requeued": requeued,
            "replayed": replayed, "corrupt": len(corrupt),
        }
        self.journal.event("gateway_recovered", **report)
        return report

    async def _revive(
        self, record: dict, sub: Subscription, watch: bool, reason: str
    ) -> Ticket:
        """Rebuild one ticket from its record + the journal's history.

        Settled cells (latest ``job_finished`` per key, with
        ``interrupted`` treated as *unsettled* — interruption is a
        shutdown artifact, not a verdict) are replayed onto ``sub``;
        the cache covers ok-cells whose journal line lost its payload.
        Unsettled cells re-enter the farm, joining in-flight duplicates
        where they exist and **bypassing all admission bounds** —
        resuming previously-admitted work is not new load.
        """
        jobs = self.tickets.jobs(record) if self.tickets is not None \
            else {}
        ticket = Ticket(
            id=record["ticket"], tenant=record["tenant"], watch=watch,
            sub=sub, jobs=jobs, created=record.get("created", time.time()),
        )
        finished = self._journal_settlements()
        misses: list[str] = []
        for key, job in jobs.items():
            if key in self._inflight:        # join a duplicate in flight
                entry = self._inflight[key]
                entry.tickets.append(ticket)
                ticket.pending.add(key)
                ticket.shared_keys.add(key)
                ticket.counters["shared"] += 1
                self.counters["shared"] += 1
                continue
            message = self._replay_message(job, finished.get(key))
            if message is not None:
                status = message["status"]
                ticket.counters["cached" if status == "ok" else "failed"] \
                    += 1
                self.journal.event(
                    "job_resumed", key=key, workload=job.workload,
                    scheme=job.scheme_id, status=status, ticket=ticket.id,
                )
                ticket.deliver(message)
                continue
            ticket.pending.add(key)
            misses.append(key)
        queue = self._queues.setdefault(ticket.tenant, deque())
        for key in misses:
            job = jobs[key]
            self._inflight[key] = _InFlight(
                job=job, tenant=ticket.tenant, tickets=[ticket],
            )
            queue.append(key)
            self.journal.event("job_requeued", key=key,
                               workload=job.workload, scheme=job.scheme_id,
                               ticket=ticket.id)
        if ticket.tenant not in self._rr:
            self._rr.append(ticket.tenant)
        self.journal.event(
            "ticket_revived", ticket=ticket.id, tenant=ticket.tenant,
            reason=reason, cells=len(jobs), replayed=len(ticket.settled),
            requeued=len(misses),
            shared=ticket.counters["shared"],
        )
        if ticket.done:
            self._tickets[ticket.id] = ticket    # _finish_ticket pops it
            self._finish_ticket(ticket)
        else:
            self._tickets[ticket.id] = ticket
            if misses:
                async with self._work:
                    self._work.notify_all()
        return ticket

    def _journal_settlements(self) -> dict[str, dict]:
        """Latest ``job_finished`` event per key, across *all* runs.

        Reads the on-disk journal (which accumulates every run against
        this cache root) leniently — a torn tail or a corrupt line
        inside a crashed gateway's journal loses that line, not the
        recovery.  Falls back to this run's in-memory events when the
        journal has no file.
        """
        if self.journal.path is not None and self.journal.path.exists():
            events = read_journal(self.journal.path, strict=False)
        else:
            events = list(self.journal.events)
        last: dict[str, dict] = {}
        for event in events:
            if event.get("event") == "job_finished" and event.get("key"):
                last[event["key"]] = event
        return last

    def _replay_message(self, job: Job, event: dict | None) -> dict | None:
        """A result line reconstructed from history, or None = unsettled."""
        payload = None
        status = event.get("status") if event is not None else None
        error = event.get("error") if event is not None else None
        attempts = int(event.get("attempts") or 0) if event is not None else 0
        duration = float(event.get("duration") or 0.0) if event is not None \
            else 0.0
        if status == "interrupted":
            # a shutdown artifact, not a verdict: run the cell again
            status = None
        if status == "ok":
            payload = event.get("result")
            if not isinstance(payload, dict):
                payload = None
        if payload is None and self.cache is not None:
            cached = self.cache.get(job.key)
            if cached is not None:
                payload = cached.to_dict()
                status = "ok"
                attempts = attempts or 0
        if status is None or (status == "ok" and payload is None):
            return None
        message = {
            "type": "result",
            "workload": job.workload,
            "scheme": job.scheme_id,
            "key": job.key,
            "status": status,
            "cache_hit": True,
            "shared": False,
            "resumed": True,
            "attempts": attempts,
            "duration": round(duration, 6),
            "error": error,
        }
        if status == "ok":
            message["result"] = payload
        return message

    # -- dispatch --------------------------------------------------------

    async def _worker(self, lease: JobLease) -> None:
        """One worker slot: pull fairly, execute on the lease, settle.

        When the pulled cell shares its trace key with other cells of
        the *same tenant's* queue, up to ``group_cells`` of them are
        dispatched together onto the lease: its single worker process
        persists across the cells, so it acquires the trace once —
        fabric attach or the worker memo — and simulates every scheme
        against it, which is where the sweep-throughput win comes from.
        Cells still run (and settle) one at a time, so per-cell events,
        retries and watchdog attribution are identical to solo dispatch.
        """
        loop = asyncio.get_running_loop()
        while True:
            key = await self._next_key()
            if key is None:
                return
            entry = self._inflight.get(key)
            if entry is None:          # settled while queued (shutdown race)
                continue
            group = [(key, entry)]
            if self.group_cells > 1 and not entry.job.trace_dir:
                group.extend(self._steal_group(entry))
            for _, member in group:
                member.running = True
                member.started = False
                member.lease = lease
                member.attempt_started = time.monotonic()
            self._busy += 1
            if len(group) > 1:
                self.counters["groups_dispatched"] += 1
                self.journal.event(
                    "group_dispatched", key=key,
                    workload=entry.job.workload,
                    trace_key=trace_cache_key(
                        entry.job.workload, entry.job.n_instructions,
                        entry.job.salt),
                    cells=len(group),
                    schemes=[m.job.scheme_id for _, m in group],
                )

            def on_event(kind: str, job: Job, fields: dict) -> None:
                # lease thread -> loop thread; journal+stream stay
                # single-threaded
                loop.call_soon_threadsafe(self._job_event, kind, job.key,
                                          fields)

            any_ok = False
            try:
                for cell_key, member in group:
                    outcome = await asyncio.to_thread(
                        lease.run_one, member.job, self._cache_dir(),
                        on_event, self.fault_spec,
                    )
                    # settle as each cell lands: subscribers see results
                    # stream in, and a settled cell leaves _inflight so
                    # the watchdog only ever sees the cell actually on
                    # the worker
                    self._settle(cell_key, outcome)
                    any_ok = any_ok or outcome.ok
            finally:
                self._busy -= 1
            if any_ok and self.max_cache_mb is not None:
                await self._enforce_cache_bound()

    def _steal_group(self, entry: _InFlight) -> list[tuple[str, _InFlight]]:
        """Pull same-trace cells off ``entry``'s tenant queue (cap-1).

        Only the owning tenant's queue is touched — group formation
        must not let one tenant's sweep vacuum up a neighbour's cells —
        and observability cells (``trace_dir``) are never grouped.
        """
        queue = self._queues.get(entry.tenant)
        if not queue:
            return []
        tkey = trace_cache_key(entry.job.workload, entry.job.n_instructions,
                               entry.job.salt)
        stolen: list[tuple[str, _InFlight]] = []
        for cand in list(queue):
            if len(stolen) >= self.group_cells - 1:
                break
            cand_entry = self._inflight.get(cand)
            if cand_entry is None or cand_entry.job.trace_dir:
                continue
            job = cand_entry.job
            if trace_cache_key(job.workload, job.n_instructions,
                               job.salt) == tkey:
                queue.remove(cand)
                stolen.append((cand, cand_entry))
        return stolen

    async def _next_key(self) -> str | None:
        """The next job key, round-robin across tenants; None to exit."""
        async with self._work:
            while True:
                for _ in range(len(self._rr)):
                    tenant = self._rr[0]
                    self._rr.rotate(-1)
                    queue = self._queues.get(tenant)
                    if queue:
                        return queue.popleft()
                if self.closing:
                    return None
                await self._work.wait()

    def _cache_dir(self) -> str | None:
        return str(self.cache.root) if self.cache is not None else None

    def _job_event(self, kind: str, key: str, fields: dict) -> None:
        entry = self._inflight.get(key)
        if entry is None:
            return
        if kind == "job_started":
            # each (re)attempt re-arms the watchdog deadline
            entry.started = True
            entry.attempt_started = time.monotonic()
        self.journal.event(kind, key=key, workload=entry.job.workload,
                           scheme=entry.job.scheme_id, **fields)

    # -- lease watchdog --------------------------------------------------

    async def _watchdog(self) -> None:
        """Reap worker slots whose running attempt outlived the lease.

        A reaped lease is *not* cancelled: killing the worker process
        surfaces in :meth:`JobLease.run_one` as a dead worker, which
        retries on a fresh pool (with backoff) or settles ``"error"``
        once attempts are exhausted — the cell pays, the slot survives.

        Only cells whose attempt has actually *started* on the worker
        are candidates: a cell waiting its turn inside a trace group is
        running in the dispatch sense but cannot be the hang, and its
        own clock re-arms when its ``job_started`` fires.
        """
        assert self.lease_timeout is not None
        interval = min(1.0, max(0.05, self.lease_timeout / 4))
        while not self.closing:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for key, entry in list(self._inflight.items()):
                bound = self.lease_timeout
                if (
                    entry.running
                    and entry.started
                    and entry.lease is not None
                    and entry.attempt_started is not None
                    and now - entry.attempt_started > bound
                ):
                    silent = now - entry.attempt_started
                    entry.attempt_started = now    # re-arm, no double reap
                    self.counters["leases_reaped"] += 1
                    self.journal.event(
                        "lease_reaped", key=key,
                        workload=entry.job.workload,
                        scheme=entry.job.scheme_id,
                        silent_s=round(silent, 3),
                        bound_s=bound,
                    )
                    entry.lease.reap()

    # -- settlement ------------------------------------------------------

    def _settle(self, key: str, outcome: JobOutcome) -> None:
        """Resolve one unique cell for every ticket subscribed to it."""
        entry = self._inflight.pop(key, None)
        if entry is None:
            return
        job = entry.job
        fields = dict(
            key=key, workload=job.workload, scheme=job.scheme_id,
            status=outcome.status, duration=round(outcome.duration, 6),
            attempts=outcome.attempts, error=outcome.error,
            tenants=sorted({t.tenant for t in entry.tickets}),
        )
        if outcome.ok:
            assert outcome.result is not None
            # journaled payload keeps the farm journal resume-compatible
            fields["result"] = outcome.result.to_dict()
            if outcome.attempts > 0 and self.cache is not None:
                self.cache.put(key, outcome.result, job.identity())
        self.journal.event("job_finished", **fields)
        self.counters["executed"] += 1 if outcome.attempts else 0
        self.counters[outcome.status if not outcome.ok else "ok"] += 1
        if outcome.attempts and outcome.duration > 0:
            self._avg_cell_s = (
                0.8 * self._avg_cell_s + 0.2 * outcome.duration
            )
        for ticket in entry.tickets:
            shared = key in ticket.shared_keys
            if outcome.attempts and not shared:
                ticket.counters["executed"] += 1
            if not outcome.ok:
                ticket.counters[
                    "interrupted" if outcome.status == "interrupted"
                    else "failed"
                ] += 1
            ticket.deliver(self._result_message(outcome, shared=shared))
            ticket.pending.discard(key)
            if ticket.done:
                self._finish_ticket(ticket)

    def _finish_ticket(self, ticket: Ticket) -> None:
        self._tickets.pop(ticket.id, None)
        if self.tickets is not None:
            self.tickets.save(
                ticket.id, tenant=ticket.tenant, watch=ticket.watch,
                cells=[job.identity() for job in ticket.jobs.values()],
                finished=True, summary=ticket.summary(),
                created=ticket.created,
            )
        self.journal.event("grid_finished", tenant=ticket.tenant,
                           ticket=ticket.id, **ticket.summary())
        ticket.sub.put(
            {"type": "done", "ticket": ticket.id,
             "summary": ticket.summary()},
            droppable=False,
        )
        ticket.sub.close()

    @staticmethod
    def _result_message(outcome: JobOutcome, shared: bool) -> dict:
        job = outcome.job
        message = {
            "type": "result",
            "workload": job.workload,
            "scheme": job.scheme_id,
            "key": job.key,
            "status": outcome.status,
            "cache_hit": outcome.cache_hit,
            "shared": shared,
            "resumed": outcome.resumed,
            "attempts": outcome.attempts,
            "duration": round(outcome.duration, 6),
            "error": outcome.error,
        }
        if outcome.ok:
            assert outcome.result is not None
            message["result"] = outcome.result.to_dict()
        return message

    # -- event multiplexing ---------------------------------------------

    def _on_journal_event(self, entry: dict) -> None:
        """Journal tap: broadcast + route to the key's watching tickets."""
        self.stream.publish(entry)
        key = entry.get("key")
        if not key:
            return
        inflight = self._inflight.get(key)
        if inflight is None:
            return
        for ticket in inflight.tickets:
            if ticket.watch:
                ticket.sub.put({"type": "event", "event": entry},
                               droppable=True)

    # -- cache lifecycle -------------------------------------------------

    async def _enforce_cache_bound(self) -> None:
        """Size-bound the shared store (LRU) after a fresh result lands."""
        if self.cache is None or self.max_cache_mb is None:
            return
        report = await asyncio.to_thread(
            self.cache.gc, None, self.max_cache_mb
        )
        if report["removed"]:
            self.journal.event("cache_gc", **report)

    # -- introspection ---------------------------------------------------

    def status(self) -> dict:
        """Queue depths, worker occupancy, load state, lifetime counters."""
        cells, cost = self._queued_totals()
        overloaded = (
            self.max_pending_total is not None
            and cells >= self.max_pending_total
        ) or (
            self.max_pending_cost is not None
            and cost >= self.max_pending_cost
        )
        return {
            "workers": len(self.leases),
            "busy": self._busy,
            "inflight": len(self._inflight),
            "queued": cells,
            "tenants": {
                tenant: len(queue)
                for tenant, queue in self._queues.items() if queue
            },
            "tickets": len(self._tickets),
            "overload": {
                "overloaded": overloaded,
                "queued": cells,
                "queued_cost": cost,
                "bound": self.max_pending_total,
                "cost_bound": self.max_pending_cost,
                "rejected": self.counters["rejected_overload"],
                "retry_after": self.retry_after_hint() if overloaded
                else None,
            },
            "lease_timeout": self.lease_timeout,
            "group_cells": self.group_cells,
            "counters": dict(self.counters),
            "closing": self.closing,
        }
