"""The asyncio gateway: TCP front door for the simulation farm.

:class:`SweepServer` binds a TCP socket, advertises itself in the cache
root's ``serve.addr``, and serves the newline-delimited JSON protocol
of :mod:`repro.serve.protocol`.  Each connection is single-shot — one
request line in, one response stream out — and every submitted grid
flows through the shared :class:`~repro.serve.scheduler.Scheduler`, so
concurrent tenants dedup against the same cache, the same in-flight
set, and the same bounded worker leases.

Graceful shutdown (the ``shutdown`` op, SIGINT or SIGTERM) stops
accepting work, drains or interrupts in-flight cells through the
scheduler's PR 2-style interruption path, notifies every connected
watcher with a terminal ``server_shutdown`` line, flushes the journal,
withdraws the address advertisement, and exits 0.

Embedding: :meth:`SweepServer.run` is the blocking CLI entry point;
:meth:`SweepServer.start_in_thread` runs the same server on a
background event loop for tests and in-process integration, returning
a handle with the bound address and a blocking ``stop()``.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import threading
import time
from collections.abc import Callable
from pathlib import Path

from repro.observe import EventStream, Subscription
from repro.runtime import ResultCache, RunJournal, default_cache_dir
from repro.serve.protocol import (
    MAX_REQUEST_BYTES,
    PROTOCOL_VERSION,
    GridRequest,
    ProtocolError,
    clear_addr_file,
    decode_message,
    encode_message,
    error_message,
    write_addr_file,
)
from repro.serve.scheduler import (
    Scheduler,
    ServerClosing,
    ServerOverloaded,
    TenantQueueFull,
    UnknownTicket,
)
from repro.serve.tickets import TICKETS_DIRNAME, TicketRecordError, TicketStore

DEFAULT_GRACE = 10.0


class ServerHandle:
    """A background server's address plus a blocking ``stop()``.

    Returned by :meth:`SweepServer.start_in_thread`; ``stop()`` runs
    the same graceful shutdown the signal handlers use and joins the
    server thread.
    """

    def __init__(self, server: "SweepServer", thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop) -> None:
        self.server = server
        self.host = server.host
        self.port = server.port
        self._thread = thread
        self._loop = loop

    def stop(self, reason: str = "stopped", timeout: float = 30.0) -> None:
        """Gracefully shut the background server down and join it."""
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.shutdown(reason), self._loop
            )
            with contextlib.suppress(Exception):
                future.result(timeout=timeout)
        self._thread.join(timeout=timeout)


class SweepServer:
    """Multi-tenant sweep gateway over the runtime's executors.

    Args:
        host/port: Bind address; port 0 picks a free port (the bound
            one is advertised in the addr file and ``self.port``).
        workers: Worker leases — concurrent simulations.
        cache_dir: Shared result-cache root (and addr-file home).
        use_cache: Disable to force every cell to execute.
        journal_path: Farm journal; default ``<cache-dir>/serve.jsonl``.
        timeout/retries/backoff/timeout_factor: Per-job failure policy,
            passed to the worker leases.
        fault_spec: Deterministic fault plan injected into workers
            (chaos-testing the farm; see :mod:`repro.faults`).
        max_cache_mb: Size bound for the shared store — LRU-evicted
            after each fresh result beyond it.
        max_pending_per_tenant: Bounded per-tenant queue depth.
        group_cells: Trace-group dispatch width — a worker pulling a
            cell also takes up to this many same-tenant cells sharing
            its trace key, running them on one lease over one generated
            trace (1 disables grouping).
        grace: Seconds running cells get to finish on shutdown before
            their leases are cancelled.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        cache_dir: str | Path | None = None,
        use_cache: bool = True,
        journal_path: str | Path | None = None,
        timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.0,
        timeout_factor: float | None = None,
        fault_spec: str | None = None,
        max_cache_mb: float | None = None,
        max_pending_per_tenant: int = 512,
        max_pending_total: int | None = None,
        max_pending_cost: int | None = None,
        lease_timeout: float | None = None,
        heartbeat: float | None = None,
        group_cells: int = 8,
        grace: float = DEFAULT_GRACE,
    ) -> None:
        self.host = host
        self.port = port
        self.workers = workers
        self.cache_dir = (
            Path(cache_dir) if cache_dir is not None else default_cache_dir()
        )
        self.use_cache = use_cache
        self.journal_path = (
            Path(journal_path) if journal_path is not None
            else self.cache_dir / "serve.jsonl"
        )
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.timeout_factor = timeout_factor
        self.fault_spec = fault_spec
        self.max_cache_mb = max_cache_mb
        self.max_pending_per_tenant = max_pending_per_tenant
        self.max_pending_total = max_pending_total
        self.max_pending_cost = max_pending_cost
        self.lease_timeout = lease_timeout
        self.heartbeat = heartbeat
        self.group_cells = group_cells
        self.grace = grace
        self.started = 0.0
        self.journal: RunJournal | None = None
        self.scheduler: Scheduler | None = None
        self.stream: EventStream | None = None
        self._server: asyncio.AbstractServer | None = None
        self._closed: asyncio.Event | None = None
        self._shutting_down = False

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind, start the scheduler, advertise; returns (host, port)."""
        self.started = time.time()
        self._closed = asyncio.Event()
        self.stream = EventStream()
        self.journal = RunJournal(self.journal_path)
        cache = (
            ResultCache(self.cache_dir, on_corrupt=self._on_cache_corrupt)
            if self.use_cache else None
        )
        self.scheduler = Scheduler(
            workers=self.workers,
            cache=cache,
            journal=self.journal,
            stream=self.stream,
            timeout=self.timeout,
            retries=self.retries,
            backoff=self.backoff,
            timeout_factor=self.timeout_factor,
            fault_spec=self.fault_spec,
            max_pending_per_tenant=self.max_pending_per_tenant,
            max_pending_total=self.max_pending_total,
            max_pending_cost=self.max_pending_cost,
            max_cache_mb=self.max_cache_mb,
            tickets=TicketStore(self.cache_dir / TICKETS_DIRNAME),
            lease_timeout=self.lease_timeout,
            heartbeat=self.heartbeat,
            group_cells=self.group_cells,
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_REQUEST_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.scheduler.start()
        # Crash recovery happens *before* the advertisement goes up:
        # unfinished ticket records from a killed predecessor re-enter
        # the queues, so a grid survives its gateway.
        await self.scheduler.recover()
        write_addr_file(self.cache_dir, self.host, self.port)
        self.journal.event(
            "server_started", host=self.host, port=self.port,
            workers=self.workers, cached=cache is not None,
            fault_spec=self.fault_spec,
        )
        return self.host, self.port

    async def shutdown(self, reason: str = "requested") -> None:
        """Graceful drain: the one path signals, ops and tests share.

        The listener stays open during the drain — late submissions get
        a clean "shutting down" error line (the scheduler is already
        closing) and watchers can still attach for the terminal event —
        and closes only once every cell has settled.
        """
        if self._shutting_down:
            return
        self._shutting_down = True
        assert self.journal is not None and self.scheduler is not None
        assert self.stream is not None and self._closed is not None
        # stop advertising first — pid-guarded, so if a replacement
        # server already advertised itself we leave its record alone
        clear_addr_file(self.cache_dir, pid=os.getpid())
        self.journal.event("server_shutdown_started", reason=reason,
                           **self.scheduler.status())
        counts = await self.scheduler.shutdown(self.grace)
        self.journal.event("server_shutdown", reason=reason, **counts)
        # terminal line for every still-connected watcher, then hang up
        self.stream.close({
            "type": "server_shutdown", "reason": reason, **counts,
        })
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.journal.close()
        self._closed.set()

    async def serve_until_shutdown(self) -> None:
        """Block until :meth:`shutdown` completes."""
        assert self._closed is not None, "start() first"
        await self._closed.wait()

    def run(
        self, ready: Callable[[str, int], None] | None = None
    ) -> int:
        """Blocking entry point: serve until a signal or shutdown op.

        ``ready`` (if given) is called with the bound (host, port) once
        the server is accepting connections.
        """

        async def _main() -> None:
            await self.start()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.add_signal_handler(
                        signum,
                        lambda s=signum: asyncio.ensure_future(
                            self.shutdown(f"signal {s}")
                        ),
                    )
            if ready is not None:
                ready(self.host, self.port)
            await self.serve_until_shutdown()

        asyncio.run(_main())
        return 0

    def start_in_thread(self, timeout: float = 30.0) -> ServerHandle:
        """Run the server on a background event loop; returns a handle."""
        ready = threading.Event()
        loop_box: dict[str, asyncio.AbstractEventLoop] = {}

        def _runner() -> None:
            async def _main() -> None:
                loop_box["loop"] = asyncio.get_running_loop()
                await self.start()
                ready.set()
                await self.serve_until_shutdown()

            asyncio.run(_main())

        thread = threading.Thread(target=_runner, daemon=True,
                                  name="repro-serve")
        thread.start()
        if not ready.wait(timeout):
            raise RuntimeError("serve server failed to start in time")
        return ServerHandle(self, thread, loop_box["loop"])

    # -- connection handling ---------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One request line in, one response stream out, then hang up."""
        try:
            try:
                line = await reader.readline()
            except (ValueError, ConnectionError):
                return
            if not line:
                return
            try:
                message = decode_message(line)
                await self._dispatch(message, writer)
            except ProtocolError as exc:
                await self._send(writer, error_message(str(exc)))
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, message: dict, writer) -> None:
        assert self.scheduler is not None and self.stream is not None
        op = message.get("op")
        if op == "ping":
            assert self.journal is not None
            await self._send(writer, {
                "type": "pong", "version": PROTOCOL_VERSION,
                "server": self.journal.run_id,
            })
        elif op == "submit":
            await self._op_submit(message, writer)
        elif op == "resume":
            await self._op_resume(message, writer)
        elif op == "watch":
            await self._op_watch(writer)
        elif op == "status":
            await self._send(writer, self._status_message())
        elif op == "cache":
            await self._op_cache(message, writer)
        elif op == "shutdown":
            grace = message.get("grace")
            if isinstance(grace, (int, float)) and grace >= 0:
                self.grace = float(grace)
            await self._send(writer, {"type": "shutting_down"})
            asyncio.ensure_future(self.shutdown("client request"))
        else:
            raise ProtocolError(f"unknown op {op!r}")

    async def _op_submit(self, message: dict, writer) -> None:
        request = GridRequest.from_message(message)
        sub = Subscription()
        try:
            ticket = await self.scheduler.submit(request, sub)
        except ServerOverloaded as exc:
            await self._send(writer, error_message(
                str(exc), code="overloaded", retry_after=exc.retry_after,
            ))
            return
        except TenantQueueFull as exc:
            await self._send(writer, error_message(
                str(exc), code="tenant_queue_full",
            ))
            return
        except ServerClosing as exc:
            await self._send(writer, error_message(str(exc)))
            return
        await self._send(writer, {
            "type": "submitted", "ticket": ticket.id,
            "tenant": ticket.tenant, "cells": len(ticket.jobs),
            "executing": len(ticket.pending) - len(ticket.shared_keys),
            "cached": ticket.counters["cached"],
            "shared": ticket.counters["shared"],
        })
        await self._pump(sub, writer)

    async def _op_resume(self, message: dict, writer) -> None:
        """Re-attach by ticket id; replay settled cells, stream the rest."""
        ticket_id = message.get("ticket")
        if not isinstance(ticket_id, str) or not ticket_id:
            raise ProtocolError("resume requires a ticket id")
        sub = Subscription()
        try:
            ack = await self.scheduler.resume(
                ticket_id, sub, watch=bool(message.get("watch", True)),
            )
        except UnknownTicket as exc:
            await self._send(writer, error_message(
                str(exc.args[0] if exc.args else exc),
                code="unknown_ticket",
            ))
            return
        except TicketRecordError as exc:
            await self._send(writer, error_message(
                str(exc), code="ticket_corrupt",
            ))
            return
        except ServerClosing as exc:
            await self._send(writer, error_message(str(exc)))
            return
        await self._send(writer, {"type": "resumed", **ack})
        await self._pump(sub, writer)

    async def _op_watch(self, writer) -> None:
        sub = self.stream.subscribe()
        await self._send(writer, {"type": "watching",
                                  "version": PROTOCOL_VERSION})
        try:
            await self._pump(sub, writer, wrap_events=True)
        finally:
            self.stream.unsubscribe(sub)

    async def _op_cache(self, message: dict, writer) -> None:
        cache = self.scheduler.cache
        if cache is None:
            await self._send(writer, error_message("server runs uncached"))
            return
        action = message.get("action")
        if action == "verify":
            report = await asyncio.to_thread(cache.verify)
        elif action == "gc":
            max_age = message.get("max_age_days")
            max_size = message.get("max_size_mb", self.max_cache_mb)
            report = await asyncio.to_thread(cache.gc, max_age, max_size)
            assert self.journal is not None
            self.journal.event("cache_gc", **report)
        else:
            raise ProtocolError(f"unknown cache action {action!r}")
        await self._send(writer, {"type": "cache_report", "action": action,
                                  **report})

    async def _pump(self, sub: Subscription, writer,
                    wrap_events: bool = False) -> None:
        """Forward a subscription's messages until it closes."""
        while True:
            item = await sub.get()
            if item is None:
                return
            if wrap_events and item.get("type") is None:
                item = {"type": "event", "event": item}
            try:
                await self._send(writer, item)
            except (ConnectionError, RuntimeError):
                sub.close()
                return

    @staticmethod
    async def _send(writer, message: dict) -> None:
        writer.write(encode_message(message))
        await writer.drain()

    def _status_message(self) -> dict:
        assert self.scheduler is not None and self.journal is not None
        status = {
            "type": "status",
            "version": PROTOCOL_VERSION,
            "server": self.journal.run_id,
            "uptime_s": round(time.time() - self.started, 3),
            "host": self.host,
            "port": self.port,
            "journal": str(self.journal_path),
            "watchers": len(self.stream) if self.stream is not None else 0,
            "stream": self.stream.stats() if self.stream is not None
            else {},
            **self.scheduler.status(),
        }
        if self.scheduler.cache is not None:
            status["cache"] = self.scheduler.cache.stats()
        return status

    def _on_cache_corrupt(self, key: str, reason: str, dest) -> None:
        if self.journal is not None:
            self.journal.event("cache_corrupt", key=key, reason=reason,
                               quarantined=str(dest))
