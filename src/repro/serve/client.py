"""Client side of the farm: a blocking socket client plus fallback.

:class:`ServeClient` speaks the single-shot NDJSON protocol with plain
stdlib sockets — no asyncio on the client side, so the CLI, tests and
notebook users get ordinary synchronous calls.  Address resolution
order: explicit ``host``/``port`` argument, then the ``serve.addr``
advertisement under the cache root (pid-validated — a crashed server's
stale record is deleted, not trusted), then the protocol default.
Streaming reads stay on a short timeout until the server's first ack
line arrives, so a dead-but-accepting address degrades into
:class:`ServeUnavailable` (and thence the local fallback) instead of a
hang.

Crash survivability: :meth:`ServeClient.submit` accepts ``reconnects``
— on a dropped connection it sleeps a jittered exponential backoff and
*resumes by ticket* (the server replays settled cells and streams the
rest), falling back to a safe resubmit when the drop predated the
ticket ack (server-side dedup makes resubmission idempotent).  Overload
rejections (:class:`ServerOverloadedError`) honour the server's
``retry_after`` hint the same way.  :meth:`ServeClient.resume` is the
standalone re-attach — ``repro serve resume <ticket>`` in CLI form.

:func:`submit_or_local` is the degradation path the CLI uses: when no
server is reachable the same grid runs in-process through
:class:`~repro.runtime.Runtime` against the same cache root, returning
the same :class:`SweepResponse` shape — a laptop without a farm and a
farm-backed deployment share one call site.
"""

from __future__ import annotations

import random
import socket
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from repro.pipeline import SimResult
from repro.runtime import Runtime, default_cache_dir
from repro.serve.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    GridRequest,
    ProtocolError,
    decode_message,
    encode_message,
    read_addr_file,
)

# Called with every streamed progress line (the "event" messages).
EventFn = Callable[[dict], None]


class ServeError(RuntimeError):
    """The server answered with an error line."""


class ServeUnavailable(ServeError):
    """No server reachable (or responsive) at the resolved address."""


class ServerShutdown(ServeError):
    """The server shut down before the submission completed."""


class ConnectionLost(ServeError):
    """The connection dropped mid-stream (reconnectable by ticket)."""


class ServerOverloadedError(ServeError):
    """The farm shed this submission; retry after ``retry_after`` s."""

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class UnknownTicketError(ServeError):
    """``resume`` named a ticket the server has no state or record for."""


def _raise_error_line(message: dict) -> None:
    """Map an error response line onto the typed exception hierarchy."""
    error = message.get("error", "unknown server error")
    code = message.get("code")
    if code == "overloaded":
        retry_after = message.get("retry_after")
        raise ServerOverloadedError(
            error,
            retry_after=float(retry_after)
            if isinstance(retry_after, (int, float)) else None,
        )
    if code == "unknown_ticket":
        raise UnknownTicketError(error)
    raise ServeError(error)


@dataclass
class _StreamState:
    """What survives across reconnect attempts of one submission.

    Replayed results simply overwrite their earlier copies (keyed by
    (scheme, workload)), so however many times the stream drops, the
    final response holds each cell exactly once.
    """

    ticket: str = ""
    tenant: str = ""
    cells: dict = field(default_factory=dict)
    events: list = field(default_factory=list)
    summary: dict = field(default_factory=dict)


@dataclass
class CellResult:
    """One settled cell as the client sees it."""

    workload: str
    scheme: str
    key: str
    status: str
    cache_hit: bool = False
    shared: bool = False
    resumed: bool = False
    attempts: int = 0
    duration: float = 0.0
    error: str | None = None
    result: SimResult | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class SweepResponse:
    """Everything one submission produced.

    ``mode`` records how the grid ran: ``"served"`` through a gateway
    or ``"local"`` through the in-process fallback.
    """

    ticket: str
    tenant: str
    cells: dict[tuple[str, str], CellResult]
    summary: dict
    events: list[dict] = field(default_factory=list)
    mode: str = "served"

    def result(self, scheme: str, workload: str) -> SimResult:
        """The cell's result; raises for failed cells."""
        cell = self.cells[(scheme, workload)]
        if not cell.ok or cell.result is None:
            raise RuntimeError(
                f"cell ({scheme}, {workload}) {cell.status}: {cell.error}"
            )
        return cell.result

    def failures(self) -> list[CellResult]:
        return [c for c in self.cells.values() if not c.ok]

    @property
    def complete(self) -> bool:
        return all(c.ok for c in self.cells.values())

    def format_summary(self) -> str:
        """One-line terminal account of the submission."""
        s = self.summary
        return (
            f"[repro.serve] {s.get('cells', len(self.cells))} cells: "
            f"{s.get('executed', 0)} executed, {s.get('cached', 0)} cached, "
            f"{s.get('shared', 0)} shared, {s.get('failed', 0)} failed"
            + (f", {s['interrupted']} interrupted"
               if s.get("interrupted") else "")
            + f" ({self.mode}, tenant {self.tenant}, ticket {self.ticket})"
        )


class ServeClient:
    """Blocking protocol client; one TCP connection per operation."""

    def __init__(
        self,
        host: str | None = None,
        port: int | None = None,
        cache_dir: str | Path | None = None,
        connect_timeout: float = 5.0,
    ) -> None:
        if host is None or port is None:
            advertised = read_addr_file(cache_dir)
            if advertised is not None:
                host = host if host is not None else advertised[0]
                port = port if port is not None else advertised[1]
        self.host = host if host is not None else DEFAULT_HOST
        self.port = port if port is not None else DEFAULT_PORT
        self.cache_dir = cache_dir
        self.connect_timeout = connect_timeout

    # -- plumbing --------------------------------------------------------

    def _connect(self, timeout: float | None):
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except OSError as exc:
            raise ServeUnavailable(
                f"no server at {self.host}:{self.port} ({exc})"
            ) from None
        sock.settimeout(timeout)
        return sock

    def _roundtrip(self, request: dict, timeout: float | None = 30.0) -> dict:
        """Send one request; return the single response line."""
        try:
            with self._connect(timeout) as sock:
                sock.sendall(encode_message(request))
                with sock.makefile("rb") as reader:
                    line = reader.readline()
        except OSError as exc:
            raise ServeError(f"connection lost: {exc}") from None
        if not line:
            raise ServeError("server closed the connection without a reply")
        response = decode_message(line)
        if response.get("type") == "error":
            _raise_error_line(response)
        return response

    # -- operations ------------------------------------------------------

    def ping(self, timeout: float = 5.0) -> dict:
        """Liveness + protocol version check."""
        return self._roundtrip({"op": "ping"}, timeout=timeout)

    def probe(self, timeout: float = 2.0) -> bool:
        """Connect-probe the resolved address: True iff a live farm
        gateway answers a ping within ``timeout`` — the validation step
        before trusting a discovered advertisement."""
        try:
            return self.ping(timeout=timeout).get("type") == "pong"
        except ServeError:
            return False

    def status(self, timeout: float = 10.0) -> dict:
        """The server's queue/worker/cache status snapshot."""
        return self._roundtrip({"op": "status"}, timeout=timeout)

    def cache(self, action: str, max_age_days: float | None = None,
              max_size_mb: float | None = None,
              timeout: float = 60.0) -> dict:
        """Run ``verify`` or ``gc`` on the server's shared store."""
        return self._roundtrip(
            {"op": "cache", "action": action, "max_age_days": max_age_days,
             "max_size_mb": max_size_mb},
            timeout=timeout,
        )

    def shutdown(self, grace: float | None = None,
                 timeout: float = 10.0) -> dict:
        """Ask the server to drain and exit."""
        request: dict = {"op": "shutdown"}
        if grace is not None:
            request["grace"] = grace
        return self._roundtrip(request, timeout=timeout)

    def submit(
        self,
        schemes,
        workloads,
        n_instructions: int = 8_000,
        recovery: str = "flush",
        tenant: str = "default",
        watch: bool = True,
        on_event: EventFn | None = None,
        timeout: float | None = None,
        reconnects: int = 0,
        backoff: float = 0.5,
        max_backoff: float = 30.0,
    ) -> SweepResponse:
        """Submit a grid and block until every cell settles.

        Streams ``result`` lines into a :class:`SweepResponse` as the
        farm settles them; ``on_event`` sees every progress line when
        ``watch`` is on.  Raises :class:`ServerShutdown` if the server
        drains away mid-submission with cells still unsettled (cells
        the server marked ``"interrupted"`` do *not* raise — they come
        back as failed cells the caller can inspect or resubmit).

        ``reconnects`` enables the crash-survivable path: when the
        connection drops mid-stream the client sleeps a jittered
        exponential backoff and **resumes by ticket** — the server
        replays settled cells and streams the rest.  A drop before the
        ticket ack resubmits the grid instead (idempotent: the farm
        dedups against cache and in-flight work).  An
        :class:`ServerOverloadedError` rejection is retried after the
        server's ``retry_after`` hint (capped at ``max_backoff``).
        """
        request = GridRequest(
            tenant=tenant, schemes=tuple(schemes), workloads=tuple(workloads),
            n_instructions=n_instructions, recovery=recovery, watch=watch,
        )
        state = _StreamState(tenant=tenant)
        message = request.to_message()
        attempt = 0
        while True:
            try:
                return self._stream_grid(message, state, on_event, timeout)
            except ServerOverloadedError as exc:
                if attempt >= reconnects:
                    raise
                attempt += 1
                hint = exc.retry_after if exc.retry_after else backoff
                self._backoff_sleep(hint, max_backoff)
            except (ConnectionLost, ServeUnavailable) as exc:
                if isinstance(exc, ServeUnavailable) and attempt == 0 \
                        and not state.ticket:
                    raise          # nothing reached: let callers fall back
                if attempt >= reconnects:
                    raise
                attempt += 1
                self._backoff_sleep(backoff * 2 ** (attempt - 1),
                                    max_backoff)
                if state.ticket:
                    message = {"op": "resume", "ticket": state.ticket,
                               "watch": watch}

    def resume(
        self,
        ticket: str,
        watch: bool = True,
        on_event: EventFn | None = None,
        timeout: float | None = None,
        reconnects: int = 0,
        backoff: float = 0.5,
        max_backoff: float = 30.0,
        tenant: str = "",
    ) -> SweepResponse:
        """Re-attach to a ticket and block until every cell settles.

        The server replays every already-settled cell (from live state,
        the journal, or the cache) and streams the rest — after a
        client disconnect *or* a gateway restart against the same cache
        root.  Raises :class:`UnknownTicketError` when no state or
        record exists for ``ticket``.
        """
        state = _StreamState(ticket=ticket, tenant=tenant)
        message: dict = {"op": "resume", "ticket": ticket, "watch": watch}
        attempt = 0
        while True:
            try:
                return self._stream_grid(message, state, on_event, timeout)
            except (ConnectionLost, ServeUnavailable):
                if attempt >= reconnects:
                    raise
                attempt += 1
                self._backoff_sleep(backoff * 2 ** (attempt - 1),
                                    max_backoff)

    def _stream_grid(
        self,
        message: dict,
        state: "_StreamState",
        on_event: EventFn | None,
        timeout: float | None,
    ) -> SweepResponse:
        """One connection's worth of the submit/resume response stream.

        ``state`` accumulates across reconnect attempts: replayed
        results overwrite their earlier copies keyed by (scheme,
        workload), so a resumed stream converges on the same response
        an uninterrupted one would have produced.
        """
        acked = False
        try:
            with self._connect(self.connect_timeout) as sock:
                sock.sendall(encode_message(message))
                with sock.makefile("rb") as reader:
                    for raw in reader:
                        response = decode_message(raw)
                        kind = response.get("type")
                        if kind == "error":
                            _raise_error_line(response)
                        if kind in ("submitted", "resumed"):
                            # ack received: switch from the short probe
                            # timeout to the caller's streaming timeout
                            acked = True
                            sock.settimeout(timeout)
                            state.ticket = response.get("ticket",
                                                        state.ticket)
                            state.tenant = response.get("tenant",
                                                        state.tenant)
                        elif kind == "event":
                            state.events.append(response.get("event", {}))
                            if on_event is not None:
                                on_event(response["event"])
                        elif kind == "result":
                            cell = _decode_cell(response)
                            state.cells[(cell.scheme, cell.workload)] = cell
                        elif kind == "done":
                            state.summary = response.get("summary", {})
                            return SweepResponse(
                                ticket=state.ticket, tenant=state.tenant,
                                cells=state.cells, summary=state.summary,
                                events=state.events, mode="served",
                            )
                        elif kind == "server_shutdown":
                            raise ServerShutdown(
                                "server shut down mid-submission "
                                f"({response.get('reason')})"
                            )
        except socket.timeout:
            if not acked:
                # accepting but mute: a hijacked port or wedged server
                # must degrade like an absent one, not hang the client
                raise ServeUnavailable(
                    f"server at {self.host}:{self.port} accepted but did "
                    "not answer"
                ) from None
            raise ConnectionLost("read timed out mid-stream") from None
        except OSError as exc:
            raise ConnectionLost(
                f"connection lost mid-submission: {exc}"
            ) from None
        raise ConnectionLost("connection ended before the grid settled")

    @staticmethod
    def _backoff_sleep(seconds: float, cap: float) -> None:
        """Jittered sleep: +-50% around ``seconds``, capped at ``cap``."""
        time.sleep(min(cap, max(0.0, seconds)) * random.uniform(0.5, 1.5))

    def watch(self, on_event: EventFn, timeout: float | None = None) -> dict:
        """Stream every farm journal event until the server shuts down.

        Returns the terminal ``server_shutdown`` message.  ``on_event``
        receives each journal event dict as it happens.
        """
        try:
            with self._connect(timeout) as sock:
                sock.sendall(encode_message({"op": "watch"}))
                with sock.makefile("rb") as reader:
                    for raw in reader:
                        message = decode_message(raw)
                        kind = message.get("type")
                        if kind == "watching":
                            continue
                        if kind == "server_shutdown":
                            return message
                        if kind == "error":
                            raise ServeError(
                                message.get("error", "server error")
                            )
                        if kind == "event":
                            on_event(message.get("event", {}))
        except OSError:
            pass                    # treat a dropped server as a shutdown
        return {"type": "server_shutdown", "reason": "connection closed"}


def _decode_cell(message: dict) -> CellResult:
    result_payload = message.get("result")
    result = None
    if isinstance(result_payload, dict):
        try:
            result = SimResult.from_dict(result_payload)
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"undecodable result payload: {exc}") from None
    return CellResult(
        workload=message.get("workload", ""),
        scheme=message.get("scheme", ""),
        key=message.get("key", ""),
        status=message.get("status", "error"),
        cache_hit=bool(message.get("cache_hit")),
        shared=bool(message.get("shared")),
        resumed=bool(message.get("resumed")),
        attempts=int(message.get("attempts") or 0),
        duration=float(message.get("duration") or 0.0),
        error=message.get("error"),
        result=result,
    )


def submit_or_local(
    schemes,
    workloads,
    n_instructions: int = 8_000,
    recovery: str = "flush",
    tenant: str = "default",
    host: str | None = None,
    port: int | None = None,
    cache_dir: str | Path | None = None,
    jobs: int = 1,
    on_event: EventFn | None = None,
    reconnects: int = 0,
) -> SweepResponse:
    """Submit through a server when reachable, else run in-process.

    The fallback uses the same cache root, so results computed locally
    are visible to a server started later (and vice versa); the
    returned :class:`SweepResponse` is shaped identically with
    ``mode="local"``.  A first-contact :class:`ServeUnavailable` falls
    back; once a ticket exists the reconnect loop (``reconnects``) owns
    recovery — falling back *then* would run settled work twice.
    """
    client = ServeClient(host=host, port=port, cache_dir=cache_dir)
    try:
        return client.submit(
            schemes, workloads, n_instructions=n_instructions,
            recovery=recovery, tenant=tenant, on_event=on_event,
            reconnects=reconnects,
        )
    except ServeUnavailable:
        pass
    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    runtime = Runtime(jobs=jobs, cache_dir=root)
    from repro.pipeline import RecoveryMode

    grid = runtime.run_grid(
        list(schemes), list(workloads), n_instructions,
        recovery=RecoveryMode(recovery),
    )
    cells: dict[tuple[str, str], CellResult] = {}
    counters = {"cells": 0, "executed": 0, "cached": 0, "shared": 0,
                "failed": 0, "interrupted": 0}
    for (scheme, workload), outcome in grid.cells.items():
        counters["cells"] += 1
        if outcome.cache_hit or outcome.resumed:
            counters["cached"] += 1
        else:
            counters["executed"] += 1
        if outcome.status == "interrupted":
            counters["interrupted"] += 1
        elif not outcome.ok:
            counters["failed"] += 1
        cells[(scheme, workload)] = CellResult(
            workload=workload, scheme=scheme, key=outcome.job.key,
            status=outcome.status, cache_hit=outcome.cache_hit,
            attempts=outcome.attempts, duration=outcome.duration,
            error=outcome.error, result=outcome.result,
        )
    return SweepResponse(
        ticket="local", tenant=tenant, cells=cells, summary=counters,
        events=list(runtime.journal.events), mode="local",
    )
