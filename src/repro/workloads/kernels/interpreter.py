"""Bytecode-interpreter kernels (perlbench, avmshell, pdfjs, JS suites).

The richest behaviour in the suite:

* indirect dispatch per bytecode (ITTAGE work);
* an operand stack with push (store) / pop (load) pairs at short
  distance — *in-flight* load-store conflicts that DLVP's LSCD must
  filter (Figure 1's upper band);
* handler-specific constant/global loads whose addresses are exact
  functions of the *load path* (which handlers ran recently), the
  showcase for PAP's global context versus CAP's per-load history.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadBuilder

_R_IP = 15
_R_OP = 16
_R_TOS = 17
_R_TMP = 18
_R_HANDLER = 14
_STACK = 0x7E0000


def bytecode_interpreter(
    builder: WorkloadBuilder,
    n_instructions: int,
    program_length: int = 96,
    num_handlers: int = 8,
    code_base: int = 0x60000,
    bytecode_base: int = 0x700000,
    globals_base: int = 0x710000,
    stack_conflicts: bool = True,
) -> None:
    """Run a fixed random bytecode program in a dispatch loop.

    Args:
        program_length: Bytecodes per pass (the program then loops).
        num_handlers: Distinct opcode handlers.
        stack_conflicts: Emit push/pop operand-stack traffic (in-flight
            conflicts); disable for an LSCD ablation contrast.
    """
    program = [builder.rng.randrange(num_handlers) for _ in range(program_length)]

    # Write the bytecode into memory with real stores (once — phase
    # re-entry reuses the installed program).
    pc_init = code_base
    if not builder.image.is_written(bytecode_base, 4):
        for i, op in enumerate(program):
            builder.store(pc_init, addr=bytecode_base + i * 4, value=op, size=4)
            builder.branch(pc_init + 4, taken=i != program_length - 1, target=pc_init)
    handler_visits = [0] * num_handlers

    dispatch_pc = code_base + 0x100
    handler_pc = [code_base + 0x200 + h * 0x80 for h in range(num_handlers)]
    sp = 0
    ip = 0
    while not builder.full(n_instructions):
        op = program[ip % program_length]
        # Dispatch: load the opcode, indirect-branch to its handler.
        builder.load(
            dispatch_pc,
            dests=(_R_OP,),
            addr=bytecode_base + (ip % program_length) * 4,
            size=4,
            srcs=(_R_IP,),
        )
        builder.alu(dispatch_pc + 4, _R_IP, srcs=(_R_IP,), value=ip + 1)
        # Dispatch-table entry: handler address from a constant table.
        builder.load(
            dispatch_pc + 12,
            dests=(_R_HANDLER,),
            addr=globals_base - 0x400 + op * 8,
            size=8,
            srcs=(_R_OP,),
        )
        builder.indirect(dispatch_pc + 8, target=handler_pc[op], srcs=(_R_HANDLER,))

        hpc = handler_pc[op]
        # Handler-specific global load: the address depends only on
        # which handler this is — i.e., purely on the load path.  The
        # per-handler offset staggers bit 2 of the load PC, so the
        # load-path history actually encodes which handlers ran (real
        # code has loads at all alignments).
        builder.load(hpc + 4 * (op & 1), dests=(_R_TMP,), addr=globals_base + op * 64, size=8)
        # Second per-handler load, staggered by the next opcode bit, so
        # the load-path history encodes which handlers ran.
        builder.load(
            hpc + 0x20 + 4 * ((op >> 1) & 1),
            dests=(_R_TMP,),
            addr=globals_base + 0x2000 + op * 32,
            size=8,
        )
        # Inline-cache slot: per-handler address (PAP-trivial), value
        # rewritten every 16th visit of that handler — the rewrite has
        # long committed by the next visit (Figure 1 committed band),
        # and each rewrite stales VTAGE's entry (Challenge #1).
        handler_visits[op] += 1
        builder.load(hpc + 0x28, dests=(_R_TMP,),
                     addr=globals_base + 0x4000 + op * 64, size=8)
        if handler_visits[op] % 16 == 0:
            builder.store(hpc + 0x2C, addr=globals_base + 0x4000 + op * 64,
                          value=builder.rng.getrandbits(63), size=8)
        if stack_conflicts and op % 4 < 2:
            if op % 2 == 0:
                # Push: store the TOS, in-flight by the time a near-term
                # pop reloads it.
                builder.store(
                    hpc + 8,
                    addr=_STACK + (sp % 16) * 8,
                    value=(ip * 2246822519) ^ op,
                    size=8,
                    srcs=(_R_TOS,),
                )
                sp += 1
            elif sp > 0:
                sp -= 1
                builder.load(hpc + 8, dests=(_R_TOS,), addr=_STACK + (sp % 16) * 8, size=8)
        builder.alu(hpc + 12, _R_TOS, srcs=(_R_TOS, _R_TMP))
        builder.branch(hpc + 16, taken=True, target=dispatch_pc)
        # VM housekeeping: an allocation-pointer word polled sparsely
        # and bumped half-way between polls — the bump has committed by
        # the next poll (Figure 1 committed conflicts).
        if ip % 40 == 0:
            builder.load(dispatch_pc + 16, dests=(_R_TMP,),
                         addr=globals_base - 0x800, size=8)
        if ip % 40 == 20:
            builder.store(dispatch_pc + 20, addr=globals_base - 0x800,
                          value=ip * 48, size=8)
        ip += 1
