"""Pointer-chasing kernels (mcf, omnetpp, astar stand-ins).

A linked list is *built with real stores* during an initialization
phase, then traversed repeatedly.  Traversal loads are serially
dependent (load -> address of next load), so hiding them is where value
prediction pays most.  With ``mutate_every`` set, the list is re-linked
periodically: the re-linking stores are committed long before the next
traversal, so a last-value/VTAGE predictor goes stale (Challenge #1)
while DLVP reads the post-store truth straight from the cache.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadBuilder

_R_NODE = 5
_R_PAYLOAD = 6
_R_ACC = 7
_R_DESC = 4
_NODE_BYTES = 32


def pointer_chase(
    builder: WorkloadBuilder,
    n_instructions: int,
    nodes: int = 256,
    mutate_every: int = 0,
    code_base: int = 0x30000,
    heap_base: int = 0x400000,
    shuffle: bool = True,
) -> None:
    """Build, then repeatedly walk, a singly linked list.

    Args:
        nodes: List length.
        mutate_every: Re-link a random node once per this many
            traversals (0 = never), creating committed conflicts.
        shuffle: Randomise node order in memory so traversal addresses
            are non-strided (defeats stride prefetching, not PAP).
    """
    # Keep the initialization phase a bounded share of the budget.
    nodes = min(nodes, max(8, n_instructions // 12))
    order = list(range(nodes))
    if shuffle:
        builder.rng.shuffle(order)
    node_addr = [heap_base + slot * _NODE_BYTES for slot in order]

    # Initialization phase: link the list and give each node a payload
    # (once — phase re-entry walks the existing list).
    pc_init = code_base
    if not builder.image.is_written(node_addr[0], 8):
        for idx in range(nodes):
            next_addr = node_addr[(idx + 1) % nodes]
            builder.store(pc_init, addr=node_addr[idx], value=next_addr, size=8)
            builder.store(pc_init + 4, addr=node_addr[idx] + 8, value=idx * 1013904223, size=8)
            builder.branch(pc_init + 8, taken=idx != nodes - 1, target=pc_init)

    pc = code_base + 0x100
    traversal = 0
    head_literal = heap_base - 0x100     # &list_head, a constant literal
    while not builder.full(n_instructions):
        builder.literal_load(pc + 0x40, _R_NODE, head_literal)
        for idx in range(nodes):
            if builder.full(n_instructions):
                return
            addr = node_addr[idx]
            builder.load(pc, dests=(_R_NODE,), addr=addr, size=8, srcs=(_R_NODE,))
            builder.load(pc + 4, dests=(_R_PAYLOAD,), addr=addr + 8, size=8, srcs=(_R_NODE,))
            # Type-descriptor load: every node shares one descriptor
            # (constant address and value, like a vtable pointer).
            builder.literal_load(pc + 8, _R_DESC, heap_base - 0x80)
            builder.alu(pc + 12, _R_ACC, srcs=(_R_ACC, _R_PAYLOAD, _R_DESC))
            builder.branch(pc + 16, taken=idx != nodes - 1, target=pc)
        traversal += 1
        if mutate_every and traversal % mutate_every == 0:
            # Re-link one random node: a committed conflicting store for
            # the next traversal's next-pointer load.
            victim = builder.rng.randrange(nodes)
            builder.store(
                pc + 16,
                addr=node_addr[victim],
                value=node_addr[(victim + 1) % nodes],
                size=8,
            )
            builder.store(
                pc + 20,
                addr=node_addr[victim] + 8,
                value=builder.rng.getrandbits(63),
                size=8,
            )
