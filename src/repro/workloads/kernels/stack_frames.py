"""Call-tree kernels with register save/restore (perlbmk, gcc, crafty
stand-ins).

The behavioural core of the paper's Figure 1 and its biggest winner:

* a callee's prologue *stores* caller registers to the stack and its
  epilogue *reloads* them — the reload address per stack depth is
  rock-stable (perfect for PAP) but the *values* change on nearly every
  call, so a value predictor stays untrained or stale while DLVP reads
  the just-committed stack slots from the data cache;
* the reload sits behind a serial address-generation chain and feeds a
  data-dependent branch TAGE cannot learn — with value prediction the
  branch resolves at its own earliest issue instead of waiting for the
  chain + load, slashing the misprediction penalty.  This is the
  paper's "positive interaction between value prediction and branch
  prediction" that makes perlbmk's speedup an outlier (Section 5.2.3);
* epilogues can use LDP-style paired loads, feeding the Section 5.2.2
  multi-destination analysis.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadBuilder

_R_A = 8
_R_B = 9
_R_C = 10
_R_V = 11
_R_ENV = 12
_STACK_BASE = 0x7F0000
_FRAME_BYTES = 64


def call_tree(
    builder: WorkloadBuilder,
    n_instructions: int,
    depth: int = 6,
    body_loads: int = 2,
    chain_length: int = 10,
    chain_divs: int = 0,
    data_branch_bias: float = 0.5,
    use_ldp: bool = True,
    code_base: int = 0x40000,
    data_base: int = 0x500000,
) -> None:
    """Walk a call tree of ``depth`` levels repeatedly.

    Args:
        depth: Maximum call depth per walk (stack slots cycle).
        body_loads: Global-table loads in each callee body.
        chain_length: Serial ALU ops recomputing the frame pointer
            before the epilogue reload — the longer the chain, the more
            a value-predicted reload saves on the dependent branch.
        data_branch_bias: Probability the reload-fed branch is taken
            (0.5 = maximally unpredictable for TAGE).
        use_ldp: Restore register pairs with one two-destination load.
    """
    call_counter = 0

    def do_call(level: int) -> None:
        nonlocal call_counter
        if builder.full(n_instructions) or level >= depth:
            return
        call_counter += 1
        my_call = call_counter
        sp = _STACK_BASE - level * _FRAME_BYTES
        pc = code_base + level * 0x100
        builder.call(pc, target=pc + 0x10)

        # Prologue: spill two registers whose contents are effectively
        # random per call (live values of the caller's computation).
        spill_a = builder.rng.getrandbits(63)
        builder.store(pc + 0x10, addr=sp, value=spill_a, size=8, srcs=(_R_A,))
        builder.store(pc + 0x14, addr=sp + 8, value=my_call ^ 0xDEAD, size=8, srcs=(_R_B,))

        # Body: environment literal plus varying-address table loads.
        builder.literal_load(pc + 0x18, _R_ENV, data_base - 0x40)
        for k in range(body_loads):
            slot = (my_call + k * 7) % 64
            builder.load(
                pc + 0x1C + 4 * k,
                dests=(_R_V,),
                addr=data_base + level * 0x1000 + slot * 8,
                size=8,
                srcs=(_R_ENV,),
            )
        builder.alu(pc + 0x30, _R_C, srcs=(_R_V, _R_C))

        do_call(level + 1)

        # Returning: recompute the frame pointer through a serial chain
        # (address arithmetic the compiler spread across the epilogue).
        # Optional serial divides model hash/modulo computations: lots
        # of latency from few instructions.
        from repro.isa import OpClass
        for c in range(chain_divs):
            builder.alu(pc + 0x38 - 4 * c, _R_C, srcs=(_R_C,), op=OpClass.DIV)
        for c in range(chain_length):
            builder.alu(pc + 0x40 + 4 * c, _R_C, srcs=(_R_C,))

        # Epilogue: reload the spilled pair — a committed-store conflict
        # with this call's own prologue by the time we return here.
        if use_ldp:
            restored = builder.load(
                pc + 0x40 + 4 * chain_length,
                dests=(_R_A, _R_B),
                addr=sp,
                size=8,
                srcs=(_R_C,),
            )
        else:
            restored = builder.load(
                pc + 0x40 + 4 * chain_length, dests=(_R_A,), addr=sp, size=8, srcs=(_R_C,)
            )
            builder.load(
                pc + 0x44 + 4 * chain_length, dests=(_R_B,), addr=sp + 8, size=8, srcs=(_R_C,)
            )
        # The perlbmk effect: a hard-to-predict branch fed by the reload.
        # Bit 13 of the spilled hash is effectively random across calls,
        # so TAGE cannot learn the direction, while the value dependence
        # on the reload is architecturally real.
        taken = bool((restored[0] >> 13) & 1)
        if data_branch_bias != 0.5:
            taken = builder.rng.random() < data_branch_bias
        builder.branch(
            pc + 0x48 + 4 * chain_length,
            taken=taken,
            target=pc + 0x60 + 4 * chain_length,
            srcs=(_R_A,),
        )
        builder.ret(pc + 0x4C + 4 * chain_length, return_to=pc + 4)

    while not builder.full(n_instructions):
        do_call(0)
