"""Table-driven state-machine kernels (EEMBC tblook/canrdr/ttsprk,
sjeng stand-ins).

The discriminating PAP-versus-CAP case: several branch paths converge
on one *shared* static load (a common lookup routine), and the address
that load will use is an exact function of which path led to it.
PAP's load-path history separates those contexts cleanly; CAP, keyed by
the shared load's own address history, sees an irregular interleaving
it cannot learn (Section 5.1's coverage/accuracy gap).
"""

from __future__ import annotations

from repro.workloads.base import WorkloadBuilder

_R_STATE = 19
_R_IN = 20
_R_OUT = 21


def table_state_machine(
    builder: WorkloadBuilder,
    n_instructions: int,
    num_states: int = 6,
    input_period: int = 17,
    code_base: int = 0x70000,
    table_base: int = 0x800000,
    path_loads: int = 2,
    random_states: bool = False,
) -> None:
    """Drive a finite state machine from a periodic input sequence.

    Each state has its own prelude block containing ``path_loads``
    loads (with state-distinct PCs — the path signature), then jumps to
    the shared lookup, whose address is ``table + state * 8``.  The
    input sequence is periodic, so the state sequence — and therefore
    the path — is learnable, while the shared load's raw address
    sequence interleaves all states.
    """
    state = 0
    step = 0
    shared_pc = code_base + 0x800
    while not builder.full(n_instructions):
        # Periodic input with a twist so the state sequence is long-periodic.
        # The input computation *consumes the previous step's table read*
        # (srcs includes _R_STATE), so steps are serially coupled through
        # memory — the chain an address-predicted lookup breaks.
        value = (step * step // input_period + step) % input_period
        builder.alu(code_base, _R_IN, srcs=(_R_STATE,), value=value)
        builder.alu(code_base + 4, _R_IN, srcs=(_R_IN,), value=value)

        # State-specific prelude: distinct load PCs mark the path.  Each
        # load's PC is staggered by one bit of the state number, so the
        # bit-2 stream entering the load-path history register literally
        # spells out which state ran — the paper's observation that
        # load-path history is "less compact but allows the predictor to
        # distinguish" contexts depends on exactly this PC diversity,
        # which compiled code gets for free from varied layouts.
        prelude_pc = code_base + 0x100 + state * 0x80
        for k in range(path_loads):
            builder.load(
                prelude_pc + 8 * k + 4 * ((state >> k) & 1),
                dests=(_R_OUT,),
                addr=table_base + 0x4000 + state * 0x100 + k * 8,
                size=8,
            )
        builder.branch(prelude_pc + 8 * path_loads, taken=True, target=shared_pc)

        # Shared lookup: one static load, path-determined address.
        builder.load(
            shared_pc,
            dests=(_R_STATE,),
            addr=table_base + state * 8,
            size=8,
            srcs=(_R_STATE, _R_IN),
        )
        builder.alu(shared_pc + 4, _R_OUT, srcs=(_R_STATE, _R_IN))
        builder.branch(shared_pc + 8, taken=True, target=code_base)

        if random_states:
            # Data-dependent transitions: the state sequence is
            # aperiodic, so a per-load address history (CAP) sees an
            # unlearnable interleaving at the shared lookup — while the
            # *current* path, spelled into the load-path history by the
            # prelude loads, still pins the address down (PAP's edge,
            # Section 5.1).  ``path_loads`` should be fat enough that
            # the 16-bit history window holds at most the last couple
            # of states.
            state = builder.rng.randrange(num_states)
        else:
            state = (state + 1 + value) % num_states
        step += 1
