"""Flag-ring loops (perl-style regex/interpreter flag polling).

The distilled "perlbmk effect" (Section 5.2.3), built as an unrolled
ring of flag words:

* the loop body is unrolled over ``ring_slots`` static blocks, so each
  block's flag load has a *constant* address — PAP-trivial after 8
  observations;
* every block also *rewrites* the slot ``update_lead`` blocks ahead
  with a fresh random value, far enough ahead that the store has
  committed by the time that slot's consumer is fetched (no in-flight
  hazard), yet the consumer branch sees a brand-new random bit on every
  visit — TAGE-hostile forever, and VTAGE-hostile because the value
  never repeats (Challenge #1 at maximum intensity);
* the flag load's address computation sits behind serial divides, so
  in the baseline the dependent branch resolves late, while a value
  prediction resolves it at its earliest issue — value prediction
  amplifying branch prediction, the interaction the paper credits for
  perlbmk's 71% outlier.
"""

from __future__ import annotations

from repro.isa import OpClass
from repro.workloads.base import WorkloadBuilder

_R_X = 16
_R_FLAG = 17
_R_I = 18


def flag_check_loop(
    builder: WorkloadBuilder,
    n_instructions: int,
    chain_divs: int = 2,
    chain_alus: int = 2,
    ring_slots: int = 48,
    update_lead: int = 32,
    code_base: int = 0xC0000,
    flags_base: int = 0xD00000,
    filler_alus: int = 2,
) -> None:
    """Poll a ring of flag words behind a serial computation chain.

    Args:
        chain_divs/chain_alus: Serial ops the flag load's address
            nominally depends on (latency without instruction count).
        ring_slots: Unrolled blocks / flag words.
        update_lead: How many blocks ahead each block's refresh store
            lands; ``update_lead x block_length`` instructions must
            exceed the ROB span (224) so the store commits before its
            consumer is fetched.
        filler_alus: Independent work per block (ILP backdrop).
    """
    if not 0 < update_lead < ring_slots:
        raise ValueError("update_lead must be in (0, ring_slots)")
    # Seed the flag words (once — phase re-entry reuses the live ring).
    if not builder.image.is_written(flags_base, 8):
        for w in range(ring_slots):
            builder.store(
                code_base, addr=flags_base + w * 64,
                value=builder.rng.getrandbits(63), size=8,
            )

    i = 0
    while not builder.full(n_instructions):
        w = i % ring_slots
        pc = code_base + 0x100 + w * 0x100
        for c in range(chain_divs):
            # Seed each iteration's chain from cheap per-iteration state
            # so the chain is serial *within* an iteration but does not
            # couple iterations (the OoO core can overlap them).
            srcs = (_R_I,) if c == 0 else (_R_X,)
            builder.alu(pc + 4 * c, _R_X, srcs=srcs, op=OpClass.DIV)
        for c in range(chain_alus):
            builder.alu(pc + 4 * (chain_divs + c), _R_X, srcs=(_R_X,))
        flag = builder.load(
            pc + 4 * (chain_divs + chain_alus),
            dests=(_R_FLAG,),
            addr=flags_base + w * 64,
            size=8,
            srcs=(_R_X,),
        )[0]
        builder.branch(
            pc + 4 * (chain_divs + chain_alus) + 4,
            taken=bool((flag >> 17) & 1),
            target=pc + 0x40,
            srcs=(_R_FLAG,),
        )
        for f in range(filler_alus):
            builder.alu(pc + 0x48 + 4 * f, _R_I, srcs=(_R_I,))
        # Refresh the slot far ahead: committed by the time its consumer
        # block is fetched, but a brand-new random value every pass.
        ahead = (w + update_lead) % ring_slots
        builder.store(
            pc + 0x60,
            addr=flags_base + ahead * 64,
            value=builder.rng.getrandbits(63),
            size=8,
        )
        builder.branch(pc + 0x64, taken=True, target=code_base + 0x100)
        i += 1
