"""Adversarial conflicting-store flood.

The worst case the paper's title names: loads whose *addresses* are
perfectly predictable — each static load PC reads one fixed global
slot, so PAP and CAP both train to ~100% address coverage — while a
randomly-gated store to that same slot lands a handful of instructions
earlier.  Whenever the store is still in flight, the predictor's early
cache probe reads the stale pre-store value and the commit-time check
flushes (Figure 1's "in-flight conflict" band, floored).  This is not
one of the paper's 78 benchmarks; it lives in the suite's
``adversarial`` group as a stress workload for the serve farm's chaos
tests and for bounding scheme behaviour under conflict pressure.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadBuilder

_MASK64 = (1 << 64) - 1
_R_VAL = 24
_R_MIX = 25
_R_OUT = 26


def conflicting_store_flood(
    builder: WorkloadBuilder,
    n_instructions: int,
    slots: int = 32,
    store_rate: float = 0.75,
    gap_instructions: int = 3,
    code_base: int = 0xD0000,
    table_base: int = 0xE00000,
) -> None:
    """Flood loop-stable load addresses with conflicting stores.

    Args:
        slots: Number of global slots; each gets its own static code
            block, so every load PC has one constant address.
        store_rate: Probability a visit rewrites the slot just before
            reloading it (higher = more in-flight conflicts).
        gap_instructions: Filler ALU ops between store and reload;
            small enough that the store is still in the pipeline.
    """
    pc = 0
    i = 0
    while not builder.full(n_instructions):
        slot = i % slots
        addr = table_base + slot * 8
        # Per-slot static code block: the load PC below always reads
        # ``addr`` — a constant — which is what makes the address side
        # trivially predictable and the value side treacherous.
        pc = code_base + slot * 0x40
        if builder.rng.random() < store_rate:
            value = (i * 0x9E3779B97F4A7C15 + slot) & _MASK64
            builder.alu(pc, _R_VAL, srcs=(_R_VAL,), value=value)
            builder.store(pc + 4, addr=addr, value=value, size=8,
                          srcs=(_R_VAL,))
        for k in range(gap_instructions):
            builder.alu(pc + 8 + 4 * k, _R_MIX, srcs=(_R_MIX,))
        builder.load(
            pc + 8 + 4 * gap_instructions, dests=(_R_OUT,), addr=addr, size=8
        )
        builder.alu(pc + 12 + 4 * gap_instructions, _R_OUT, srcs=(_R_OUT,))
        builder.branch(
            pc + 16 + 4 * gap_instructions, taken=True, target=code_base
        )
        i += 1
