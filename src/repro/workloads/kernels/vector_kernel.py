"""Vector/multi-destination kernels (h264ref, namd, EEMBC idctrn/fft
stand-ins).

Heavy in VLD (128-bit vector loads) and LDM (load-multiple) — the
instruction types the paper found poison vanilla VTAGE: each vector
value burns two 64-bit predictor entries, an LDM up to sixteen, and a
single wrong slot flushes the pipe.  DLVP predicts one base address per
instruction regardless (Section 2.1, "Storage efficiency").
"""

from __future__ import annotations

from repro.isa import vector_reg
from repro.workloads.base import WorkloadBuilder

_R_ACC = 22
_R_IDX = 23


def vector_filter(
    builder: WorkloadBuilder,
    n_instructions: int,
    taps: int = 8,
    frame_bytes: int = 8 * 1024,
    code_base: int = 0x80000,
    data_base: int = 0x900000,
    coeff_base: int = 0x910000,
    ref_base: int = 0xA40000,
    ldm_regs: int = 4,
    write_back: bool = True,
    ref_blocks: int = 0,
    ref_spread_bytes: int = 512 * 1024,
    header_pairs: int = 8,
    version_period: int = 200,
) -> None:
    """A FIR-like filter over frames of vector data.

    Per output sample: one VLD of input data, one LDM of ``ldm_regs``
    coefficients, FP multiply-accumulate, and an (optional) write-back
    that later frames re-read — committed conflicts on vector data.

    ``ref_blocks > 0`` adds an unrolled reference-block pass: each of
    the blocks has its own static load with a fixed address, but the
    addresses are spread over ``ref_spread_bytes`` so the streaming
    traffic evicts them from L1 between visits.  The address predicts
    perfectly, the probe misses, and DLVP turns the miss into a
    prefetch — the Figure 5 behaviour the paper reports for h264ref.
    """
    samples = frame_bytes // 16
    pc = code_base
    i = 0
    from repro.isa import OpClass

    ref_stride = max(64, (ref_spread_bytes // max(1, ref_blocks)) & ~63)
    hdr_base = coeff_base + 0x8000
    while not builder.full(n_instructions):
        sample = i % samples
        if header_pairs:
            # Frame-header LDP: {buffer pointer, frame version} loaded as
            # a pair.  The pointer never changes; the version word is
            # bumped every ``version_period`` samples.  This is the
            # Section 5.2.2 trap for vanilla VTAGE: both slots gain
            # confidence, then every version bump turns into a confident
            # wrong prediction on slot 2 — and mispredicting *any* slot
            # of a multi-destination load flushes the pipeline.  The
            # static opcode filter simply never predicts LDPs.
            site = i % header_pairs
            builder.load(
                code_base + 0x2000 + site * 0x40,
                dests=(_R_IDX, _R_ACC),
                addr=hdr_base + site * 16,
                size=8,
            )
            if i % version_period == version_period - 1:
                bump_site = (i // version_period) % header_pairs
                builder.store(code_base + 0x2800, addr=hdr_base + bump_site * 16 + 8,
                              value=i // version_period, size=8)
        if ref_blocks and i % max(1, samples // ref_blocks) == 0:
            block = (i // max(1, samples // ref_blocks)) % ref_blocks
            ref_pc = code_base + 0x1000 + block * 0x40
            builder.load(ref_pc, dests=(_R_ACC,), addr=ref_base + block * ref_stride, size=8)
            builder.branch(ref_pc + 4, taken=True, target=pc)
        in_addr = data_base + sample * 16
        builder.load(
            pc,
            dests=(vector_reg(0),),
            addr=in_addr,
            size=16,
            is_vector=True,
            srcs=(_R_IDX,),
        )
        coeff_addr = coeff_base + (i % taps) * 8 * ldm_regs
        builder.load(
            pc + 4,
            dests=tuple(range(0, ldm_regs)),
            addr=coeff_addr,
            size=8,
        )
        builder.alu(pc + 8, _R_ACC, srcs=(vector_reg(0), 0), op=OpClass.FP)
        builder.alu(pc + 12, _R_IDX, srcs=(_R_IDX,))
        if write_back and sample % 4 == 0:
            builder.store(
                pc + 16,
                addr=data_base + sample * 16,
                value=builder.regs.read(_R_ACC),
                size=8,
                srcs=(_R_ACC,),
            )
        builder.branch(pc + 20, taken=sample != samples - 1, target=pc)
        i += 1
