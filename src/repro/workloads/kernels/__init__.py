"""Kernel families the suite instantiates.

Each kernel is a plain function ``kernel(builder, n_instructions,
**params)`` that drives a :class:`~repro.workloads.base.WorkloadBuilder`
until the instruction budget is reached.  Families are chosen to cover
the behaviours the paper's evaluation depends on; see each module's
docstring for which figures it feeds.
"""

from repro.workloads.kernels.streaming import streaming_sum, matrix_multiply
from repro.workloads.kernels.pointer_chase import pointer_chase
from repro.workloads.kernels.stack_frames import call_tree
from repro.workloads.kernels.hash_table import hash_lookup
from repro.workloads.kernels.interpreter import bytecode_interpreter
from repro.workloads.kernels.state_machine import table_state_machine
from repro.workloads.kernels.vector_kernel import vector_filter
from repro.workloads.kernels.string_ops import string_scan
from repro.workloads.kernels.producer_consumer import producer_consumer
from repro.workloads.kernels.store_flood import conflicting_store_flood
from repro.workloads.kernels.flag_loop import flag_check_loop
from repro.workloads.kernels.object_graph import object_graph
from repro.workloads.kernels.mixed import mixed_phases

__all__ = [
    "streaming_sum",
    "matrix_multiply",
    "pointer_chase",
    "call_tree",
    "hash_lookup",
    "bytecode_interpreter",
    "table_state_machine",
    "vector_filter",
    "string_scan",
    "producer_consumer",
    "conflicting_store_flood",
    "flag_check_loop",
    "object_graph",
    "mixed_phases",
]
