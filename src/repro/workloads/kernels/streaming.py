"""Streaming/array kernels (EEMBC filters, linpack, lbm, milc stand-ins).

Behavioural signature: strided load addresses that repeat across array
re-traversals (high address repeatability — Figure 2's left series),
values that are stable per address (no stores to the arrays), and
highly predictable loop branches.  Both address and value predictors do
well here; DLVP's edge is its faster confidence ramp.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadBuilder

_R_ACC = 1
_R_DATA = 2
_R_DATA2 = 3
_R_IDX = 4
_R_SCALE = 5
_R_STAT = 6


def streaming_sum(
    builder: WorkloadBuilder,
    n_instructions: int,
    array_bytes: int = 16 * 1024,
    stride: int = 8,
    code_base: int = 0x10000,
    data_base: int = 0x100000,
    use_pairs: bool = False,
    update_period: int = 64,
) -> None:
    """Repeatedly traverse an array accumulating its elements.

    Args:
        use_pairs: Emit LDP-style two-destination loads, exercising the
            multi-destination path (Figure 7's VTAGE pressure).
        update_period: Iterations between updates of the mutable global
            statistic (committed store-load conflicts).
    """
    elements = array_bytes // stride
    literal_addr = data_base - 0x1000        # scale-factor literal
    global_addr = data_base - 0x2000         # running statistic (mutable)
    pc = code_base
    i = 0
    while not builder.full(n_instructions):
        addr = data_base + (i % elements) * stride
        # Literal + mutable-global loads: the stable-address population
        # every compiled binary has (and Figure 2 depends on).  The
        # statistic is *polled sparsely* — the gap between consecutive
        # polls exceeds the ROB span, so the intervening update store
        # has committed by the next poll: a Figure 1 committed conflict.
        if i % update_period == 0:
            # The poll sits at its own fetch-group-aligned PC *ahead* of
            # the loop body (emitted first), so its presence never
            # re-slots the body loads within their fetch groups.
            builder.load(pc - 16, dests=(_R_STAT,), addr=global_addr, size=8)
        builder.literal_load(pc, _R_SCALE, literal_addr)
        # Read-only config word (never stored to): conflict-free and
        # trivially predictable — the stable-load mass of real binaries.
        builder.literal_load(pc + 4, _R_STAT, literal_addr + 0x40)
        if use_pairs:
            builder.load(pc + 8, dests=(_R_DATA, _R_DATA2), addr=addr, size=8, srcs=(_R_IDX,))
            builder.alu(pc + 12, _R_ACC, srcs=(_R_ACC, _R_DATA, _R_SCALE))
            builder.alu(pc + 16, _R_ACC, srcs=(_R_ACC, _R_DATA2))
            builder.alu(pc + 20, _R_IDX, srcs=(_R_IDX,))
        else:
            builder.load(pc + 8, dests=(_R_DATA,), addr=addr, size=8, srcs=(_R_IDX,))
            builder.alu(pc + 12, _R_ACC, srcs=(_R_ACC, _R_DATA, _R_SCALE))
            builder.alu(pc + 16, _R_IDX, srcs=(_R_IDX,))
        if i % update_period == update_period // 2:
            # Update the statistic mid-period: committed long before the
            # next poll reads it.
            builder.store(pc + 24, addr=global_addr, value=i, size=8, srcs=(_R_STAT,))
        builder.branch(pc + 28, taken=(i % elements) != elements - 1, target=pc)
        i += 1


def matrix_multiply(
    builder: WorkloadBuilder,
    n_instructions: int,
    dim: int = 24,
    code_base: int = 0x20000,
    a_base: int = 0x200000,
    b_base: int = 0x240000,
    c_base: int = 0x280000,
) -> None:
    """Dense matrix multiply: nested loops, two read streams, one write.

    The C-matrix writes then get re-read on the next full pass —
    *committed* load-store conflicts (Figure 1's shaded region), which
    DLVP survives and a last-value predictor does not.
    """
    pc = code_base
    mask = (1 << 64) - 1
    ik = 0
    # ikj loop order: every load's address changes on every visit, so an
    # address predictor (correctly) never gains confidence on the array
    # streams — only the descriptor literals are covered.  The C-row
    # update stream still produces genuine store->load conflicts when a
    # row is revisited on the next k step (Figure 1 material).
    while not builder.full(n_instructions):
        i = (ik // dim) % dim
        k = ik % dim
        # Descriptor literal + the hoisted A element.  Their PC bit-2
        # pattern (0, 1) continues the inner loop's (0, 1) alternation,
        # so the load-path history register stays uniform across the
        # loop nest — matching compiled FP kernels, whose tight loads
        # fall into regular layouts, and keeping the address predictor
        # from latching onto loop-boundary artifacts.
        builder.literal_load(pc + 32, _R_SCALE, a_base - 0x100)
        a_addr = a_base + (i * dim + k) * 8
        va = builder.load(pc + 36, dests=(_R_DATA,), addr=a_addr, size=8, srcs=(_R_SCALE,))[0]
        for j in range(dim):
            if builder.full(n_instructions):
                return
            b_addr = b_base + (k * dim + j) * 8
            c_addr = c_base + (i * dim + j) * 8
            vb = builder.load(pc, dests=(_R_DATA2,), addr=b_addr, size=8)[0]
            vc = builder.load(pc + 4, dests=(_R_ACC,), addr=c_addr, size=8)[0]
            acc = (vc + va * vb) & mask
            builder.alu(pc + 8, _R_ACC, srcs=(_R_DATA, _R_DATA2, _R_ACC), value=acc)
            builder.store(pc + 12, addr=c_addr, value=acc, size=8, srcs=(_R_ACC,))
            builder.branch(pc + 16, taken=j != dim - 1, target=pc)
        builder.branch(pc + 20, taken=True, target=pc + 28)
        ik += 1
