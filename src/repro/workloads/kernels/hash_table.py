"""Hash-table lookup kernels (nat, gobmk, xalancbmk stand-ins).

The VTAGE-favouring profile (the paper's *nat*): lookup addresses are
data-dependent and erratic — an address predictor cannot build
confidence — but the *loaded values* are highly repetitive (most probes
hit empty slots or a common status word), so a context-based value
predictor covers them well.
"""

from __future__ import annotations

from repro.isa import OpClass
from repro.workloads.base import WorkloadBuilder

_R_KEY = 12
_R_SLOT = 13
_R_VAL = 14
_R_BASE = 11
_R_SEED = 10
_EMPTY = 0


def hash_lookup(
    builder: WorkloadBuilder,
    n_instructions: int,
    buckets: int = 512,
    occupancy: float = 0.15,
    key_space: int = 4096,
    code_base: int = 0x50000,
    table_base: int = 0x600000,
    insert_every: int = 0,
) -> None:
    """Probe a mostly-empty hash table with random keys.

    Args:
        occupancy: Fraction of buckets holding a (distinct) value; the
            rest read as the common EMPTY sentinel, which is what makes
            values predictable while addresses are not.
        insert_every: Insert (store) into a random bucket once per this
            many lookups (0 = read-only) — committed conflicts for the
            value predictor.
    """
    # Initialize: occupied buckets get distinct values, rest get EMPTY.
    # The init phase (2 instructions per bucket) is capped to a bounded
    # share of the budget.
    buckets = min(buckets, max(16, n_instructions // 6))
    pc_init = code_base
    if not builder.image.is_written(table_base, 8):
        occupied = set(
            builder.rng.sample(range(buckets), max(1, int(buckets * occupancy)))
        )
        for b in range(buckets):
            value = (b * 0x9E3779B1) | 1 if b in occupied else _EMPTY
            builder.store(pc_init, addr=table_base + b * 16, value=value, size=8)
            builder.branch(pc_init + 4, taken=b != buckets - 1, target=pc_init)

    pc = code_base + 0x100
    lookups = 0
    while not builder.full(n_instructions):
        lookups += 1
        key = builder.rng.randrange(key_space)
        bucket = (key * 2654435761) % buckets
        # Table descriptor loads: base pointer and hash seed literals.
        builder.literal_load(pc - 8, _R_BASE, table_base - 0x40)
        builder.literal_load(pc - 4, _R_SEED, table_base - 0x38)
        # The next key mixes in the previous probe's result (chained
        # lookups — NAT table walks, cuckoo rehash): probes are serially
        # coupled through the loaded value, which is the chain a value
        # predictor breaks (and an address predictor cannot, since the
        # bucket addresses stay erratic).
        builder.alu(pc, _R_KEY, srcs=(_R_KEY, _R_VAL), value=key)
        # Bucket = key mod buckets: a real division on the probe's
        # critical path, so the empty-check branch resolves late in the
        # baseline — a value-predicted probe result (VTAGE's forte here)
        # resolves it early.
        builder.alu(pc + 4, _R_SLOT, srcs=(_R_KEY, _R_SEED, _R_BASE), value=bucket, op=OpClass.DIV)
        value = builder.load(
            pc + 8, dests=(_R_VAL,), addr=table_base + bucket * 16, size=8, srcs=(_R_SLOT,)
        )[0]
        builder.branch(pc + 12, taken=value == _EMPTY, target=pc + 0x40, srcs=(_R_VAL,))
        if value != _EMPTY:
            # Hit path: read the payload word next to the tag.
            builder.load(pc + 16, dests=(_R_VAL,), addr=table_base + bucket * 16 + 8, size=8)
            builder.alu(pc + 20, _R_VAL, srcs=(_R_VAL,))
        if insert_every and lookups % insert_every == 0:
            victim = builder.rng.randrange(buckets)
            builder.store(
                pc + 24,
                addr=table_base + victim * 16,
                value=(lookups * 0x85EBCA6B) | 1,
                size=8,
            )
        builder.branch(pc + 28, taken=True, target=pc)
