"""String/byte-processing kernels (gzip, bzip2, parser, text codecs).

Word-granular scans with data-dependent early exits: branch behaviour
is the bottleneck (hard-to-predict compare branches on loaded data),
and strided scan loads give the stride prefetcher and both predictor
families plenty to chew on.  The output buffer is written and then
rescanned — committed conflicts at scale (bzip2's profile in Figure 9).
"""

from __future__ import annotations

from repro.workloads.base import WorkloadBuilder

_R_CH = 24
_R_PTR = 25
_R_CNT = 26
_R_NEEDLE = 23


def string_scan(
    builder: WorkloadBuilder,
    n_instructions: int,
    buffer_bytes: int = 32 * 1024,
    match_rate: float = 0.1,
    rewrite_fraction: float = 0.05,
    code_base: int = 0x90000,
    src_base: int = 0xA00000,
    dst_base: int = 0xA80000,
) -> None:
    """Scan a buffer for matches, copying matched runs to an output
    buffer that later passes re-read.

    Args:
        match_rate: Probability a scanned word "matches" (taken branch);
            low rates make the match branch hard for TAGE.
        rewrite_fraction: Fraction of scanned words whose copy is
            re-read on the next pass (committed store-load conflicts).
    """
    words = buffer_bytes // 8
    pc = code_base
    i = 0
    copied = 0
    needle_literal = src_base - 0x200    # the pattern being searched for
    count_global = src_base - 0x100      # bytes-processed statistic
    while not builder.full(n_instructions):
        offset = (i % words) * 8
        builder.literal_load(pc - 8, _R_NEEDLE, needle_literal)
        builder.literal_load(pc - 12, _R_CNT, needle_literal + 0x20)
        # Sparse progress poll: the byte counter is read every 48
        # iterations and updated half-way between polls, so the update
        # store has committed by the next poll (Figure 1's committed
        # conflicts).
        if i % 48 == 0:
            builder.load(pc - 4, dests=(_R_CNT,), addr=count_global, size=8)
        if i % 48 == 24:
            builder.store(pc + 0x30, addr=count_global, value=i * 8, size=8, srcs=(_R_CNT,))
        value = builder.load(pc, dests=(_R_CH,), addr=src_base + offset, size=8, srcs=(_R_PTR,))[0]
        matched = builder.rng.random() < match_rate
        builder.branch(pc + 4, taken=matched, target=pc + 0x20, srcs=(_R_CH,))
        if matched:
            builder.store(
                pc + 0x20,
                addr=dst_base + (copied % words) * 8,
                value=value,
                size=8,
                srcs=(_R_CH,),
            )
            copied += 1
            if builder.rng.random() < rewrite_fraction:
                # Verification pass: re-read a recent copy (committed
                # conflict with the store above once it retires).
                back = max(0, copied - 64)
                builder.load(pc + 0x24, dests=(_R_CNT,), addr=dst_base + (back % words) * 8, size=8)
        builder.alu(pc + 8, _R_PTR, srcs=(_R_PTR,))
        builder.branch(pc + 12, taken=(i % words) != words - 1, target=pc)
        i += 1
