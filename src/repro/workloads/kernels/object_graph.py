"""Object-graph navigation kernels (vortex, xalancbmk, OO/managed code).

The purest expression of why value prediction pays: operations
dereference fixed chains of object fields (``root->ctx->node->leaf``),
so each load's *address* is stable per site (PAP-perfect) and its
*value* is a pointer that rarely changes (VTAGE-learnable) — but the
loads are serially dependent, each feeding the next one's address.
Breaking the chain with predicted values collapses
``depth x load-latency`` of critical path per operation.

Periodic field *updates* re-point part of the graph: the updating store
commits long before the next navigation, so value predictors go stale
(Challenge #1) and must retrain through their slow confidence ramp,
while DLVP's probe reads the new pointer immediately.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadBuilder

_R_PTR = 13
_R_LEAF = 14
_R_ROOT = 15
_OBJ_BYTES = 64


def object_graph(
    builder: WorkloadBuilder,
    n_instructions: int,
    chain_depth: int = 4,
    num_roots: int = 4,
    repoint_every: int = 0,
    couple_every: int = 4,
    code_base: int = 0xB0000,
    heap_base: int = 0xC00000,
    compute_ops: int = 2,
) -> None:
    """Navigate fixed field chains hanging off a few root objects.

    Args:
        chain_depth: Dependent dereferences per operation.
        num_roots: Distinct chains, visited round-robin (each gets its
            own static code, so the load path identifies the chain).
        repoint_every: Re-point one mid-chain field every N operations
            (0 = static graph) — committed conflicts for value
            predictors, invisible to address prediction.
        compute_ops: ALU work on the leaf value per operation.
    """
    # Lay out the chains: root r's object k sits at a fixed slot; each
    # object's first field holds the address of the next object.
    def obj_addr(root: int, k: int) -> int:
        return heap_base + (root * (chain_depth + 1) + k) * _OBJ_BYTES

    pc_init = code_base
    if builder.image.is_written(heap_base - 0x40, 8):
        roots_to_init = []          # phase re-entry: graph already live
    else:
        roots_to_init = list(range(num_roots))
    for root in roots_to_init:
        builder.store(pc_init + 12, addr=heap_base - 0x40 - root * 8,
                      value=obj_addr(root, 0), size=8)
        for k in range(chain_depth):
            builder.store(pc_init, addr=obj_addr(root, k), value=obj_addr(root, k + 1), size=8)
            builder.branch(pc_init + 4, taken=True, target=pc_init)
        builder.store(
            pc_init + 8,
            addr=obj_addr(root, chain_depth),
            value=(root + 1) * 0x9E3779B97F4A7C15,
            size=8,
        )

    op = 0
    while not builder.full(n_instructions):
        root = op % num_roots
        pc = code_base + 0x400 + root * 0x100
        # Root pointer literal, then the dependent dereference chain.
        # Every ``couple_every``-th operation's root selection consumes
        # the previous leaf (data-dependent traversal order), partially
        # serializing operations through their chains — the knob that
        # sets how navigation-bound the workload is.
        root_srcs = (_R_LEAF,) if couple_every and op % couple_every == 0 else ()
        builder.load(
            pc, dests=(_R_PTR,), addr=heap_base - 0x40 - root * 8, size=8, srcs=root_srcs
        )
        addr = obj_addr(root, 0)
        for k in range(chain_depth):
            values = builder.load(
                pc + 4 + 4 * k, dests=(_R_PTR,), addr=addr, size=8, srcs=(_R_PTR,)
            )
            addr = values[0]
        builder.load(pc + 4 + 4 * chain_depth, dests=(_R_LEAF,), addr=addr, size=8, srcs=(_R_PTR,))
        for c in range(compute_ops):
            builder.alu(pc + 8 + 4 * (chain_depth + c), _R_LEAF, srcs=(_R_LEAF,))
        builder.branch(pc + 8 + 4 * (chain_depth + compute_ops), taken=True,
                       target=code_base + 0x400)
        op += 1

        if repoint_every and op % repoint_every == 0:
            # Re-point a mid-chain field to a (new) clone slot, then the
            # clone points onward to the old target: same reachability,
            # different intermediate address/value.
            victim_root = builder.rng.randrange(num_roots)
            victim_k = builder.rng.randrange(max(1, chain_depth - 1))
            old_target = builder.image.read(obj_addr(victim_root, victim_k), 8)
            clone = heap_base + 0x100000 + (op % 512) * _OBJ_BYTES
            builder.store(pc + 0x40, addr=clone, value=old_target, size=8)
            builder.store(pc + 0x44, addr=obj_addr(victim_root, victim_k), value=clone, size=8)
