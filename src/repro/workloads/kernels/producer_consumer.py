"""Producer-consumer kernels with short store-to-load distance.

A stress test for the in-flight-conflict path: a value is stored and
reloaded within a handful of instructions, so the reload's conflicting
store is still in the pipeline when DLVP probes the cache (Figure 1's
"in-flight" band).  Without LSCD, DLVP flushes constantly here; with
it, the offending loads are filtered after a few incidents — the
`benchmarks/test_ablation_lscd.py` bench quantifies exactly that.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadBuilder

_R_PROD = 27
_R_CONS = 28
_R_IDX = 29


def producer_consumer(
    builder: WorkloadBuilder,
    n_instructions: int,
    queue_slots: int = 8,
    gap_instructions: int = 4,
    code_base: int = 0xA0000,
    queue_base: int = 0xB00000,
) -> None:
    """Cycle values through a tiny in-memory queue.

    Args:
        queue_slots: Ring size; small so the same addresses recur fast.
        gap_instructions: Filler ALU ops between the store and the
            reload (smaller = more reliably in-flight).
    """
    pc = code_base
    i = 0
    while not builder.full(n_instructions):
        slot = i % queue_slots
        addr = queue_base + slot * 8
        builder.alu(pc, _R_PROD, srcs=(_R_PROD,), value=i * 0xC2B2AE35)
        builder.store(pc + 4, addr=addr, value=i * 0xC2B2AE35, size=8, srcs=(_R_PROD,))
        for k in range(gap_instructions):
            builder.alu(pc + 8 + 4 * k, _R_IDX, srcs=(_R_IDX,))
        # The reload: same address, conflicting store still in flight.
        builder.load(
            pc + 8 + 4 * gap_instructions,
            dests=(_R_CONS,),
            addr=addr,
            size=8,
        )
        builder.alu(pc + 12 + 4 * gap_instructions, _R_CONS, srcs=(_R_CONS,))
        builder.branch(pc + 16 + 4 * gap_instructions, taken=True, target=pc)
        i += 1
