"""Phase-mixed kernels (large SPEC-like applications: gcc, vortex,
omnetpp, browser/JS suites).

Real applications interleave qualitatively different phases; this
kernel dispatches the instruction budget across the other families in
weighted, alternating slices, which also exercises every predictor's
behaviour under context switches between phases (table pressure,
retraining, history pollution).
"""

from __future__ import annotations

from repro.workloads.base import WorkloadBuilder
from repro.workloads.kernels.hash_table import hash_lookup
from repro.workloads.kernels.interpreter import bytecode_interpreter
from repro.workloads.kernels.pointer_chase import pointer_chase
from repro.workloads.kernels.stack_frames import call_tree
from repro.workloads.kernels.state_machine import table_state_machine
from repro.workloads.kernels.flag_loop import flag_check_loop
from repro.workloads.kernels.object_graph import object_graph
from repro.workloads.kernels.streaming import streaming_sum
from repro.workloads.kernels.string_ops import string_scan

_PHASES = {
    "streaming": streaming_sum,
    "pointer": pointer_chase,
    "calls": call_tree,
    "hash": hash_lookup,
    "interp": bytecode_interpreter,
    "state": table_state_machine,
    "strings": string_scan,
    "objects": object_graph,
    "flags": flag_check_loop,
}


def mixed_phases(
    builder: WorkloadBuilder,
    n_instructions: int,
    weights: dict[str, float] | None = None,
    slice_instructions: int = 2000,
    **phase_params,
) -> None:
    """Interleave kernel phases according to ``weights``.

    Args:
        weights: Phase name -> relative share of the budget.  Unknown
            names raise immediately (typo protection for suite specs).
        slice_instructions: Granularity of interleaving.
        phase_params: ``<phase>_<param>`` entries are forwarded to that
            phase's kernel (e.g. ``pointer_nodes=128``).
    """
    weights = weights or {"streaming": 1.0, "calls": 1.0, "hash": 1.0}
    unknown = set(weights) - set(_PHASES)
    if unknown:
        raise ValueError(f"unknown phases in weights: {sorted(unknown)}")

    per_phase_params: dict[str, dict] = {name: {} for name in _PHASES}
    for key, value in phase_params.items():
        phase, _, param = key.partition("_")
        if phase not in _PHASES or not param:
            raise ValueError(f"malformed phase parameter: {key!r}")
        per_phase_params[phase][param] = value

    total = sum(weights.values())
    order = sorted(weights)
    while not builder.full(n_instructions):
        for name in order:
            if builder.full(n_instructions):
                return
            share = weights[name] / total
            budget = min(
                n_instructions,
                len(builder) + max(1, int(slice_instructions * share * len(order))),
            )
            _PHASES[name](builder, budget, **per_phase_params[name])
