"""Synthetic workload suite.

The paper evaluates on SPEC2K, SPEC2K6, EEMBC and a set of JS/media
workloads compiled for ARM — none of which can ship here.  Instead,
each benchmark name maps to a deterministic, seeded generator built
from a dozen kernel families whose load/store behaviour reproduces the
statistics the paper's mechanisms key on: address/value repeatability
(Figure 2), committed vs in-flight load-store conflicts (Figure 1),
multi-destination-load frequency (Section 5.2.2), and path-correlated
addresses (PAP vs CAP).

Every generator executes against a real :class:`repro.memory.MemoryImage`,
so loaded values are genuinely produced by prior stores — conflicts are
real, not annotated.
"""

from repro.workloads.base import WorkloadBuilder, WorkloadSpec
from repro.workloads.suite import (
    PAPER_GROUPS,
    SUITE,
    SUITE_GROUPS,
    workload_names,
    build_workload,
    build_workload_columnar,
    build_suite,
)

__all__ = [
    "WorkloadBuilder",
    "WorkloadSpec",
    "PAPER_GROUPS",
    "SUITE",
    "SUITE_GROUPS",
    "workload_names",
    "build_workload",
    "build_workload_columnar",
    "build_suite",
]
