"""Workload-builder infrastructure.

A :class:`WorkloadBuilder` is a tiny "assembler + machine state" that
kernel generators drive: it tracks a memory image and register file so
that every emitted load's values are the true contents of memory at
that point in program order.  The simulator later reconstructs the same
image by replaying stores at *commit* time — which is exactly how DLVP's
speculative probes can observe stale data for in-flight conflicts.
"""

from __future__ import annotations

import queue
import random
import threading
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.isa import (
    INSTRUCTION_BYTES,
    Instruction,
    OpClass,
    RegisterFile,
)
from repro.memory import MemoryImage
from repro.trace import ColumnarTrace, Trace

_MASK64 = (1 << 64) - 1

DEFAULT_STREAM_CHUNK = 8192


@dataclass(frozen=True)
class WorkloadSpec:
    """One named workload in the suite registry.

    ``cold_fraction`` interleaves blocks of rarely-executed code (init,
    error handling, glue) whose loads have fresh static PCs.  Real
    binaries carry thousands of such static loads; they dilute coverage
    denominators and — crucially — put capacity pressure on prediction
    tables.  PAP's Policy-2 allocation lets confident entries survive
    cold-load eviction attempts, while CAP's load buffer replaces on
    miss and retrains from scratch: this asymmetry is a large part of
    the paper's Figure 4 coverage gap.
    """

    name: str
    group: str                      # benchmark suite it stands in for
    kernel: Callable[..., None]     # generator: kernel(builder, n, **params)
    params: dict = field(default_factory=dict)
    seed: int = 0
    cold_fraction: float = 0.08

    def build(self, n_instructions: int) -> Trace:
        builder = WorkloadBuilder(self.name, seed=self.seed)
        hot_budget = int(n_instructions * (1.0 - self.cold_fraction))
        self.kernel(builder, hot_budget, **self.params)
        if self.cold_fraction > 0.0:
            _sprinkle_cold_code(builder, n_instructions)
        return builder.build()

    def build_stream(
        self, n_instructions: int, chunk_size: int = DEFAULT_STREAM_CHUNK
    ) -> Iterator[ColumnarTrace]:
        """Yield the exact :meth:`build` trace as fixed-size columnar chunks.

        Memory stays O(chunk): the kernel runs with a flushing sink
        instead of accumulating its instruction list, and the cold-code
        bursts are interleaved on the fly (see
        :class:`_ColdInterleaver` for why that is bit-identical to the
        post-hoc sprinkle).  Generation runs on a producer thread with a
        bounded hand-off queue so this is a true pull-based generator —
        the kernel only runs ahead by a couple of chunks.

        Equivalence with :meth:`build` is pinned by
        ``tests/test_columnar.py`` across every kernel.
        """
        q: queue.Queue = queue.Queue(maxsize=2)
        abandoned = threading.Event()

        def emit(chunk: ColumnarTrace) -> None:
            while True:
                if abandoned.is_set():
                    raise _StreamAbandoned()
                try:
                    q.put(chunk, timeout=0.1)
                    return
                except queue.Full:
                    continue

        def produce() -> None:
            try:
                self._generate_streaming(n_instructions, chunk_size, emit)
            except _StreamAbandoned:
                return
            except BaseException as exc:  # surfaced on the consumer side
                q.put(exc)
                return
            q.put(None)

        thread = threading.Thread(
            target=produce, name=f"workload-stream-{self.name}", daemon=True
        )
        thread.start()
        try:
            while True:
                item = q.get()
                if item is None:
                    break
                if isinstance(item, BaseException):
                    raise item
                yield item
        finally:
            abandoned.set()
            while thread.is_alive():
                try:
                    q.get_nowait()
                except queue.Empty:
                    pass
                thread.join(timeout=0.05)

    def build_columnar(
        self, n_instructions: int, chunk_size: int = DEFAULT_STREAM_CHUNK
    ) -> ColumnarTrace:
        """The full trace as one :class:`ColumnarTrace` (streamed build)."""
        out: ColumnarTrace | None = None
        for chunk in self.build_stream(n_instructions, chunk_size):
            if out is None:
                out = chunk
            else:
                out.extend(chunk)
        return out if out is not None else ColumnarTrace(self.name)

    def _generate_streaming(
        self,
        n_instructions: int,
        chunk_size: int,
        emit: Callable[[ColumnarTrace], None],
    ) -> None:
        hot_budget = int(n_instructions * (1.0 - self.cold_fraction))
        # Pass 1: run the kernel against a discarding sink to learn the
        # hot-stream length (the cold-burst schedule depends on it) and
        # to advance the builder RNG to the exact state `build()` draws
        # the first cold-block id from.
        counter = WorkloadBuilder(
            self.name, seed=self.seed, sink=_discard, flush_threshold=chunk_size
        )
        self.kernel(counter, hot_budget, **self.params)
        counter.flush()
        hot_len = len(counter)

        assembler = _ChunkAssembler(self.name, chunk_size, emit)
        sink: Callable[[list[Instruction]], None] = assembler.push
        if self.cold_fraction > 0.0:
            cold_budget = max(0, n_instructions - hot_len)
            if cold_budget:
                first_block = counter.rng.randrange(_COLD_POOL)
                sink = _ColdInterleaver(
                    self.name, hot_len, cold_budget, first_block, assembler
                ).push
        # Pass 2: the real emission, flushed through the interleaver into
        # columnar chunks.  Same seed, same kernel, same state evolution
        # as pass 1 (and as build()).
        builder = WorkloadBuilder(
            self.name, seed=self.seed, sink=sink, flush_threshold=chunk_size
        )
        self.kernel(builder, hot_budget, **self.params)
        builder.flush()
        assembler.close()


class _StreamAbandoned(Exception):
    """Raised inside the producer thread when the consumer went away."""


def _discard(batch: list[Instruction]) -> None:
    """Pass-1 sink: count-only, the builder tracks the running total."""


class _ChunkAssembler:
    """Repack variable-size instruction batches into fixed-size chunks."""

    def __init__(
        self, name: str, chunk_size: int, emit: Callable[[ColumnarTrace], None]
    ) -> None:
        self.name = name
        self.chunk_size = chunk_size
        self.emit = emit
        self.chunk = ColumnarTrace(name)

    def push(self, batch: list[Instruction]) -> None:
        chunk = self.chunk
        size = self.chunk_size
        for inst in batch:
            chunk.append(inst)
            if len(chunk) >= size:
                self.emit(chunk)
                chunk = self.chunk = ColumnarTrace(self.name)

    def close(self) -> None:
        if len(self.chunk):
            self.emit(self.chunk)
            self.chunk = ColumnarTrace(self.name)


class _ColdInterleaver:
    """Inject cold-code bursts into a streamed hot instruction flow.

    Replays exactly the schedule :func:`_sprinkle_cold_code` computes
    after the fact: a burst of ``blocks_per_burst`` cold blocks after
    hot instruction ``i`` whenever ``i`` crosses a multiple of the
    burst spacing.  Generating the blocks *during* the kernel run (from
    a detached builder) instead of after it is value-identical because
    cold blocks read only their private data region above
    ``_COLD_DATA_BASE``, which no kernel writes, and their ALU results
    depend only on registers the block itself loads.
    """

    def __init__(
        self,
        name: str,
        hot_len: int,
        cold_budget: int,
        first_block: int,
        assembler: _ChunkAssembler,
        burst_spacing: int = 2500,
    ) -> None:
        n_bursts = max(1, hot_len // burst_spacing)
        self.blocks_per_burst = max(1, cold_budget // (4 * n_bursts))
        self.burst_spacing = burst_spacing
        self.next_burst = burst_spacing
        self.block = first_block
        self.index = 0
        self.assembler = assembler
        # Detached builder for cold-block generation only; its RNG is
        # never drawn from and its image only reads the cold region.
        self.cold_builder = WorkloadBuilder(name, seed=0)

    def push(self, batch: list[Instruction]) -> None:
        out = self.assembler
        i = self.index
        for inst in batch:
            out.push((inst,))
            if i >= self.next_burst:
                self.next_burst += self.burst_spacing
                for _ in range(self.blocks_per_burst):
                    out.push(_cold_block_instructions(self.cold_builder, self.block))
                    self.block = (self.block + 1) % _COLD_POOL
            i += 1
        self.index = i


_COLD_CODE_BASE = 0x2000000
_COLD_DATA_BASE = 0x8000000
_COLD_POOL = 512


def _cold_block_instructions(builder: "WorkloadBuilder", block: int) -> list[Instruction]:
    """Emit one cold block through the builder and detach it.

    Cold blocks have *diverse code* (fresh static PCs — the predictor
    pressure) but *shared data* (a small common region): glue code reads
    stacks and common globals, not fresh gigabytes, so its loads stay
    cache-resident and the bursts do not turn into memory-stall storms.
    """
    mark = builder.checkpoint()
    pc = _COLD_CODE_BASE + block * 0x40
    data = _COLD_DATA_BASE + (block % 24) * 0x100
    builder.load(pc, dests=(20,), addr=data, size=8)
    builder.alu(pc + 4, 21, srcs=(20,))
    builder.load(pc + 8, dests=(22,), addr=data + 16, size=8)
    # Glue-code branches are overwhelmingly not-taken error checks —
    # and a freshly-initialized bimodal counter predicts exactly that.
    builder.branch(pc + 12, taken=False, target=pc + 0x20)
    return builder.take_from(mark)


def _sprinkle_cold_code(
    builder: "WorkloadBuilder",
    n_instructions: int,
    burst_spacing: int = 2500,
) -> None:
    """Interleave *bursts* of cold blocks through the generated stream.

    Cold code in real programs is bursty (allocation slow paths, GC,
    syscall glue), not uniformly diffused; bursts also keep the global
    load-path history clean between episodes, so the hot code's
    prediction contexts recover within one 16-load window.  Cold blocks
    only read their own private data region, so reordering them
    relative to hot code cannot change any load's value.
    """
    hot = builder.take_from(0)
    cold_budget = max(0, n_instructions - len(hot))
    if not cold_budget:
        builder.extend(hot)
        return
    n_bursts = max(1, len(hot) // burst_spacing)
    blocks_per_burst = max(1, cold_budget // (4 * n_bursts))
    merged: list[Instruction] = []
    block = builder.rng.randrange(_COLD_POOL)
    next_burst = burst_spacing
    for i, inst in enumerate(hot):
        merged.append(inst)
        if i >= next_burst:
            next_burst += burst_spacing
            for _ in range(blocks_per_burst):
                merged.extend(_cold_block_instructions(builder, block))
                block = (block + 1) % _COLD_POOL
    builder.extend(merged)


class WorkloadBuilder:
    """Emit a self-consistent dynamic instruction stream.

    With the default ``sink=None`` the builder accumulates every
    instruction (finish with :meth:`build`).  With a ``sink`` callable
    the builder *streams*: whenever the pending list reaches
    ``flush_threshold`` it is handed to the sink and cleared, so memory
    stays O(threshold) regardless of trace length.  Streaming builders
    cannot use :meth:`build`/:meth:`checkpoint`/:meth:`take_from` —
    those assume the full list is resident.
    """

    def __init__(
        self,
        name: str,
        seed: int = 0,
        sink: Callable[[list[Instruction]], None] | None = None,
        flush_threshold: int = DEFAULT_STREAM_CHUNK,
    ) -> None:
        self.name = name
        self.rng = random.Random(seed ^ 0x5EED)
        self.image = MemoryImage()
        self.regs = RegisterFile()
        self._insts: list[Instruction] = []
        self._sink = sink
        self._flush_threshold = flush_threshold
        self._flushed = 0

    # -- construction ----------------------------------------------------

    def __len__(self) -> int:
        return self._flushed + len(self._insts)

    def _emit(self, inst: Instruction) -> None:
        self._insts.append(inst)
        if self._sink is not None and len(self._insts) >= self._flush_threshold:
            self.flush()

    def flush(self) -> None:
        """Hand pending instructions to the sink (streaming mode only)."""
        if self._sink is not None and self._insts:
            batch = self._insts
            self._flushed += len(batch)
            self._insts = []
            self._sink(batch)

    def build(self) -> Trace:
        if self._sink is not None:
            raise RuntimeError("streaming builders cannot build() a full Trace")
        return Trace(self.name, self._insts)

    def full(self, n_instructions: int) -> bool:
        """Budget check kernels poll in their outer loops."""
        return self._flushed + len(self._insts) >= n_instructions

    def checkpoint(self) -> int:
        """Current emission position (pairs with :meth:`take_from`)."""
        if self._sink is not None:
            raise RuntimeError("checkpoint() is unavailable on streaming builders")
        return len(self._insts)

    def take_from(self, mark: int) -> list[Instruction]:
        """Detach and return everything emitted since ``mark``."""
        if self._sink is not None:
            raise RuntimeError("take_from() is unavailable on streaming builders")
        taken = self._insts[mark:]
        del self._insts[mark:]
        return taken

    def extend(self, instructions: list[Instruction]) -> None:
        """Re-attach a previously detached (and possibly merged) stream."""
        self._insts.extend(instructions)

    # -- emission helpers --------------------------------------------------

    def alu(
        self,
        pc: int,
        dest: int,
        srcs: tuple[int, ...] = (),
        value: int | None = None,
        op: OpClass = OpClass.ALU,
    ) -> int:
        """Emit a computational instruction; returns the produced value.

        ``value=None`` computes a deterministic mix of the source
        registers, so dependent chains carry real data.
        """
        if value is None:
            acc = 0x9E3779B9
            for src in srcs:
                acc = (acc * 31 + self.regs.read(src)) & _MASK64
            value = acc
        self.regs.write(dest, value)
        self._emit(
            Instruction(pc=pc, op=op, srcs=srcs, dests=(dest,), values=(value & _MASK64,))
        )
        return value & _MASK64

    def load(
        self,
        pc: int,
        dests: tuple[int, ...],
        addr: int,
        size: int = 8,
        srcs: tuple[int, ...] = (),
        is_vector: bool = False,
    ) -> tuple[int, ...]:
        """Emit a load; values are read from the memory image.

        Multi-destination loads (LDP/LDM) read consecutive ``size``-byte
        chunks from ``addr``; vector loads read 16 bytes per register.
        """
        values = tuple(
            self.image.read(addr + k * size, size) for k in range(len(dests))
        )
        for dest, value in zip(dests, values):
            self.regs.write(dest, value)
        self._emit(
            Instruction(
                pc=pc,
                op=OpClass.LOAD,
                srcs=srcs,
                dests=dests,
                mem_addr=addr,
                mem_size=size,
                values=values,
                is_vector=is_vector,
            )
        )
        return values

    def store(
        self,
        pc: int,
        addr: int,
        value: int,
        size: int = 8,
        srcs: tuple[int, ...] = (),
    ) -> None:
        """Emit a store; the memory image is updated immediately (the
        simulator re-applies it at commit time)."""
        value &= (1 << (8 * size)) - 1
        self.image.write(addr, size, value)
        self._emit(
            Instruction(
                pc=pc,
                op=OpClass.STORE,
                srcs=srcs,
                mem_addr=addr,
                mem_size=size,
                values=(value,),
            )
        )

    def branch(self, pc: int, taken: bool, target: int, srcs: tuple[int, ...] = ()) -> None:
        """Conditional direct branch."""
        self._emit(
            Instruction(
                pc=pc,
                op=OpClass.BRANCH,
                srcs=srcs,
                taken=taken,
                target=target if taken else pc + INSTRUCTION_BYTES,
            )
        )

    def jump(self, pc: int, target: int) -> None:
        self._emit(
            Instruction(pc=pc, op=OpClass.JUMP, taken=True, target=target)
        )

    def call(self, pc: int, target: int) -> None:
        self._emit(
            Instruction(pc=pc, op=OpClass.CALL, taken=True, target=target)
        )

    def ret(self, pc: int, return_to: int) -> None:
        self._emit(
            Instruction(pc=pc, op=OpClass.RETURN, taken=True, target=return_to)
        )

    def indirect(self, pc: int, target: int, srcs: tuple[int, ...] = ()) -> None:
        """Indirect branch (interpreter dispatch, virtual call)."""
        self._emit(
            Instruction(pc=pc, op=OpClass.INDIRECT, srcs=srcs, taken=True, target=target)
        )

    def nop(self, pc: int) -> None:
        self._emit(Instruction(pc=pc, op=OpClass.NOP))

    # -- composite idioms ---------------------------------------------------

    def literal_load(self, pc: int, dest: int, literal_addr: int) -> int:
        """A literal-pool / global-constant load.

        Compiled ARM code is full of these (PC-relative literal loads,
        GOT entries, global table bases): the address is a constant per
        static PC and the value never changes — bread and butter for
        both address and value predictors, and a large share of why
        Figure 2's repeat fractions are as high as they are.
        """
        return self.load(pc, dests=(dest,), addr=literal_addr, size=8)[0]

    def global_rmw(self, pc: int, dest: int, global_addr: int, new_value: int) -> int:
        """Read-modify-write of a mutable global (counter, statistic).

        The load's address is rock-stable but its value changes with
        every update — after the updating store commits, a value
        predictor is stale (Figure 1's motivation) while DLVP reads the
        current value from the cache.
        """
        old = self.load(pc, dests=(dest,), addr=global_addr, size=8)[0]
        self.store(pc + 4, addr=global_addr, value=new_value, size=8, srcs=(dest,))
        return old
