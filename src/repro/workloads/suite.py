"""The workload registry: the paper's 78-benchmark suite plus stress
workloads.

Names follow the paper's benchmark pool — SPEC2K, SPEC2K6, EEMBC and a
set of JS/media/other applications — and each maps to a kernel family
with parameters chosen so the benchmarks the paper singles out behave
the right way:

* ``perlbmk`` — deep call trees with spill/reload conflicts and
  load-fed mispredicting branches (the 71% DLVP outlier);
* ``nat`` — erratic-address/stable-value hash probing (favours VTAGE);
* ``aifirf`` — path-determined table addresses (favours DLVP);
* ``bzip2``/``avmshell`` — large-footprint scans and interpreter heaps
  where the double cache probe perturbs the TLB (Figure 9);
* ``h264ref`` — vector/LDM heavy (VTAGE's opcode-filter story).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.trace import ColumnarTrace, Trace
from repro.workloads.base import DEFAULT_STREAM_CHUNK, WorkloadSpec
from repro.workloads.kernels import (
    bytecode_interpreter,
    conflicting_store_flood,
    flag_check_loop,
    hash_lookup,
    matrix_multiply,
    mixed_phases,
    pointer_chase,
    producer_consumer,
    streaming_sum,
    string_scan,
    table_state_machine,
    vector_filter,
)

DEFAULT_INSTRUCTIONS = 24_000


def _spec(name, group, kernel, seed, **params) -> WorkloadSpec:
    return WorkloadSpec(name=name, group=group, kernel=kernel, params=params, seed=seed)


_SPEC2K = [
    _spec("gzip", "spec2k", string_scan, 101, buffer_bytes=48 * 1024, match_rate=0.15),
    _spec("vpr", "spec2k", mixed_phases, 102,
          weights={"state": 2.0, "streaming": 1.0, "objects": 1.0},
          objects_couple_every=4, objects_repoint_every=0),
    _spec("gcc", "spec2k", mixed_phases, 103,
          weights={"calls": 2.0, "objects": 1.0, "state": 1.0},
          calls_depth=5, objects_couple_every=4, objects_repoint_every=100,
          objects_num_roots=12),
    _spec("mcf", "spec2k", pointer_chase, 104, nodes=2048, mutate_every=3),
    _spec("crafty", "spec2k", mixed_phases, 105,
          weights={"state": 2.0, "flags": 1.0, "strings": 1.0},
          flags_chain_divs=1, flags_ring_slots=32, flags_update_lead=24),
    _spec("parser", "spec2k", string_scan, 106, buffer_bytes=24 * 1024, match_rate=0.3),
    _spec("perlbmk", "spec2k", flag_check_loop, 107,
          chain_divs=2, chain_alus=1, filler_alus=1, ring_slots=32, update_lead=24),
    _spec("gap", "spec2k", matrix_multiply, 108, dim=32),
    _spec("vortex", "spec2k", mixed_phases, 109,
          weights={"objects": 2.0, "calls": 1.0, "hash": 1.0},
          objects_num_roots=8, objects_couple_every=2, objects_repoint_every=0),
    _spec("twolf", "spec2k", mixed_phases, 110,
          weights={"state": 1.0, "objects": 1.0},
          objects_couple_every=4, objects_repoint_every=0),
    _spec("eon", "spec2k", vector_filter, 111, taps=6, ldm_regs=3),
    _spec("bzip2_2k", "spec2k", string_scan, 112,
          buffer_bytes=96 * 1024, match_rate=0.2, rewrite_fraction=0.1),
]

_SPEC2K6 = [
    _spec("perlbench", "spec2k6", mixed_phases, 201,
          weights={"flags": 1.0, "calls": 1.0, "hash": 1.0},
          flags_chain_divs=2, calls_depth=6),
    _spec("bzip2", "spec2k6", string_scan, 202,
          buffer_bytes=192 * 1024, match_rate=0.25, rewrite_fraction=0.15),
    _spec("gcc6", "spec2k6", mixed_phases, 203,
          weights={"calls": 2.0, "objects": 1.0, "state": 1.0, "strings": 1.0},
          objects_couple_every=4, objects_repoint_every=0),
    _spec("mcf6", "spec2k6", pointer_chase, 204, nodes=4096, mutate_every=2),
    _spec("gobmk", "spec2k6", hash_lookup, 205, buckets=1024, occupancy=0.04,
          insert_every=60),
    _spec("hmmer", "spec2k6", matrix_multiply, 206, dim=28),
    _spec("sjeng", "spec2k6", table_state_machine, 207, num_states=4,
          input_period=7),
    _spec("libquantum", "spec2k6", streaming_sum, 208, array_bytes=128 * 1024,
          stride=16),
    _spec("h264ref", "spec2k6", vector_filter, 209, taps=8, ldm_regs=4,
          frame_bytes=96 * 1024, ref_blocks=24),
    _spec("omnetpp", "spec2k6", mixed_phases, 210,
          weights={"pointer": 1.0, "objects": 1.0}, pointer_nodes=1024,
          pointer_mutate_every=4, objects_couple_every=3, objects_repoint_every=0),
    _spec("astar", "spec2k6", mixed_phases, 211,
          weights={"pointer": 1.0, "objects": 1.0}, pointer_nodes=768,
          objects_couple_every=4, objects_repoint_every=0),
    _spec("xalancbmk", "spec2k6", mixed_phases, 212,
          weights={"objects": 2.0, "hash": 1.0, "strings": 1.0},
          objects_num_roots=6, objects_couple_every=3, objects_repoint_every=0),
    _spec("soplex", "spec2k6", matrix_multiply, 213, dim=36),
    _spec("namd", "spec2k6", vector_filter, 214, taps=12, ldm_regs=4),
    _spec("lbm", "spec2k6", streaming_sum, 215, array_bytes=256 * 1024, stride=8),
    _spec("milc", "spec2k6", streaming_sum, 216, array_bytes=192 * 1024,
          stride=16, use_pairs=True),
    _spec("povray", "spec2k6", mixed_phases, 217,
          weights={"calls": 1.0, "objects": 1.0, "state": 1.0},
          objects_couple_every=4, objects_repoint_every=0),
    _spec("sphinx3", "spec2k6", mixed_phases, 218,
          weights={"streaming": 2.0, "hash": 1.0}),
]

_EEMBC_DEFS = [
    ("a2time", table_state_machine, {"num_states": 4, "input_period": 5}),
    ("aifftr", streaming_sum, {"array_bytes": 8 * 1024, "stride": 8}),
    ("aifirf", table_state_machine, {"num_states": 4, "input_period": 5, "path_loads": 2}),
    ("aiifft", streaming_sum, {"array_bytes": 8 * 1024, "stride": 16}),
    ("basefp", matrix_multiply, {"dim": 28}),
    ("bitmnp", string_scan, {"buffer_bytes": 4 * 1024, "match_rate": 0.5}),
    ("cacheb", streaming_sum, {"array_bytes": 96 * 1024, "stride": 64}),
    ("canrdr", table_state_machine, {"num_states": 4, "input_period": 3}),
    ("idctrn", vector_filter, {"taps": 8, "ldm_regs": 2, "frame_bytes": 4 * 1024}),
    ("iirflt", streaming_sum, {"array_bytes": 4 * 1024, "stride": 8, "use_pairs": True}),
    ("matrix_eembc", matrix_multiply, {"dim": 32}),
    ("pntrch", pointer_chase, {"nodes": 128, "mutate_every": 0}),
    ("puwmod", producer_consumer, {"queue_slots": 8, "gap_instructions": 5}),
    ("rspeed", table_state_machine, {"num_states": 3, "input_period": 5}),
    ("tblook", table_state_machine, {"num_states": 4, "input_period": 7, "path_loads": 2}),
    ("ttsprk", table_state_machine, {"num_states": 4, "input_period": 5}),
    ("dither", streaming_sum, {"array_bytes": 16 * 1024, "stride": 4}),
    ("rotate", matrix_multiply, {"dim": 32}),
    ("text_eembc", string_scan, {"buffer_bytes": 8 * 1024, "match_rate": 0.2}),
    ("autcor", streaming_sum, {"array_bytes": 64 * 1024, "stride": 8}),
    ("conven", string_scan, {"buffer_bytes": 6 * 1024, "match_rate": 0.4}),
    ("fbital", producer_consumer, {"queue_slots": 16, "gap_instructions": 8}),
    ("fft_eembc", vector_filter, {"taps": 4, "ldm_regs": 2}),
    ("viterb", table_state_machine, {"num_states": 4, "input_period": 3}),
    ("ospf", pointer_chase, {"nodes": 192, "mutate_every": 6}),
    ("pktflow", mixed_phases,
     {"weights": {"hash": 2.0, "state": 1.0}, "hash_occupancy": 0.05}),
    ("routelookup", hash_lookup, {"buckets": 512, "occupancy": 0.03}),
    ("bezier", matrix_multiply, {"dim": 28}),
    ("djpeg", vector_filter, {"taps": 16, "ldm_regs": 4, "frame_bytes": 12 * 1024}),
    ("rgbcmy", streaming_sum, {"array_bytes": 24 * 1024, "stride": 4}),
]

_EEMBC = [
    _spec(name, "eembc", kernel, 300 + i, **params)
    for i, (name, kernel, params) in enumerate(_EEMBC_DEFS)
]

_OTHER_DEFS = [
    ("linpack", matrix_multiply, {"dim": 32}),
    ("mplayer", vector_filter, {"taps": 10, "ldm_regs": 4, "frame_bytes": 32 * 1024}),
    ("browsermark", mixed_phases,
     {"weights": {"interp": 1.0, "objects": 1.0, "calls": 1.0},
      "objects_couple_every": 4, "objects_repoint_every": 0}),
    ("sunspider", bytecode_interpreter, {"program_length": 128, "num_handlers": 8}),
    ("dromaeo", bytecode_interpreter, {"program_length": 192, "num_handlers": 12}),
    ("octane", mixed_phases,
     {"weights": {"interp": 1.0, "objects": 2.0},
      "objects_couple_every": 3, "objects_repoint_every": 0}),
    ("kraken", mixed_phases,
     {"weights": {"interp": 1.0, "streaming": 1.5, "flags": 0.5},
      "flags_chain_divs": 1, "flags_ring_slots": 32, "flags_update_lead": 24}),
    ("scimark", matrix_multiply, {"dim": 40}),
    ("ibench", mixed_phases,
     {"weights": {"strings": 1.0, "hash": 1.0, "flags": 0.5},
      "flags_chain_divs": 1, "flags_ring_slots": 32, "flags_update_lead": 24}),
    ("avmshell", bytecode_interpreter,
     {"program_length": 256, "num_handlers": 16, "stack_conflicts": True}),
    ("pdfjs", mixed_phases,
     {"weights": {"interp": 1.0, "strings": 1.0, "flags": 0.5},
      "flags_chain_divs": 1, "flags_ring_slots": 32, "flags_update_lead": 24}),
    ("nat", hash_lookup,
     {"buckets": 2048, "occupancy": 0.01, "key_space": 16384}),
    ("v8_richards", bytecode_interpreter, {"program_length": 96, "num_handlers": 6}),
    ("v8_deltablue", mixed_phases,
     {"weights": {"objects": 2.0, "interp": 1.0},
      "objects_couple_every": 2, "objects_repoint_every": 0}),
    ("jetstream", mixed_phases,
     {"weights": {"interp": 1.0, "objects": 1.0, "flags": 0.5},
      "objects_couple_every": 4, "objects_repoint_every": 0,
      "flags_chain_divs": 1, "flags_ring_slots": 32, "flags_update_lead": 24}),
    ("speedometer", mixed_phases,
     {"weights": {"interp": 1.0, "objects": 1.0, "flags": 0.5},
      "objects_couple_every": 3, "objects_repoint_every": 0,
      "flags_chain_divs": 1, "flags_ring_slots": 32, "flags_update_lead": 24}),
    ("espresso", table_state_machine, {"num_states": 4, "input_period": 5}),
    ("queueing", producer_consumer, {"queue_slots": 12, "gap_instructions": 6}),
]

_OTHER = [
    _spec(name, "other", kernel, 400 + i, **params)
    for i, (name, kernel, params) in enumerate(_OTHER_DEFS)
]

# Stress workloads *outside* the paper's pool: adversarial patterns the
# chaos/robustness tests lean on.  They live in the registry (so the
# serve farm, caching and goldens cover them) but are excluded from the
# default `workload_names()` selection — figures, sweeps and Table 3
# stay the paper's 78 benchmarks, byte for byte.
_ADVERSARIAL = [
    _spec("storeflood", "adversarial", conflicting_store_flood, 500,
          slots=32, store_rate=0.75, gap_instructions=3),
    _spec("storeflood_lite", "adversarial", conflicting_store_flood, 501,
          slots=48, store_rate=0.15, gap_instructions=8),
]

SUITE: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (*_SPEC2K, *_SPEC2K6, *_EEMBC, *_OTHER, *_ADVERSARIAL)
}

SUITE_GROUPS: dict[str, list[str]] = {}
for _spec_obj in SUITE.values():
    SUITE_GROUPS.setdefault(_spec_obj.group, []).append(_spec_obj.name)

# The paper's own benchmark pool (Table 3's denominator).
PAPER_GROUPS: tuple[str, ...] = ("spec2k", "spec2k6", "eembc", "other")


def workload_names(group: str | None = None) -> list[str]:
    """Workload names for one group, or the paper's default pool.

    With no ``group`` this returns only the 78 paper benchmarks
    (:data:`PAPER_GROUPS`) — the default selection every figure and
    sweep reproduces.  Adversarial stress workloads must be asked for
    by group (``workload_names("adversarial")``) or by name.
    """
    if group is None:
        return [
            name for g in PAPER_GROUPS for name in SUITE_GROUPS.get(g, [])
        ]
    if group not in SUITE_GROUPS:
        raise KeyError(f"unknown suite group: {group!r} (have {sorted(SUITE_GROUPS)})")
    return list(SUITE_GROUPS[group])


def _spec_for(name: str) -> WorkloadSpec:
    try:
        return SUITE[name]
    except KeyError:
        raise KeyError(f"unknown workload: {name!r}") from None


def build_workload(
    name: str,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    *,
    stream: bool = False,
    chunk_size: int = DEFAULT_STREAM_CHUNK,
) -> Trace | Iterator[ColumnarTrace]:
    """Generate one named workload's trace.

    With ``stream=True``, returns a generator of fixed-size
    :class:`ColumnarTrace` chunks instead of a materialized
    :class:`Trace` — same instructions bit for bit, O(chunk) memory
    (million-instruction traces never hold O(trace) objects).
    """
    spec = _spec_for(name)
    if stream:
        return spec.build_stream(n_instructions, chunk_size)
    return spec.build(n_instructions)


def build_workload_columnar(
    name: str,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    chunk_size: int = DEFAULT_STREAM_CHUNK,
) -> ColumnarTrace:
    """One named workload as a full :class:`ColumnarTrace` (streamed build)."""
    return _spec_for(name).build_columnar(n_instructions, chunk_size)


def build_suite(
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    names: list[str] | None = None,
) -> dict[str, Trace]:
    """Generate traces for the whole suite (or a named subset)."""
    selected = names if names is not None else list(SUITE)
    return {name: build_workload(name, n_instructions) for name in selected}
