"""Stride value predictor (computation-based class, Section 2.1).

Predicts ``last_value + stride`` per static load; the stride must be
observed twice in a row before it is trusted, and a forward
probabilistic counter gates prediction like the other predictors here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.isa import Instruction, OpClass
from repro.predictors.base import PredictorStats
from repro.predictors.confidence import VTAGE_FPC_VECTOR, fpc_advance

_MASK = (1 << 64) - 1


@dataclass
class _StrideEntry:
    tag: int
    last_value: int
    stride: int = 0
    stride_confirmed: bool = False
    confidence: int = 0


class StrideValuePredictor:
    """Classic last-value + stride predictor for single-dest loads."""

    def __init__(
        self,
        entries: int = 1024,
        tag_bits: int = 14,
        fpc_vector: tuple[float, ...] = VTAGE_FPC_VECTOR,
        seed: int = 0x57D,
    ) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.tag_bits = tag_bits
        self.fpc_vector = fpc_vector
        self._rng = random.Random(seed)
        self._table: list[_StrideEntry | None] = [None] * entries
        self.stats = PredictorStats()

    def _key(self, pc: int) -> tuple[int, int]:
        index = (pc >> 2) & (self.entries - 1)
        tag = ((pc >> 2) ^ (pc >> (2 + self.tag_bits))) & ((1 << self.tag_bits) - 1)
        return index, tag

    def train(self, inst: Instruction) -> tuple[int, ...] | None:
        """Predict-and-train; single-destination scalar loads only."""
        if inst.op != OpClass.LOAD or len(inst.dests) != 1 or inst.is_vector:
            return None
        self.stats.loads_seen += 1
        value = inst.values[0] & _MASK
        index, tag = self._key(inst.pc)
        entry = self._table[index]

        prediction: int | None = None
        if (
            entry is not None
            and entry.tag == tag
            and entry.stride_confirmed
            and entry.confidence >= len(self.fpc_vector)
        ):
            prediction = (entry.last_value + entry.stride) & _MASK

        if entry is None or entry.tag != tag:
            self._table[index] = _StrideEntry(tag=tag, last_value=value)
        else:
            stride = (value - entry.last_value) & _MASK
            if stride == entry.stride:
                entry.stride_confirmed = True
                if entry.confidence < len(self.fpc_vector):
                    if fpc_advance(self._rng, self.fpc_vector, entry.confidence):
                        entry.confidence += 1
            else:
                entry.stride = stride
                entry.stride_confirmed = False
                entry.confidence = 0
            entry.last_value = value

        if prediction is None:
            return None
        self.stats.predictions += 1
        if prediction == value:
            self.stats.correct += 1
        return (prediction,)

    def storage_bits(self) -> int:
        return self.entries * (self.tag_bits + 64 + 16 + 3)
