"""D-VTAGE — the differential VTAGE of Perais & Seznec (HPCA 2015).

Section 2.1 of the DLVP paper describes it: a last-value table (LVT)
sits in front of the first VTAGE component and stores the *last value*
per instruction, while the tagged components store *strides* (deltas).
The prediction is ``last_value + stride``, which captures strided value
sequences VTAGE proper cannot (its entries hold full values and a
changing value resets confidence every time).

The paper also names D-VTAGE's costs, which this model reproduces:

* an adder on the prediction critical path (we charge one extra cycle
  of prediction latency via :attr:`prediction_latency`);
* a speculative window to track in-flight last values — we model the
  idealised variant (the LVT is updated at train time in program
  order), which is the most favourable assumption for D-VTAGE.

It shares VTAGE's ISA problem: one slot per destination register, so
the static opcode filter applies equally.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.isa import Instruction, OpClass
from repro.predictors.base import PredictorStats
from repro.predictors.confidence import VTAGE_FPC_VECTOR, fpc_advance
from repro.predictors.vtage import _FILTERED_TYPES, _itype_flat
from repro.branch.history import fold_history

_MASK64 = (1 << 64) - 1
_LOAD = int(OpClass.LOAD)


@dataclass(frozen=True)
class DvtageConfig:
    """D-VTAGE parameters, mirroring the VTAGE budget split.

    The LVT replaces part of the tagged-table budget: 256 LVT entries
    (tag + 64-bit last value) plus two tagged stride components keeps
    the total close to the 8KB-class budget of Table 4.
    """

    lvt_entries: int = 256
    table_entries: int = 256
    tag_bits: int = 16
    stride_bits: int = 16
    history_lengths: tuple[int, ...] = (5, 13)
    fpc_vector: tuple[float, ...] = VTAGE_FPC_VECTOR
    loads_only: bool = True
    static_filter: bool = True
    prediction_latency: int = 1          # the adder on the critical path
    seed: int = 0xD7A6

    def __post_init__(self) -> None:
        if self.lvt_entries & (self.lvt_entries - 1):
            raise ValueError("LVT entries must be a power of two")
        if self.table_entries & (self.table_entries - 1):
            raise ValueError("table entries must be a power of two")


@dataclass
class _LvtEntry:
    tag: int
    last_value: int


@dataclass
class _StrideEntry:
    tag: int
    stride: int
    confidence: int = 0


class DvtagePredictor:
    """LVT + tagged stride components, single-destination loads."""

    def __init__(self, config: DvtageConfig | None = None) -> None:
        self.config = config or DvtageConfig()
        cfg = self.config
        self._rng = random.Random(cfg.seed)
        self._lvt: list[_LvtEntry | None] = [None] * cfg.lvt_entries
        self._tables: list[list[_StrideEntry | None]] = [
            [None] * cfg.table_entries for _ in cfg.history_lengths
        ]
        self._index_bits = cfg.table_entries.bit_length() - 1
        self.stats = PredictorStats()

    # -- eligibility / keys ----------------------------------------------

    def eligible(self, inst: Instruction) -> bool:
        return self.eligible_flat(int(inst.op), len(inst.dests), inst.is_vector)

    def eligible_flat(self, op: int, ndests: int, is_vector: bool) -> bool:
        """:meth:`eligible` over raw column scalars (columnar hot path)."""
        if op != _LOAD or ndests != 1:
            return False
        if self.config.static_filter and (
            _itype_flat(op, ndests, is_vector) in _FILTERED_TYPES
        ):
            return False
        return True

    def _mix(self, pc: int) -> int:
        word = pc >> 2
        return word ^ (word >> self._index_bits) ^ (word >> (2 * self._index_bits))

    def _lvt_key(self, pc: int) -> tuple[int, int]:
        index = self._mix(pc) & (self.config.lvt_entries - 1)
        tag = (pc >> 2) & ((1 << self.config.tag_bits) - 1)
        return index, tag

    def _stride_key(self, pc: int, table: int, history: int) -> tuple[int, int]:
        cfg = self.config
        hist_len = cfg.history_lengths[table]
        idx_fold = fold_history(history, hist_len, self._index_bits)
        tag_fold = fold_history(history, hist_len, cfg.tag_bits)
        index = (self._mix(pc) ^ idx_fold ^ (table * 0x9E5)) & (cfg.table_entries - 1)
        tag = ((pc >> 2) ^ (tag_fold << 1)) & ((1 << cfg.tag_bits) - 1)
        return index, tag

    # -- prediction --------------------------------------------------------

    def predict(self, inst: Instruction, history: int) -> int | None:
        """Predicted value (last value + provider stride), or None."""
        return self.predict_flat(
            inst.pc, int(inst.op), len(inst.dests), inst.is_vector, history
        )

    def predict_flat(
        self, pc: int, op: int, ndests: int, is_vector: bool, history: int
    ) -> int | None:
        """:meth:`predict` over raw column scalars (columnar hot path)."""
        if not self.eligible_flat(op, ndests, is_vector):
            return None
        lvt_index, lvt_tag = self._lvt_key(pc)
        lvt = self._lvt[lvt_index]
        if lvt is None or lvt.tag != lvt_tag:
            return None
        provider = self._provider(pc, history)
        if provider is None:
            return None
        entry = provider[2]
        if entry.confidence < len(self.config.fpc_vector):
            return None
        return (lvt.last_value + entry.stride) & _MASK64

    def _provider(self, pc: int, history: int):
        for table in reversed(range(len(self.config.history_lengths))):
            index, tag = self._stride_key(pc, table, history)
            entry = self._tables[table][index]
            if entry is not None and entry.tag == tag:
                return table, index, entry
        return None

    # -- training -----------------------------------------------------------

    def train(self, inst: Instruction, history: int) -> int | None:
        """Predict-and-train; returns the prediction that was made."""
        return self.train_flat(
            inst.pc, int(inst.op), len(inst.dests), inst.is_vector,
            inst.values, history,
        )

    def train_flat(
        self,
        pc: int,
        op: int,
        ndests: int,
        is_vector: bool,
        values: tuple[int, ...],
        history: int,
    ) -> int | None:
        """:meth:`train` over raw column scalars (columnar hot path)."""
        if op == _LOAD:
            self.stats.loads_seen += 1
        if not self.eligible_flat(op, ndests, is_vector):
            return None
        value = values[0] & _MASK64
        prediction = self.predict_flat(pc, op, ndests, is_vector, history)

        lvt_index, lvt_tag = self._lvt_key(pc)
        lvt = self._lvt[lvt_index]
        stride_mask = (1 << self.config.stride_bits) - 1

        if lvt is not None and lvt.tag == lvt_tag:
            observed = (value - lvt.last_value) & _MASK64
            # Strides are narrow (16 bits, sign-extended) in hardware.
            if observed & ~stride_mask and (observed | stride_mask) != _MASK64:
                observed = None      # stride not representable
            self._train_stride(pc, history, observed)
            lvt.last_value = value
        else:
            self._lvt[lvt_index] = _LvtEntry(tag=lvt_tag, last_value=value)

        if prediction is not None:
            self.stats.predictions += 1
            if prediction == value:
                self.stats.correct += 1
        return prediction

    def _train_stride(self, pc: int, history: int, observed: int | None) -> None:
        cfg = self.config
        provider = self._provider(pc, history)
        if provider is not None:
            _, _, entry = provider
            if observed is not None and entry.stride == observed:
                if entry.confidence < len(cfg.fpc_vector):
                    if fpc_advance(self._rng, cfg.fpc_vector, entry.confidence):
                        entry.confidence += 1
                return
            if entry.confidence == 0 and observed is not None:
                entry.stride = observed
            else:
                entry.confidence = 0
            start = provider[0] + 1
        else:
            start = 0
        if observed is None:
            return
        for table in range(start, len(cfg.history_lengths)):
            index, tag = self._stride_key(pc, table, history)
            entry = self._tables[table][index]
            if entry is None or entry.confidence == 0:
                self._tables[table][index] = _StrideEntry(tag=tag, stride=observed)
                return

    def storage_bits(self) -> int:
        cfg = self.config
        lvt = cfg.lvt_entries * (cfg.tag_bits + 64)
        tables = (
            len(cfg.history_lengths)
            * cfg.table_entries
            * (cfg.tag_bits + cfg.stride_bits + 3)
        )
        return lvt + tables
