"""Confidence counters.

The paper uses Forward Probabilistic Counters (FPC, Riley & Zilles,
HPCA 2006): a narrow saturating counter whose *forward* transitions fire
only with a per-level probability.  A 2-bit FPC with probability vector
{1, 1/2, 1/4} saturates after ~7 successful observations in expectation
— which is how PAP gets the paper's "observe an address only 8 times"
behaviour out of 2 stored bits.  VTAGE's 3-bit FPC uses
{1, 1/2, 1/4, 1/8, 1/16, 1/32, 1/64}, matching its 64–128 observation
confidence requirement.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

PAP_FPC_VECTOR: tuple[float, ...] = (1.0, 0.5, 0.25)
VTAGE_FPC_VECTOR: tuple[float, ...] = (1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125, 0.015625)

# Default stream for counters constructed without an explicit RNG.
# Shared (module-level) on purpose: a *per-instance* Random(seed) here
# would hand every default-constructed counter the identical sequence,
# so they would all fire their probabilistic transitions in lockstep —
# correlated confidence ramps across APT entries instead of independent
# geometric saturation.  One seeded stream keeps runs reproducible
# while decorrelating counters; predictors that own many counters
# thread their own per-predictor Random through all of them instead.
_SHARED_DEFAULT_RNG = random.Random(0xF9C)


def fpc_advance(rng: random.Random, vector: Sequence[float], level: int) -> bool:
    """One forward-transition attempt of an FPC sitting at ``level``.

    Strict ``<``: ``rng.random()`` is uniform on [0, 1), so ``< p``
    fires with probability exactly ``p``, while ``<= p`` adds a 2**-53
    bias.  Every FPC user (the PAP/APT train path, LVP, VTAGE, D-VTAGE,
    the stride predictor) goes through this helper so the comparison
    semantics cannot drift between inlined copies again.
    """
    return rng.random() < vector[level]


class ForwardProbabilisticCounter:
    """An FPC: forward transitions are probabilistic, resets are certain.

    Attributes:
        value: Current counter value in ``[0, len(vector)]``; the counter
            is *saturated* (confident) at ``len(vector)``.
    """

    def __init__(self, vector: Sequence[float] = PAP_FPC_VECTOR, rng: random.Random | None = None) -> None:
        if not vector:
            raise ValueError("FPC probability vector must be non-empty")
        if any(not 0.0 < p <= 1.0 for p in vector):
            raise ValueError("FPC probabilities must be in (0, 1]")
        self.vector = tuple(vector)
        self._rng = rng if rng is not None else _SHARED_DEFAULT_RNG
        self.value = 0

    @property
    def max_value(self) -> int:
        return len(self.vector)

    @property
    def saturated(self) -> bool:
        return self.value >= self.max_value

    def increment(self) -> bool:
        """Attempt a forward transition; returns True if it fired."""
        if self.saturated:
            return False
        if fpc_advance(self._rng, self.vector, self.value):
            self.value += 1
            return True
        return False

    def reset(self) -> None:
        self.value = 0

    def expected_observations(self) -> float:
        """Expected number of increments needed to saturate from zero."""
        return sum(1.0 / p for p in self.vector)

    @property
    def storage_bits(self) -> int:
        """Bits needed to store the counter value."""
        return self.max_value.bit_length()


class SaturatingCounter:
    """Plain saturating counter (used by CAP's confidence and choosers)."""

    def __init__(self, maximum: int, value: int = 0) -> None:
        if maximum <= 0:
            raise ValueError("maximum must be positive")
        if not 0 <= value <= maximum:
            raise ValueError("initial value out of range")
        self.maximum = maximum
        self.value = value

    @property
    def saturated(self) -> bool:
        return self.value >= self.maximum

    def increment(self) -> None:
        if self.value < self.maximum:
            self.value += 1

    def decrement(self) -> None:
        if self.value > 0:
            self.value -= 1

    def reset(self) -> None:
        self.value = 0
