"""Tournament chooser for combining DLVP and VTAGE (Section 5.2.3,
Figure 8).

Both predictors run concurrently; a PC-indexed table of 2-bit counters
tracks which one performs better per static load and selects who makes
the final prediction.  Counter convention: high values favour the first
predictor ("A", DLVP in the paper's experiment), low values favour the
second ("B", VTAGE).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ChooserStats:
    chose_a: int = 0
    chose_b: int = 0

    @property
    def total(self) -> int:
        return self.chose_a + self.chose_b

    @property
    def a_share(self) -> float:
        return self.chose_a / self.total if self.total else 0.0


class TournamentChooser:
    """PC-indexed 2-bit chooser."""

    def __init__(self, entries: int = 1024, initial: int | None = None) -> None:
        """``initial=None`` (default) initializes counters unbiased: a
        2-bit counter has no midpoint, so entries alternate between the
        two weak states — shared loads start evenly split between the
        predictors until evidence moves them."""
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        if initial is not None and not 0 <= initial <= 3:
            raise ValueError("initial counter value must be in [0, 3]")
        self.entries = entries
        if initial is None:
            self._counters = [1 + (i & 1) for i in range(entries)]
        else:
            self._counters = [initial] * entries
        self.stats = ChooserStats()

    def _index(self, pc: int) -> int:
        word = pc >> 2
        bits = self.entries.bit_length() - 1
        # Fold high PC bits so regularly-strided code does not collapse
        # onto a handful of counters.
        return (word ^ (word >> bits) ^ (word >> (2 * bits))) & (self.entries - 1)

    def choose_a(self, pc: int) -> bool:
        """True if predictor A should make the final prediction."""
        return self._counters[self._index(pc)] >= 2

    def record_choice(self, chose_a: bool) -> None:
        if chose_a:
            self.stats.chose_a += 1
        else:
            self.stats.chose_b += 1

    def update(self, pc: int, a_correct: bool | None, b_correct: bool | None) -> None:
        """Train with each predictor's outcome (None = did not predict).

        The chooser only matters when *both* predictors offer a value —
        a lone prediction wins by default — so abstentions carry no
        routing signal and leave the counter alone.  What moves it is a
        *misprediction*: a predictor that was wrong loses to one that
        was right or stayed silent.
        """
        score_a = self._score(a_correct)
        score_b = self._score(b_correct)
        if score_a == score_b or (a_correct is None and b_correct is None):
            return
        if a_correct is None and b_correct:
            return          # abstain vs correct: no routing information
        if b_correct is None and a_correct:
            return
        index = self._index(pc)
        if score_a > score_b:
            self._counters[index] = min(3, self._counters[index] + 1)
        else:
            self._counters[index] = max(0, self._counters[index] - 1)

    @staticmethod
    def _score(correct: bool | None) -> int:
        if correct is None:
            return 1        # abstained
        return 2 if correct else 0

    def storage_bits(self) -> int:
        return self.entries * 2
