"""PAP: Path-based Address Prediction (Section 3.1) — the paper's core.

The Address Prediction Table (APT) is a partially tagged, direct-mapped
structure living in the front-end.  Index and tag are both computed as
an XOR of the low-order load-PC bits with the folded load-path history.
Each entry holds a 14-bit tag, the predicted memory address, a 2-bit
forward probabilistic confidence counter (probability vector
{1, 1/2, 1/4} — confident after ~8 observations), a 2-bit size code and
an optional predicted cache way (Table 1).

Training (Section 3.1.2) runs at load execution:

* APT miss — allocation Policy-2: replace the probed entry only if its
  confidence is zero, otherwise decrement it (confident entries survive
  eviction attempts).
* APT hit, address match — probabilistically increment confidence.
* APT hit, address mismatch — reset confidence and reallocate with the
  executed load's information.

A prediction is made only on a tag match with saturated confidence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.predictors.base import AddressPrediction, PredictorStats
from repro.predictors.confidence import PAP_FPC_VECTOR, fpc_advance
from repro.predictors.history import LoadPathHistory
from repro.branch.history import fold_history

_SIZE_CODES = {4: 0, 8: 1, 16: 2, 32: 3}
_SIZE_FROM_CODE = {code: size for size, code in _SIZE_CODES.items()}

# Outcome codes returned by PapPredictor.train — what happened to the
# probed APT entry.  Interned string constants so returning one is free.
TRAIN_ALLOCATE = "allocate"    # empty slot claimed by this load
TRAIN_EVICT = "evict"          # zero-confidence victim replaced
TRAIN_DECAY = "decay"          # confident victim survived; confidence -1
TRAIN_CONFIRM = "confirm"      # address match; confidence advanced
TRAIN_HOLD = "hold"            # address match; probabilistic advance missed
TRAIN_RESET = "reset"          # address mismatch on a hit; retrain in place


def encode_size(size_bytes: int) -> int:
    """Encode an access size into the APT's 2-bit size field."""
    try:
        return _SIZE_CODES[size_bytes]
    except KeyError:
        raise ValueError(f"unsupported access size: {size_bytes}") from None


def decode_size(code: int) -> int:
    """Decode the APT's 2-bit size field back to bytes."""
    return _SIZE_FROM_CODE[code]


@dataclass(frozen=True)
class AptEntryLayout:
    """Field widths of one APT entry (Table 1)."""

    tag_bits: int = 14
    address_bits: int = 49       # 32 for ARMv7, 49 for ARMv8
    confidence_bits: int = 2
    size_bits: int = 2
    way_bits: int = 2            # log2(L1D associativity); optional field

    def bits(self, include_way: bool = False) -> int:
        total = self.tag_bits + self.address_bits + self.confidence_bits + self.size_bits
        return total + (self.way_bits if include_way else 0)


@dataclass(frozen=True)
class PapConfig:
    """PAP predictor parameters (Table 4 defaults: 1k entries, 16-bit
    load-path history — a 67k-bit ≈ 8KB budget for ARMv8)."""

    entries: int = 1024
    tag_bits: int = 14
    history_bits: int = 16
    address_bits: int = 49
    way_prediction: bool = True
    fpc_vector: tuple[float, ...] = PAP_FPC_VECTOR
    allocation_policy: int = 2     # Policy-1: always replace; Policy-2: paper's choice
    seed: int = 0xAB7

    def __post_init__(self) -> None:
        if self.entries & (self.entries - 1):
            raise ValueError("APT entry count must be a power of two")
        if self.allocation_policy not in (1, 2):
            raise ValueError("allocation_policy must be 1 or 2")


class _AptEntry:
    __slots__ = ("tag", "addr", "size_code", "way", "confidence")

    def __init__(
        self,
        tag: int,
        addr: int,
        size_code: int,
        way: int | None,
        confidence: int = 0,
    ) -> None:
        self.tag = tag
        self.addr = addr
        self.size_code = size_code
        self.way = way
        self.confidence = confidence


class PapPredictor:
    """The APT plus its load-path-history context."""

    def __init__(self, config: PapConfig | None = None) -> None:
        self.config = config or PapConfig()
        cfg = self.config
        self._rng = random.Random(cfg.seed)
        self._index_bits = cfg.entries.bit_length() - 1
        self._entries: list[_AptEntry | None] = [None] * cfg.entries
        self.history = LoadPathHistory(cfg.history_bits)
        self._idx_fold = self.history.folded_register(self._index_bits)
        self._tag_fold = self.history.folded_register(cfg.tag_bits)
        # Hot-path constants hoisted off the (frozen-dataclass) config.
        self._index_mask = cfg.entries - 1
        self._tag_mask = (1 << cfg.tag_bits) - 1
        self._tag_shift = 2 + cfg.tag_bits
        self._conf_max = len(cfg.fpc_vector)
        self._use_way = cfg.way_prediction
        self.stats = PredictorStats()
        self.allocations = 0
        self.confidence_resets = 0

    # -- key computation ----------------------------------------------

    def compute_key(self, pc: int, history_value: int | None = None) -> tuple[int, int]:
        """(index, tag) for ``pc`` under the given (or current) history.

        Both index and tag XOR low-order PC bits with folded load-path
        history; the tag folds to ``tag_bits`` and the index to
        ``log2(entries)`` bits, so they decorrelate.
        """
        if history_value is None:
            # Hot path: the registered folds track the live history.
            idx_fold = self._idx_fold.value
            tag_fold = self._tag_fold.value
        else:
            cfg = self.config
            idx_fold = fold_history(history_value, cfg.history_bits, self._index_bits)
            tag_fold = fold_history(history_value, cfg.history_bits, cfg.tag_bits)
        word = pc >> 2
        index_bits = self._index_bits
        # Fold high PC bits into the index so regularly-strided code
        # does not alias systematically.
        index = (
            word ^ (word >> index_bits) ^ (word >> (2 * index_bits)) ^ idx_fold
        ) & self._index_mask
        tag = (word ^ (pc >> self._tag_shift) ^ tag_fold) & self._tag_mask
        return index, tag

    # -- prediction ---------------------------------------------------

    def predict(self, index: int, tag: int) -> AddressPrediction | None:
        """Predict using a key computed at fetch.

        Returns a prediction only on a tag match with saturated
        confidence; otherwise the predictor is still training.
        """
        entry = self._entries[index]
        if entry is None or entry.tag != tag:
            return None
        if entry.confidence < self._conf_max:
            return None
        return AddressPrediction(
            entry.addr,
            decode_size(entry.size_code),
            entry.way if self._use_way else None,
            index,
            tag,
        )

    def predict_pc(self, pc: int) -> AddressPrediction | None:
        """Convenience: key computation + prediction under current history."""
        index, tag = self.compute_key(pc)
        return self.predict(index, tag)

    # -- training -----------------------------------------------------

    def train(
        self,
        index: int,
        tag: int,
        addr: int,
        size: int,
        way: int | None = None,
    ) -> str:
        """Train the APT with an executed load (Section 3.1.2).

        ``index``/``tag`` must be the key computed when the load was
        fetched, so the update lands on the entry the prediction used.

        Returns one of the ``TRAIN_*`` outcome codes (a module-level
        string constant — returning one costs nothing on the hot path,
        which ignores it; the tracer's ``apt_train`` events consume it).
        """
        cfg = self.config
        entry = self._entries[index]
        size_code = encode_size(size)

        if entry is None or entry.tag != tag:
            # APT miss.
            if cfg.allocation_policy == 1 or entry is None or entry.confidence == 0:
                evicting = entry is not None
                self._entries[index] = _AptEntry(tag, addr, size_code, way)
                self.allocations += 1
                return TRAIN_EVICT if evicting else TRAIN_ALLOCATE
            entry.confidence -= 1
            return TRAIN_DECAY

        # APT hit.
        if entry.addr == addr:
            outcome = TRAIN_HOLD
            if entry.confidence < self._conf_max:
                if fpc_advance(self._rng, cfg.fpc_vector, entry.confidence):
                    entry.confidence += 1
                    outcome = TRAIN_CONFIRM
            entry.size_code = size_code
            entry.way = way
            return outcome
        self.confidence_resets += 1
        entry.addr = addr
        entry.size_code = size_code
        entry.way = way
        entry.confidence = 0
        return TRAIN_RESET

    # -- accounting ---------------------------------------------------

    def record_outcome(self, prediction: AddressPrediction | None, actual_addr: int) -> bool:
        """Update coverage/accuracy stats for one dynamic load.

        Returns True when the prediction was made and correct.
        """
        self.stats.loads_seen += 1
        if prediction is None:
            return False
        self.stats.predictions += 1
        correct = prediction.addr == actual_addr
        if correct:
            self.stats.correct += 1
        return correct

    def storage_bits(self, include_way: bool = False) -> int:
        """Total APT budget (Table 4: 1k x 67 bits = 67k bits for ARMv8)."""
        layout = AptEntryLayout(
            tag_bits=self.config.tag_bits, address_bits=self.config.address_bits
        )
        return self.config.entries * layout.bits(include_way=include_way)
