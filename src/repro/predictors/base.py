"""Shared prediction types and coverage/accuracy accounting.

The paper's definitions (Section 5.1, footnote 1):

* *coverage* — predicted dynamic loads / all dynamic loads
* *accuracy* — correctly predicted dynamic loads / predicted dynamic loads
"""

from __future__ import annotations

from dataclasses import dataclass


class AddressPrediction:
    """One address prediction made at fetch.

    A ``__slots__`` plain class (one is allocated per predicted load on
    the simulate() hot path).

    Attributes:
        addr: Predicted effective (base) memory address.
        size: Predicted per-destination access size in bytes.
        way: Predicted L1D way, or ``None`` when way prediction is off
            or the training fill has not recorded one yet.
        index: APT/link-table slot the prediction came from — carried
            along so training updates the same entry the prediction
            used, even if global history has moved on since fetch.
        tag: The tag computed at prediction time (same purpose).
    """

    __slots__ = ("addr", "size", "way", "index", "tag")

    def __init__(self, addr: int, size: int, way: int | None, index: int, tag: int) -> None:
        self.addr = addr
        self.size = size
        self.way = way
        self.index = index
        self.tag = tag


@dataclass
class PredictorStats:
    """Coverage/accuracy accounting in the paper's terms."""

    loads_seen: int = 0
    predictions: int = 0
    correct: int = 0

    @property
    def coverage(self) -> float:
        return self.predictions / self.loads_seen if self.loads_seen else 0.0

    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 1.0

    @property
    def mispredictions(self) -> int:
        return self.predictions - self.correct

    def merge(self, other: "PredictorStats") -> "PredictorStats":
        """Combine accounting from two runs (suite-level aggregation)."""
        return PredictorStats(
            loads_seen=self.loads_seen + other.loads_seen,
            predictions=self.predictions + other.predictions,
            correct=self.correct + other.correct,
        )
