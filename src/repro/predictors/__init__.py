"""Address and value predictors.

This package holds the paper's primary contribution — the Path-based
Address Predictor (PAP, Section 3.1) — together with every comparison
point the evaluation uses:

* :class:`PapPredictor` — APT indexed by (load PC xor folded load-path
  history), 2-bit forward-probabilistic confidence, Policy-2 allocation,
  optional way-prediction field.
* :class:`CapPredictor` — the Correlated Address Predictor of Bekerman
  et al. (per-static-load address history + link table), the paper's
  address-prediction baseline.
* :class:`VtagePredictor` — Perais & Seznec's VTAGE value predictor,
  plus the static/dynamic opcode filters the paper adds for the ARM
  multi-destination-load problem (Section 5.2.2).
* :class:`LastValuePredictor` and :class:`StrideValuePredictor` —
  classical value predictors used in the related-work analyses.
* :class:`TournamentChooser` — the PC-indexed 2-bit chooser used to
  combine DLVP and VTAGE (Figure 8).
"""

from repro.predictors.confidence import ForwardProbabilisticCounter, SaturatingCounter
from repro.predictors.history import LoadPathHistory
from repro.predictors.base import AddressPrediction, PredictorStats
from repro.predictors.pap import PapConfig, PapPredictor, AptEntryLayout
from repro.predictors.cap import CapConfig, CapPredictor
from repro.predictors.vtage import (
    VtageConfig,
    VtagePredictor,
    OpcodeFilterMode,
    instruction_type,
)
from repro.predictors.dvtage import DvtageConfig, DvtagePredictor
from repro.predictors.lvp import LastValuePredictor
from repro.predictors.stride import StrideValuePredictor
from repro.predictors.tournament import TournamentChooser

__all__ = [
    "ForwardProbabilisticCounter",
    "SaturatingCounter",
    "LoadPathHistory",
    "AddressPrediction",
    "PredictorStats",
    "PapConfig",
    "PapPredictor",
    "AptEntryLayout",
    "CapConfig",
    "CapPredictor",
    "VtageConfig",
    "VtagePredictor",
    "OpcodeFilterMode",
    "instruction_type",
    "DvtageConfig",
    "DvtagePredictor",
    "LastValuePredictor",
    "StrideValuePredictor",
    "TournamentChooser",
]
