"""CAP: Correlated Address Predictor (Bekerman et al., ISCA 1999).

The paper's address-prediction baseline.  Two direct-mapped tables
(Table 4: 1k entries each):

* *Load buffer* — indexed by load PC; holds a tag, a per-static-load
  history register (hash of the load's recent addresses), a saturating
  confidence counter and the last observed address.
* *Link table* — indexed by the load-buffer history; holds a tag and
  the address that followed that history last time ("link").

Because the context is *per static load*, managing speculative state is
awkward in hardware (Section 2.2); in this functional model we simply
train at execute in program order, which is the idealised behaviour.

The confidence threshold is a parameter: the original paper used 3; the
DLVP paper sweeps 3..64 (Figure 4) and uses 24 inside DLVP-with-CAP
(Section 5.2.3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.predictors.base import AddressPrediction, PredictorStats
from repro.branch.history import fold_history


@dataclass(frozen=True)
class CapConfig:
    """CAP parameters (Table 4 defaults).

    ``update_delay`` models the structural lag of CAP's per-static-load
    history: the history is built from load *addresses*, which are not
    known at fetch, so with many instances of a tight loop in flight
    the history (and the link/confidence state) used by a lookup trails
    the youngest executed instance by roughly the in-flight load count.
    PAP does not share this problem — its context is load *PCs*, which
    the front-end has at fetch and can update speculatively (the
    Section 2.2 comparison).  The delay is expressed in dynamic loads;
    224 ROB entries at a ~1/3 load mix give ~48-75 in-flight loads.
    """

    load_buffer_entries: int = 1024
    link_entries: int = 1024
    tag_bits: int = 14
    history_bits: int = 16
    confidence_threshold: int = 3
    address_bits: int = 49
    update_delay: int = 48

    def __post_init__(self) -> None:
        if self.load_buffer_entries & (self.load_buffer_entries - 1):
            raise ValueError("load buffer entries must be a power of two")
        if self.link_entries & (self.link_entries - 1):
            raise ValueError("link entries must be a power of two")
        if self.confidence_threshold <= 0:
            raise ValueError("confidence threshold must be positive")


@dataclass
class _LoadBufferEntry:
    tag: int
    history: int = 0
    confidence: int = 0
    last_addr: int = 0


@dataclass
class _LinkEntry:
    tag: int
    addr: int


class CapPredictor:
    """Two-table correlated address predictor."""

    def __init__(self, config: CapConfig | None = None) -> None:
        self.config = config or CapConfig()
        self._load_buffer: list[_LoadBufferEntry | None] = [None] * self.config.load_buffer_entries
        self._links: list[_LinkEntry | None] = [None] * self.config.link_entries
        self._pending: deque[tuple[int, int]] = deque()
        # Last link-table candidate computed at lookup time per static
        # load: confidence is trained against *these* (what a real CAP
        # would actually have predicted at fetch), not against the
        # delayed training stream's self-consistent view.
        self._shadow: dict[int, int | None] = {}
        self.stats = PredictorStats()

    # -- indexing -----------------------------------------------------

    def _lb_index(self, pc: int) -> int:
        word = pc >> 2
        bits = self.config.load_buffer_entries.bit_length() - 1
        return (word ^ (word >> bits) ^ (word >> (2 * bits))) & (
            self.config.load_buffer_entries - 1
        )

    def _lb_tag(self, pc: int) -> int:
        return ((pc >> 2) ^ (pc >> (2 + self.config.tag_bits))) & (
            (1 << self.config.tag_bits) - 1
        )

    def _link_index(self, pc: int, history: int) -> int:
        bits = self.config.link_entries.bit_length() - 1
        folded = fold_history(history, self.config.history_bits, bits)
        word = pc >> 2
        return (word ^ (word >> bits) ^ folded) & (self.config.link_entries - 1)

    def _link_tag(self, pc: int, history: int) -> int:
        folded = fold_history(history, self.config.history_bits, self.config.tag_bits)
        return ((pc >> 2) ^ (folded << 1)) & ((1 << self.config.tag_bits) - 1)

    def _hash_history(self, history: int, addr: int) -> int:
        """Shift 4 low address bits into the 16-bit per-load history.

        CAP keeps a *compressed* address history — a few low-order bits
        per address, four addresses deep here.  The compression is what
        limits it: streams alias every 16 elements and data-dependent
        address sequences fold onto each other, so confidence never
        builds there, while constant-address and short-period loads
        survive.  (Keeping full addresses would need hundreds of bits
        per load-buffer entry.)
        """
        mask = (1 << self.config.history_bits) - 1
        return ((history << 4) | ((addr >> 3) & 0xF)) & mask

    # -- prediction ---------------------------------------------------

    def predict_pc(self, pc: int) -> AddressPrediction | None:
        """Predict the next address for the static load at ``pc``.

        The link candidate is computed (and remembered for confidence
        training) even while the predictor is below threshold — a real
        CAP reads both tables every lookup and uses the outcome to move
        the confidence counter.
        """
        lb = self._load_buffer[self._lb_index(pc)]
        if lb is None or lb.tag != self._lb_tag(pc):
            self._shadow[pc] = None
            return None
        link_index = self._link_index(pc, lb.history)
        link = self._links[link_index]
        if link is None or link.tag != self._link_tag(pc, lb.history):
            self._shadow[pc] = None
            return None
        self._shadow[pc] = link.addr
        if lb.confidence < self.config.confidence_threshold:
            return None
        return AddressPrediction(
            addr=link.addr, size=8, way=None, index=link_index, tag=link.tag
        )

    # -- training -----------------------------------------------------

    def train(self, pc: int, addr: int) -> None:
        """Train with an executed load (applied after ``update_delay``).

        Updates are queued and applied once ``update_delay`` younger
        loads have trained — the in-flight history lag described in
        :class:`CapConfig`.  With ``update_delay=0`` training is
        immediate (the idealised predictor).
        """
        self._train_confidence(pc, addr)
        if self.config.update_delay <= 0:
            self._apply_train(pc, addr)
            return
        self._pending.append((pc, addr))
        while len(self._pending) > self.config.update_delay:
            old_pc, old_addr = self._pending.popleft()
            self._apply_train(old_pc, old_addr)

    def _train_confidence(self, pc: int, addr: int) -> None:
        """Move the confidence counter by the real lookup outcome."""
        lb = self._load_buffer[self._lb_index(pc)]
        if lb is None or lb.tag != self._lb_tag(pc):
            return
        shadow = self._shadow.get(pc)
        if shadow is None:
            return
        if shadow == addr:
            if lb.confidence < self.config.confidence_threshold:
                lb.confidence += 1
        elif lb.confidence > 0:
            lb.confidence -= 1

    def _apply_train(self, pc: int, addr: int) -> None:
        lb_index = self._lb_index(pc)
        lb_tag = self._lb_tag(pc)
        lb = self._load_buffer[lb_index]

        if lb is None or lb.tag != lb_tag:
            self._load_buffer[lb_index] = _LoadBufferEntry(
                tag=lb_tag, history=self._hash_history(0, addr), last_addr=addr
            )
            return

        # Install the (history -> address) link and advance the history.
        # Confidence is handled in _train_confidence against real
        # lookup outcomes, not here.
        link_index = self._link_index(pc, lb.history)
        link_tag = self._link_tag(pc, lb.history)
        link = self._links[link_index]
        if link is None or link.tag != link_tag or link.addr != addr:
            self._links[link_index] = _LinkEntry(tag=link_tag, addr=addr)

        lb.history = self._hash_history(lb.history, addr)
        lb.last_addr = addr

    # -- accounting ---------------------------------------------------

    def record_outcome(self, prediction: AddressPrediction | None, actual_addr: int) -> bool:
        """Coverage/accuracy bookkeeping, same contract as PAP's."""
        self.stats.loads_seen += 1
        if prediction is None:
            return False
        self.stats.predictions += 1
        correct = prediction.addr == actual_addr
        if correct:
            self.stats.correct += 1
        return correct

    def storage_bits(self) -> int:
        """Table 4: ~95k bits for ARMv8 (78k for ARMv7)."""
        cfg = self.config
        lb_bits = cfg.load_buffer_entries * (cfg.tag_bits + 2 + 8 + cfg.history_bits)
        link_bits = cfg.link_entries * (cfg.tag_bits + (cfg.address_bits - 8))
        return lb_bits + link_bits
