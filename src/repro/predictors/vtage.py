"""VTAGE value predictor (Perais & Seznec, HPCA 2014) with the paper's
ARM-specific opcode filters.

Structure per Table 4: three direct-mapped, partially tagged tables of
256 entries indexed with hashes of PC and global *branch* history of
lengths {0, 5, 13}; each entry carries a 16-bit tag, a 64-bit value and
a 3-bit forward-probabilistic confidence counter.  The 0-history table
doubles as the tagged last-value base ("using tags with the LVP table is
crucial", Section 2.1).

Multi-destination loads (Section 5.2.2): each destination register is a
separate prediction slot whose key concatenates the slot number with the
PC; a 128-bit vector value burns two 64-bit slots.  Mispredicting *any*
slot flushes, and a load only counts as covered when *every* slot
predicts — this is precisely the ISA-induced inefficiency the paper
diagnoses.

Opcode filters:

* ``STATIC`` — LDP/LDM/VLD are never predicted and never update the
  tables (preloaded filter, no training needed).
* ``DYNAMIC`` — a small table tracks per-instruction-type accuracy;
  types observed below 95% accuracy are blocked from predicting and
  updating.  Training the filter costs mispredictions, which is why the
  paper finds static beats dynamic.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.isa import Instruction, OpClass
from repro.predictors.base import PredictorStats
from repro.predictors.confidence import VTAGE_FPC_VECTOR, fpc_advance
from repro.branch.history import fold_history


class OpcodeFilterMode(enum.Enum):
    """Which multi-destination-load filter VTAGE runs with (Fig 7)."""

    NONE = "none"
    DYNAMIC = "dynamic"
    STATIC = "static"


_LOAD = int(OpClass.LOAD)
_EXCLUDED_OPS = frozenset(
    {int(OpClass.STORE), int(OpClass.ATOMIC), int(OpClass.BARRIER)}
)
_OP_NAMES = {int(op): op.name.lower() for op in OpClass}


def instruction_type(inst: Instruction) -> str:
    """Coarse instruction type used by the opcode filters."""
    return _itype_flat(int(inst.op), len(inst.dests), inst.is_vector)


def _itype_flat(op: int, ndests: int, is_vector: bool) -> str:
    """:func:`instruction_type` over raw column scalars."""
    if op == _LOAD:
        if is_vector:
            return "vld"
        if ndests == 2:
            return "ldp"
        if ndests > 2:
            return "ldm"
        return "load"
    return _OP_NAMES[op]


_FILTERED_TYPES = frozenset({"ldp", "ldm", "vld"})


@dataclass(frozen=True)
class VtageConfig:
    """VTAGE parameters (Table 4: 3 x 256 x 83 bits = 62.3k bits)."""

    table_entries: int = 256
    tag_bits: int = 16
    history_lengths: tuple[int, ...] = (0, 5, 13)
    fpc_vector: tuple[float, ...] = VTAGE_FPC_VECTOR
    loads_only: bool = True
    filter_mode: OpcodeFilterMode = OpcodeFilterMode.STATIC
    dynamic_filter_threshold: float = 0.95
    dynamic_filter_warmup: int = 128
    max_history: int = 64
    seed: int = 0x57A6

    def __post_init__(self) -> None:
        if self.table_entries & (self.table_entries - 1):
            raise ValueError("table entries must be a power of two")
        if not self.history_lengths or self.history_lengths[0] != 0:
            raise ValueError("first VTAGE component must use history length 0 (LVP base)")


class _VtageEntry:
    __slots__ = ("tag", "value", "confidence")

    def __init__(self, tag: int, value: int, confidence: int = 0) -> None:
        self.tag = tag
        self.value = value
        self.confidence = confidence


@dataclass
class _SlotLookup:
    """Where one prediction slot hit (or would allocate)."""

    keys: list[tuple[int, int]]          # (index, tag) per table
    provider: int | None                  # table index of longest match
    prediction: int | None                # value if provider confident


@dataclass
class VtageHandle:
    """Fetch-time lookup state carried to execute (two-phase driving)."""

    lookups: list[_SlotLookup]
    prediction: tuple[int, ...] | None


@dataclass
class _TypeAccuracy:
    predictions: int = 0
    correct: int = 0

    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 1.0


class VtagePredictor:
    """VTAGE with per-destination-register slots and opcode filtering."""

    def __init__(self, config: VtageConfig | None = None) -> None:
        self.config = config or VtageConfig()
        cfg = self.config
        self._rng = random.Random(cfg.seed)
        self._tables: list[list[_VtageEntry | None]] = [
            [None] * cfg.table_entries for _ in cfg.history_lengths
        ]
        self._index_bits = cfg.table_entries.bit_length() - 1
        self.stats = PredictorStats()              # per-load accounting
        self.slot_predictions = 0
        self.slot_correct = 0
        self._type_accuracy: dict[str, _TypeAccuracy] = {}
        # One-entry memo of per-table (idx_fold, tag_fold) pairs for the
        # last seen history value: the branch history only changes on
        # branches, so runs of consecutive loads (and the multiple slots
        # of one load) share the fold computation.
        self._fold_memo_history: int | None = None
        self._fold_memo: list[tuple[int, int]] = []

    # -- eligibility ----------------------------------------------------

    def eligible(self, inst: Instruction) -> bool:
        """May this instruction be predicted / may it update the tables?"""
        return self.eligible_flat(
            int(inst.op), len(inst.dests), inst.is_vector, inst.values
        )

    def eligible_flat(
        self, op: int, ndests: int, is_vector: bool, values: tuple[int, ...]
    ) -> bool:
        """:meth:`eligible` over raw column scalars (columnar hot path)."""
        if not ndests or not values:
            return False
        if self.config.loads_only and op != _LOAD:
            return False
        if op in _EXCLUDED_OPS:
            return False
        itype = _itype_flat(op, ndests, is_vector)
        mode = self.config.filter_mode
        if mode == OpcodeFilterMode.STATIC and itype in _FILTERED_TYPES:
            return False
        if mode == OpcodeFilterMode.DYNAMIC:
            acc = self._type_accuracy.get(itype)
            if (
                acc is not None
                and acc.predictions >= self.config.dynamic_filter_warmup
                and acc.accuracy < self.config.dynamic_filter_threshold
            ):
                return False
        return True

    # -- keys -----------------------------------------------------------

    def _slot_keys(self, pc: int, num_slots: int, slot: int, history: int) -> list[tuple[int, int]]:
        """(index, tag) in each table for one prediction slot.

        The PC is concatenated with the slot number and the destination
        count (the paper's fix for multi-destination loads) before
        hashing with the folded branch history.
        """
        cfg = self.config
        base = ((pc >> 2) << 5) | (slot << 1) | (num_slots & 1)
        # Fold high bits down so regularly-strided code does not alias
        # systematically in the small (256-entry) tables.
        mixed = base ^ (base >> self._index_bits) ^ (base >> (2 * self._index_bits))
        keys = []
        for table, (idx_fold, tag_fold) in enumerate(self._folds(history)):
            index = (mixed ^ idx_fold ^ (table * 0x9E5)) & (cfg.table_entries - 1)
            tag = (base ^ (base >> self._index_bits) ^ (tag_fold << 1)) & (
                (1 << cfg.tag_bits) - 1
            )
            keys.append((index, tag))
        return keys

    def _folds(self, history: int) -> list[tuple[int, int]]:
        """Per-table (index fold, tag fold) of ``history``, memoized."""
        if history == self._fold_memo_history:
            return self._fold_memo
        cfg = self.config
        folds = [
            (
                fold_history(history, hist_len, self._index_bits) if hist_len else 0,
                fold_history(history, hist_len, cfg.tag_bits) if hist_len else 0,
            )
            for hist_len in cfg.history_lengths
        ]
        self._fold_memo_history = history
        self._fold_memo = folds
        return folds

    def _lookup_slot(self, keys: list[tuple[int, int]]) -> _SlotLookup:
        provider = None
        prediction = None
        for table in reversed(range(len(self.config.history_lengths))):
            index, tag = keys[table]
            entry = self._tables[table][index]
            if entry is not None and entry.tag == tag:
                provider = table
                if entry.confidence >= len(self.config.fpc_vector):
                    prediction = entry.value
                break
        return _SlotLookup(keys=keys, provider=provider, prediction=prediction)

    # -- prediction -------------------------------------------------------

    def predict(self, inst: Instruction, history: int) -> tuple[int, ...] | None:
        """Predict all destination values, or None.

        All-or-nothing: a multi-destination load is only predicted when
        every slot has a confident provider (a partial prediction would
        still stall the consumers of the unpredicted registers and still
        risk a flush).
        """
        lookups = self._lookups_flat(
            inst.pc, int(inst.op), len(inst.dests), inst.is_vector,
            inst.values, history,
        )
        if lookups is None:
            return None
        values = [lk.prediction for lk in lookups]
        if any(v is None for v in values):
            return None
        return self._assemble_flat(len(inst.dests), inst.is_vector, values)

    def _lookups(self, inst: Instruction, history: int) -> list[_SlotLookup] | None:
        return self._lookups_flat(
            inst.pc, int(inst.op), len(inst.dests), inst.is_vector,
            inst.values, history,
        )

    def _lookups_flat(
        self,
        pc: int,
        op: int,
        ndests: int,
        is_vector: bool,
        values: tuple[int, ...],
        history: int,
    ) -> list[_SlotLookup] | None:
        if not self.eligible_flat(op, ndests, is_vector, values):
            return None
        num_slots = (2 * ndests) if is_vector else ndests
        return [
            self._lookup_slot(self._slot_keys(pc, num_slots, slot, history))
            for slot in range(num_slots)
        ]

    def _assemble_flat(
        self, ndests: int, is_vector: bool, slot_values: list[int]
    ) -> tuple[int, ...]:
        """Recombine 64-bit slots into per-destination values."""
        if not is_vector:
            return tuple(slot_values)
        values = []
        for i in range(ndests):
            low, high = slot_values[2 * i], slot_values[2 * i + 1]
            values.append((high << 64) | low)
        return tuple(values)

    def _slot_targets_flat(
        self, is_vector: bool, values: tuple[int, ...]
    ) -> list[int]:
        """The correct 64-bit value for each prediction slot."""
        if not is_vector:
            return [v & ((1 << 64) - 1) for v in values]
        targets = []
        for value in values:
            targets.append(value & ((1 << 64) - 1))
            targets.append((value >> 64) & ((1 << 64) - 1))
        return targets

    # -- two-phase driving (used inside the pipeline model) ---------------

    def begin(self, inst: Instruction, history: int) -> VtageHandle | None:
        """Fetch side: look up all slots; None when ineligible.

        Counts every load toward the coverage denominator, eligible or
        not — the paper's coverage is over *all* dynamic loads.
        """
        return self.begin_flat(
            inst.pc, int(inst.op), len(inst.dests), inst.is_vector,
            inst.values, history,
        )

    def begin_flat(
        self,
        pc: int,
        op: int,
        ndests: int,
        is_vector: bool,
        values: tuple[int, ...],
        history: int,
    ) -> VtageHandle | None:
        """:meth:`begin` over raw column scalars (columnar hot path)."""
        if op == _LOAD:
            self.stats.loads_seen += 1
        lookups = self._lookups_flat(pc, op, ndests, is_vector, values, history)
        if lookups is None:
            return None
        slot_values = [lk.prediction for lk in lookups]
        prediction = None
        if all(v is not None for v in slot_values):
            prediction = self._assemble_flat(ndests, is_vector, slot_values)
        return VtageHandle(lookups=lookups, prediction=prediction)

    def finish(self, handle: VtageHandle, inst: Instruction) -> bool:
        """Execute side: train using the fetch-time lookups.

        Returns True when the (made) prediction was fully correct.
        """
        return self._train_with_lookups_flat(
            handle.lookups, int(inst.op), len(inst.dests), inst.is_vector,
            inst.values,
        )

    def finish_flat(
        self,
        handle: VtageHandle,
        op: int,
        ndests: int,
        is_vector: bool,
        values: tuple[int, ...],
    ) -> bool:
        """:meth:`finish` over raw column scalars (columnar hot path)."""
        return self._train_with_lookups_flat(
            handle.lookups, op, ndests, is_vector, values
        )

    # -- training ---------------------------------------------------------

    def train(self, inst: Instruction, history: int) -> tuple[int, ...] | None:
        """Predict-and-train for one instruction; returns the prediction.

        Combines the fetch-time lookup with the execute-time update under
        the same history value — the idealised speculative-history
        management the standalone drivers use.
        """
        op = int(inst.op)
        ndests = len(inst.dests)
        is_vector = inst.is_vector
        if op == _LOAD:
            self.stats.loads_seen += 1
        lookups = self._lookups_flat(
            inst.pc, op, ndests, is_vector, inst.values, history
        )
        if lookups is None:
            return None
        slot_values = [lk.prediction for lk in lookups]
        predicted_all = all(v is not None for v in slot_values)
        self._train_with_lookups_flat(lookups, op, ndests, is_vector, inst.values)
        if not predicted_all:
            return None
        return self._assemble_flat(ndests, is_vector, slot_values)

    def _train_with_lookups_flat(
        self,
        lookups: list[_SlotLookup],
        op: int,
        ndests: int,
        is_vector: bool,
        values: tuple[int, ...],
    ) -> bool:
        targets = self._slot_targets_flat(is_vector, values)
        slot_values = [lk.prediction for lk in lookups]
        predicted_all = all(v is not None for v in slot_values)
        correct_all = predicted_all and all(
            v == t for v, t in zip(slot_values, targets)
        )

        for lookup, target in zip(lookups, targets):
            self._train_slot(lookup, target)

        if op == _LOAD and predicted_all:
            self.stats.predictions += 1
            if correct_all:
                self.stats.correct += 1

        itype = _itype_flat(op, ndests, is_vector)
        acc = self._type_accuracy.setdefault(itype, _TypeAccuracy())
        if predicted_all:
            acc.predictions += 1
            if correct_all:
                acc.correct += 1
            self.slot_predictions += len(lookups)
            self.slot_correct += sum(
                1 for v, t in zip(slot_values, targets) if v == t
            )

        return correct_all

    def _train_slot(self, lookup: _SlotLookup, target: int) -> None:
        cfg = self.config
        if lookup.provider is not None:
            index, tag = lookup.keys[lookup.provider]
            entry = self._tables[lookup.provider][index]
            assert entry is not None and entry.tag == tag
            if entry.value == target:
                if entry.confidence < len(cfg.fpc_vector):
                    if fpc_advance(self._rng, cfg.fpc_vector, entry.confidence):
                        entry.confidence += 1
                return
            if entry.confidence == 0:
                entry.value = target
            else:
                entry.confidence = 0
            self._allocate(lookup, target)
            return
        self._allocate(lookup, target)

    def _allocate(self, lookup: _SlotLookup, target: int) -> None:
        """Allocate in a longer-history table whose victim is unconfident."""
        start = 0 if lookup.provider is None else lookup.provider + 1
        for table in range(start, len(self.config.history_lengths)):
            index, tag = lookup.keys[table]
            entry = self._tables[table][index]
            if entry is None or entry.confidence == 0:
                self._tables[table][index] = _VtageEntry(tag=tag, value=target)
                return

    # -- accounting ---------------------------------------------------------

    def storage_bits(self) -> int:
        """Table 4: 3 x 256 x 83 = 62.3k bits."""
        cfg = self.config
        entry_bits = cfg.tag_bits + 64 + 3
        return len(cfg.history_lengths) * cfg.table_entries * entry_bits

    def type_accuracy_report(self) -> dict[str, float]:
        """Observed per-type accuracy (drives the dynamic filter)."""
        return {t: a.accuracy for t, a in self._type_accuracy.items() if a.predictions}
