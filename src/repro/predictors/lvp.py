"""Last-value predictor (Lipasti et al., 1996).

The simplest context-free value predictor: a PC-indexed table holding
the last value each static load produced, guarded by a forward
probabilistic confidence counter.  It is the scheme Figure 1's
motivation targets: an interleaving store makes the stored last value
stale and forces a misprediction plus retraining.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.isa import Instruction, OpClass
from repro.predictors.base import PredictorStats
from repro.predictors.confidence import VTAGE_FPC_VECTOR, fpc_advance


@dataclass
class _LvpEntry:
    tag: int
    value: int
    confidence: int = 0


class LastValuePredictor:
    """Tagged, direct-mapped last-value table (single-destination loads).

    Multi-destination loads are handled like vanilla VTAGE handles them:
    one slot per destination via PC concatenation.
    """

    def __init__(
        self,
        entries: int = 1024,
        tag_bits: int = 14,
        fpc_vector: tuple[float, ...] = VTAGE_FPC_VECTOR,
        seed: int = 0x14B,
    ) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.tag_bits = tag_bits
        self.fpc_vector = fpc_vector
        self._rng = random.Random(seed)
        self._table: list[_LvpEntry | None] = [None] * entries
        self.stats = PredictorStats()

    def _key(self, pc: int, slot: int) -> tuple[int, int]:
        base = ((pc >> 2) << 4) | slot
        bits = self.entries.bit_length() - 1
        index = (base ^ (base >> bits) ^ (base >> (2 * bits))) & (self.entries - 1)
        tag = (base ^ (base >> bits)) & ((1 << self.tag_bits) - 1)
        return index, tag

    def _predict_slot(self, pc: int, slot: int) -> int | None:
        index, tag = self._key(pc, slot)
        entry = self._table[index]
        if entry is None or entry.tag != tag:
            return None
        if entry.confidence < len(self.fpc_vector):
            return None
        return entry.value

    def _train_slot(self, pc: int, slot: int, value: int) -> None:
        index, tag = self._key(pc, slot)
        entry = self._table[index]
        if entry is None or entry.tag != tag:
            self._table[index] = _LvpEntry(tag=tag, value=value)
            return
        if entry.value == value:
            if entry.confidence < len(self.fpc_vector):
                if fpc_advance(self._rng, self.fpc_vector, entry.confidence):
                    entry.confidence += 1
        else:
            entry.value = value
            entry.confidence = 0

    def train(self, inst: Instruction) -> tuple[int, ...] | None:
        """Predict-and-train; returns the prediction made (or None)."""
        if inst.op != OpClass.LOAD or not inst.dests:
            return None
        self.stats.loads_seen += 1
        mask = (1 << 64) - 1
        predictions = [
            self._predict_slot(inst.pc, slot) for slot in range(len(inst.dests))
        ]
        for slot, value in enumerate(inst.values):
            self._train_slot(inst.pc, slot, value & mask)
        if any(p is None for p in predictions):
            return None
        self.stats.predictions += 1
        if all(p == (v & mask) for p, v in zip(predictions, inst.values)):
            self.stats.correct += 1
        return tuple(predictions)  # type: ignore[arg-type]

    def storage_bits(self) -> int:
        return self.entries * (self.tag_bits + 64 + 3)
