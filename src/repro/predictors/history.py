"""Load-path history (Section 3.1).

The load-path history register is built by shifting the least
significant non-zero PC bit (bit 2 of a 4-byte-aligned PC) of *each
dynamic load* into a global shift register.  It forms a global context
describing the path by which the current load was reached.  Compared to
branch-path history it is "less compact but allows the predictor to
distinguish among multiple loads in the same basic block".

Because the context is a single global register, managing speculative
state is trivial: snapshot on each speculative update, restore the
snapshot of the value-mispredicted load on recovery (Section 2.2).
"""

from __future__ import annotations

from repro.branch.history import FoldedHistory, GlobalHistory
from repro.isa.fetch import path_history_bit


class LoadPathHistory:
    """Global load-path history register with snapshot/restore."""

    def __init__(self, length: int = 16) -> None:
        self._history = GlobalHistory(length)

    def folded_register(self, target_bits: int) -> FoldedHistory:
        """Incrementally maintained fold of the full load-path history."""
        return self._history.folded_register(self._history.length, target_bits)

    @property
    def length(self) -> int:
        return self._history.length

    @property
    def value(self) -> int:
        return self._history.value

    def push_load(self, load_pc: int) -> None:
        """Record one dynamic load on the path."""
        self._history.push(path_history_bit(load_pc))

    def folded(self, target_bits: int) -> int:
        return self._history.folded(target_bits)

    def snapshot(self) -> int:
        return self._history.snapshot()

    def restore(self, snapshot: int) -> None:
        self._history.restore(snapshot)
