"""The trace-driven out-of-order core model.

One pass over the trace assigns each dynamic instruction a fetch,
issue, completion and commit cycle under the baseline's resource
constraints (Table 4).  Wrong-path work is not simulated; control and
value mispredictions cost their redirect/refill latency, the standard
trace-driven approximation.

What the model captures (because the paper's results hinge on it):

* load-use dependence chains — consumers wait on ``reg_ready`` unless a
  value prediction made the destination available at rename;
* flush costs — branch, memory-order and value mispredictions push the
  fetch stream past the resolving cycle plus the front-end depth;
* early branch resolution — a branch fed by a value-predicted load
  issues earlier, shrinking its own misprediction penalty (the paper's
  perlbmk effect);
* in-flight-store visibility — stores update the committed memory image
  only at commit, so DLVP probes can return stale values for racing
  loads (the LSCD's reason to exist);
* lane/width/window contention — 2 LS + 6 generic lanes, 4-wide fetch,
  8-wide commit, ROB/LDQ/STQ occupancy.
"""

from __future__ import annotations

from repro.branch import BranchUnit
from repro.isa import (
    EXECUTION_LATENCY,
    OpClass,
    fetch_group_address,
    is_branch_op,
)
from repro.mdp import StoreSetsPredictor
from repro.memory import HierarchyConfig, MemoryHierarchy, MemoryImage
from repro.pipeline.config import CoreConfig
from repro.pipeline.recovery import RecoveryMode
from repro.pipeline.schemes import Scheme
from repro.pipeline.stats import EnergyEvents, FlushStats, SimResult
from repro.trace import Trace

_WORD_BYTES = 4
_LS_OPS = frozenset({OpClass.LOAD, OpClass.STORE, OpClass.ATOMIC})


def _touched_words(addr: int, nbytes: int) -> range:
    first = addr // _WORD_BYTES
    last = (addr + max(1, nbytes) - 1) // _WORD_BYTES
    return range(first, last + 1)


class _IssuePorts:
    """Out-of-order issue bandwidth for one lane group.

    Tracks how many operations issued in each cycle; an operation ready
    at cycle ``r`` issues in the earliest cycle >= r with a free slot.
    Unlike a per-lane "next free" reservation, this lets ready younger
    ops backfill around older stalled ones — i.e., actual out-of-order
    scheduling under a lane-count constraint.
    """

    __slots__ = ("width", "_busy")

    def __init__(self, width: int) -> None:
        self.width = width
        self._busy: dict[int, int] = {}

    def issue_at(self, ready: int) -> int:
        busy = self._busy
        cycle = ready
        while busy.get(cycle, 0) >= self.width:
            cycle += 1
        busy[cycle] = busy.get(cycle, 0) + 1
        return cycle


def simulate(
    trace: Trace,
    scheme: Scheme | None = None,
    core_config: CoreConfig | None = None,
    hierarchy_config: HierarchyConfig | None = None,
    recovery: RecoveryMode = RecoveryMode.FLUSH,
) -> SimResult:
    """Run one trace through the core model.

    Args:
        trace: The workload trace.
        scheme: Value-prediction scheme, or None for the baseline.
        core_config: Core parameters (Table 4 defaults).
        hierarchy_config: Memory-hierarchy parameters.
        recovery: Value-misprediction recovery model (Figure 10).

    Returns:
        A :class:`SimResult`; compare runs of the same trace with
        :meth:`SimResult.speedup_over`.
    """
    cfg = core_config or CoreConfig()
    hierarchy = MemoryHierarchy(hierarchy_config)
    image = MemoryImage()
    branch_unit = BranchUnit()
    mdp = StoreSetsPredictor()
    if scheme is not None:
        scheme.bind(hierarchy, image, branch_unit)

    n = len(trace)
    commit_cycles = [0] * n
    reg_ready: dict[int, int] = {}
    ls_ports = _IssuePorts(cfg.ls_lanes)
    gen_ports = _IssuePorts(cfg.generic_lanes)
    # word -> (store seq, store done cycle, store pc): newest store per word.
    word_store: dict[int, tuple[int, int, int]] = {}
    store_done: dict[int, int] = {}

    fetch_cycle = 0
    pending_redirect = 0
    force_new_group = True
    slots_used = 0
    current_group = -1
    prev_pc: int | None = None
    loads_in_group = 0

    commit_ptr = 0
    last_commit_cycle = 0
    commits_in_cycle = 0
    load_commits: list[int] = []
    store_commits: list[int] = []

    flushes = FlushStats()
    loads = 0

    instructions = trace.instructions
    for i in range(n):
        inst = instructions[i]

        # ---- fetch grouping --------------------------------------------
        new_group = (
            force_new_group
            or slots_used >= cfg.fetch_width
            or prev_pc is None
            or inst.pc != prev_pc + 4
            or fetch_group_address(inst.pc) != current_group
        )
        if new_group:
            fetch_cycle = max(fetch_cycle + 1, pending_redirect)
            slots_used = 0
            loads_in_group = 0
            current_group = fetch_group_address(inst.pc)
            force_new_group = False
        slots_used += 1
        prev_pc = inst.pc

        # ---- structural stalls (ROB / LDQ / STQ) ------------------------
        if i >= cfg.rob_entries:
            fetch_cycle = max(fetch_cycle, commit_cycles[i - cfg.rob_entries])
        if inst.op == OpClass.LOAD and len(load_commits) >= cfg.ldq_entries:
            fetch_cycle = max(fetch_cycle, load_commits[-cfg.ldq_entries])
        if inst.op == OpClass.STORE and len(store_commits) >= cfg.stq_entries:
            fetch_cycle = max(fetch_cycle, store_commits[-cfg.stq_entries])

        # ---- retire committed stores into the memory image --------------
        while commit_ptr < i and commit_cycles[commit_ptr] <= fetch_cycle:
            cinst = instructions[commit_ptr]
            if cinst.op == OpClass.STORE:
                assert cinst.mem_addr is not None
                image.write(cinst.mem_addr, cinst.mem_size, cinst.values[0])
            commit_ptr += 1

        # ---- scheme fetch side ------------------------------------------
        load_slot: int | None = None
        if inst.op == OpClass.LOAD:
            loads += 1
            if loads_in_group < 2:
                load_slot = loads_in_group
            loads_in_group += 1
        sp = None
        if scheme is not None:
            # Probe on the first load-store bubble after the predicted
            # address reaches the back-end (1 cycle predict + 1 cycle
            # transport).  Lane *reservations* are for future issue
            # cycles, so a bubble is essentially always available now;
            # the paper measures <0.1% of PAQ entries aging out.
            probe_cycle = fetch_cycle + 2
            sp = scheme.fetch_side(inst, fetch_cycle, load_slot, probe_cycle)

        # ---- issue timing -----------------------------------------------
        src_ready = 0
        for reg in inst.srcs:
            ready = reg_ready.get(reg, 0)
            if ready > src_ready:
                src_ready = ready
        earliest_exec = fetch_cycle + cfg.fetch_to_execute
        ports = ls_ports if inst.op in _LS_OPS else gen_ports
        ready = max(earliest_exec, src_ready)

        access = None
        if inst.op == OpClass.LOAD:
            assert inst.mem_addr is not None
            # MDP-predicted dependence: wait for the predicted store.
            dep_seq = mdp.load_dependence(inst.pc)
            if dep_seq is not None and dep_seq in store_done:
                if commit_cycles[dep_seq] > ready:
                    ready = max(ready, store_done[dep_seq])
            issue = ports.issue_at(ready)
            access = hierarchy.access(inst.pc, inst.mem_addr)
            newest = None
            for word in _touched_words(inst.mem_addr, inst.footprint_bytes):
                entry = word_store.get(word)
                if entry is not None and (newest is None or entry[0] > newest[0]):
                    newest = entry
            if newest is not None and commit_cycles[newest[0]] > issue:
                # In-flight producing store: forward from the STQ.
                if newest[1] > issue and (dep_seq is None or dep_seq < newest[0]):
                    mdp.report_violation(inst.pc, newest[2])
                done = max(issue, newest[1]) + cfg.store_forward_latency
            else:
                # Address generation (1 cycle) then the cache access.
                done = issue + 1 + access.latency
        elif inst.op == OpClass.STORE:
            assert inst.mem_addr is not None
            mdp.store_fetched(inst.pc, i)
            access = hierarchy.access(inst.pc, inst.mem_addr, is_store=True)
            issue = ports.issue_at(ready)
            done = issue + 1
            for word in _touched_words(inst.mem_addr, inst.mem_size):
                word_store[word] = (i, done, inst.pc)
            store_done[i] = done
            mdp.store_executed(inst.pc)
        else:
            issue = ports.issue_at(ready)
            done = issue + EXECUTION_LATENCY[inst.op]

        # ---- branches ----------------------------------------------------
        if is_branch_op(inst.op):
            done = issue + cfg.branch_resolution_latency
            mispredicted = branch_unit.resolve(inst)
            if mispredicted:
                flushes.branch += 1
                pending_redirect = done + 1
                force_new_group = True
                if scheme is not None:
                    scheme.on_branch_flush()

        # ---- value prediction resolution -----------------------------------
        value_predicted = False
        if sp is not None and scheme is not None:
            if sp.values is not None:
                if recovery == RecoveryMode.ORACLE_REPLAY and not sp.correct:
                    pass        # oracle replay: treat as never predicted
                elif scheme.vpe.admit(sp.registers, fetch_cycle, done):
                    value_predicted = True
            outcome = scheme.execute_side(inst, sp, access, value_predicted)
            if value_predicted:
                scheme.vpe.record_validation(outcome.value_correct)
                scheme.vpe.pvt.note_consumer_read(sp.registers)
                if outcome.value_correct:
                    ready_time = fetch_cycle + cfg.rename_depth
                    for reg in inst.dests:
                        reg_ready[reg] = ready_time
                else:
                    flushes.value += 1
                    pending_redirect = done + 1 + cfg.value_validation_penalty
                    force_new_group = True
                    scheme.on_value_flush()
                    for reg in inst.dests:
                        reg_ready[reg] = done
        if not value_predicted:
            for reg in inst.dests:
                reg_ready[reg] = done

        # ---- in-order commit ------------------------------------------------
        cc = max(done + 1, last_commit_cycle)
        if cc == last_commit_cycle:
            if commits_in_cycle >= cfg.commit_width:
                cc += 1
                commits_in_cycle = 1
            else:
                commits_in_cycle += 1
        else:
            commits_in_cycle = 1
        last_commit_cycle = cc
        commit_cycles[i] = cc
        if inst.op == OpClass.LOAD:
            load_commits.append(cc)
        elif inst.op == OpClass.STORE:
            store_commits.append(cc)

    cycles = last_commit_cycle

    # ---- assemble the result -------------------------------------------
    energy = EnergyEvents(
        cycles=cycles,
        instructions=n,
        l1d_accesses=hierarchy.l1d.stats.accesses,
        l1d_probes=hierarchy.l1d.stats.probe_hits + hierarchy.l1d.stats.probe_misses,
        l2_accesses=hierarchy.l2.stats.accesses,
        l3_accesses=hierarchy.l3.stats.accesses,
    )
    value_predictions = 0
    value_mispredictions = 0
    scheme_name = "baseline"
    scheme_stats = None
    if scheme is not None:
        scheme_name = scheme.name
        scheme_stats = scheme.result_stats()
        value_predictions = scheme.vpe.stats.value_predictions
        value_mispredictions = scheme.vpe.stats.value_mispredictions
        reads, writes = scheme.access_counts()
        energy.predictor_reads = reads
        energy.predictor_writes = writes
        energy.predictor_bits = scheme.predictor_storage_bits()
        energy.pvt_reads = scheme.vpe.pvt.reads
        energy.pvt_writes = scheme.vpe.pvt.writes

    tlb_stats = hierarchy.tlb.stats
    tlb_miss_rate = (
        tlb_stats.misses / tlb_stats.accesses if tlb_stats.accesses else 0.0
    )
    return SimResult(
        trace_name=trace.name,
        scheme_name=scheme_name,
        instructions=n,
        cycles=cycles,
        flushes=flushes,
        branch_mispredictions=branch_unit.stats.mispredictions,
        value_predictions=value_predictions,
        value_mispredictions=value_mispredictions,
        loads=loads,
        l1d_hit_rate=hierarchy.l1d.stats.hit_rate,
        tlb_miss_rate=tlb_miss_rate,
        energy=energy,
        scheme_stats=scheme_stats,
    )
