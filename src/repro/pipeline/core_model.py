"""The trace-driven out-of-order core model.

One pass over the trace assigns each dynamic instruction a fetch,
issue, completion and commit cycle under the baseline's resource
constraints (Table 4).  Wrong-path work is not simulated; control and
value mispredictions cost their redirect/refill latency, the standard
trace-driven approximation.

What the model captures (because the paper's results hinge on it):

* load-use dependence chains — consumers wait on ``reg_ready`` unless a
  value prediction made the destination available at rename;
* flush costs — branch, memory-order and value mispredictions push the
  fetch stream past the resolving cycle plus the front-end depth;
* early branch resolution — a branch fed by a value-predicted load
  issues earlier, shrinking its own misprediction penalty (the paper's
  perlbmk effect);
* in-flight-store visibility — stores update the committed memory image
  only at commit, so DLVP probes can return stale values for racing
  loads (the LSCD's reason to exist);
* lane/width/window contention — 2 LS + 6 generic lanes, 4-wide fetch,
  8-wide commit, ROB/LDQ/STQ occupancy.

Performance: the per-instruction loop is the whole simulator's hot
path, so it trades a little readability for throughput — method and
attribute lookups are hoisted into locals, the per-word store tracking
dicts are pruned as stores retire (they are otherwise O(trace) — a
memory leak and a dict-miss slowdown on long traces), and issue-port
busy maps are pruned below the monotonically advancing fetch cycle.
All of it is outcome-preserving; the golden equivalence test pins every
suite kernel's ``SimResult`` to the seed model bit for bit.
"""

from __future__ import annotations

from repro.branch import BranchUnit
from repro.isa import (
    EXECUTION_LATENCY,
    OpClass,
    is_branch_op,
)
from repro.isa.fetch import FETCH_GROUP_BYTES
from repro.mdp import StoreSetsPredictor
from repro.memory import HierarchyConfig, MemoryHierarchy, MemoryImage
from repro.memory.prefetcher import _StrideEntry as _PfStrideEntry
from repro.pipeline import batch as _key_batch
from repro.pipeline.config import CoreConfig
from repro.pipeline.recovery import RecoveryMode
from repro.pipeline.schemes import Scheme
from repro.pipeline.stats import EnergyEvents, FlushStats, SimResult
from repro.trace import ColumnarTrace, Trace
from repro.trace.columnar import (
    F_TAKEN,
    F_TAKEN_KNOWN,
    F_TARGET,
    OPCLASS_BY_VALUE,
)

_LS_OPS = frozenset({OpClass.LOAD, OpClass.STORE, OpClass.ATOMIC})

# Prune the issue-port busy maps once they exceed this many distinct
# cycles; keeps each dict O(1)-ish amortized instead of O(cycles).
_PORT_PRUNE_THRESHOLD = 4096


class _IssuePorts:
    """Out-of-order issue bandwidth for one lane group.

    Tracks how many operations issued in each cycle; an operation ready
    at cycle ``r`` issues in the earliest cycle >= r with a free slot.
    Unlike a per-lane "next free" reservation, this lets ready younger
    ops backfill around older stalled ones — i.e., actual out-of-order
    scheduling under a lane-count constraint.
    """

    __slots__ = ("width", "_busy")

    def __init__(self, width: int) -> None:
        self.width = width
        self._busy: dict[int, int] = {}

    def issue_at(self, ready: int) -> int:
        busy = self._busy
        width = self.width
        cycle = ready
        count = busy.get(cycle, 0)
        while count >= width:
            cycle += 1
            count = busy.get(cycle, 0)
        busy[cycle] = count + 1
        return cycle

    def prune_below(self, cycle: int) -> None:
        """Drop busy slots for cycles that can no longer be probed.

        Safe whenever ``cycle`` is a lower bound on every future
        ``ready`` argument — the simulator passes the monotonically
        non-decreasing fetch cycle, and ready >= fetch + fetch_to_execute.
        """
        busy = self._busy
        if len(busy) > _PORT_PRUNE_THRESHOLD:
            for stale in [c for c in busy if c < cycle]:
                del busy[stale]


def simulate(
    trace: Trace,
    scheme: Scheme | None = None,
    core_config: CoreConfig | None = None,
    hierarchy_config: HierarchyConfig | None = None,
    recovery: RecoveryMode = RecoveryMode.FLUSH,
    tracer: "object | None" = None,
) -> SimResult:
    """Run one trace through the core model.

    Args:
        trace: The workload trace.
        scheme: Value-prediction scheme, or None for the baseline.
        core_config: Core parameters (Table 4 defaults).
        hierarchy_config: Memory-hierarchy parameters.
        recovery: Value-misprediction recovery model (Figure 10).
        tracer: A :class:`repro.observe.Tracer` (or anything matching
            its hook protocol) for opt-in instrumentation, or None (the
            default).  The zero-overhead contract: with ``tracer=None``
            every hook site below is a single pre-hoisted ``traced``
            boolean test (or untouched fast-path code), so outcomes and
            throughput are identical to an untraced build; with a
            tracer attached the inlined demand-access/DLVP paths route
            through their reference implementations so component hooks
            fire, at identical simulated outcomes.

    Returns:
        A :class:`SimResult`; compare runs of the same trace with
        :meth:`SimResult.speedup_over`.
    """
    if isinstance(trace, ColumnarTrace):
        if tracer is None:
            return _simulate_columnar(
                trace, scheme, core_config, hierarchy_config, recovery
            )
        # Traced runs take the reference object path (the tracer hooks
        # live there); observability runs are rare and not hot.
        trace = trace.to_trace()
    cfg = core_config or CoreConfig()
    hierarchy = MemoryHierarchy(hierarchy_config)
    image = MemoryImage()
    branch_unit = BranchUnit()
    mdp = StoreSetsPredictor()
    if scheme is not None:
        scheme.bind(hierarchy, image, branch_unit)
    traced = tracer is not None
    if traced:
        hierarchy.attach_tracer(tracer)
        if scheme is not None:
            scheme.attach_tracer(tracer)
        tracer.on_run_start(
            trace.name,
            scheme.name if scheme is not None else "baseline",
            len(trace),
        )

    n = len(trace)
    commit_cycles = [0] * n
    reg_ready: dict[int, int] = {}
    ls_ports = _IssuePorts(cfg.ls_lanes)
    gen_ports = _IssuePorts(cfg.generic_lanes)
    # word -> (store seq, store done cycle, store pc): newest store per
    # word.  Entries are removed as their store retires (see the commit
    # loop below), bounding both dicts by in-flight work, not trace
    # length.
    word_store: dict[int, tuple[int, int, int]] = {}
    store_done: dict[int, int] = {}

    fetch_cycle = 0
    pending_redirect = 0
    force_new_group = True
    slots_used = 0
    current_group = -1
    prev_pc: int | None = None
    loads_in_group = 0

    commit_ptr = 0
    last_commit_cycle = 0
    commits_in_cycle = 0
    load_commits: list[int] = []
    store_commits: list[int] = []

    flushes = FlushStats()
    loads = 0

    # ---- hot-loop local aliases ---------------------------------------
    LOAD = OpClass.LOAD
    STORE = OpClass.STORE
    ls_ops = _LS_OPS
    branch_ops = frozenset(op for op in OpClass if is_branch_op(op))
    exec_latency = EXECUTION_LATENCY
    fga_mask = ~(FETCH_GROUP_BYTES - 1)    # fetch_group_address(), inlined
    fetch_width = cfg.fetch_width
    rob_entries = cfg.rob_entries
    ldq_entries = cfg.ldq_entries
    stq_entries = cfg.stq_entries
    fetch_to_execute = cfg.fetch_to_execute
    rename_depth = cfg.rename_depth
    commit_width = cfg.commit_width
    branch_latency = cfg.branch_resolution_latency
    validation_penalty = cfg.value_validation_penalty
    forward_latency = cfg.store_forward_latency
    # Issue-port state, inlined: the busy dicts and widths are bound
    # locally and the issue_at scan is expanded in place below.
    ls_busy = ls_ports._busy
    ls_busy_get = ls_busy.get
    ls_width = ls_ports.width
    gen_busy = gen_ports._busy
    gen_busy_get = gen_busy.get
    gen_width = gen_ports.width
    # Memory-hierarchy state, inlined: the demand-access TLB/L1 paths
    # are expanded in place in the load/store blocks below (the aliased
    # structures are created once by Cache.__init__ and only mutated in
    # place, so the references stay valid for the whole run).
    demand_accesses = hierarchy.demand_accesses
    l1_latency = hierarchy._l1_latency
    tlb_penalty = hierarchy._tlb_penalty
    tlb_shift = hierarchy._tlb_shift
    tlb_mask = hierarchy._tlb_mask
    tlb_where = hierarchy._tlb_where
    tlb_lru = hierarchy._tlb_lru
    tlb_stats = hierarchy._tlb_stats
    tlb_fill = hierarchy._tlb_array.fill
    l1_shift = hierarchy._l1_shift
    l1_mask = hierarchy._l1_mask
    l1_where = hierarchy._l1_where
    l1_lru = hierarchy._l1_lru
    l1_stats = hierarchy._l1_stats
    l1_fill = hierarchy.l1d.fill
    fill_from_below = hierarchy._fill_from_below
    prefetcher = hierarchy.prefetcher
    prefetch_observe = prefetcher.observe if prefetcher is not None else None
    prefetch_fill = hierarchy.prefetch_fill
    hierarchy_access = hierarchy.access
    image_write = image.write
    branch_resolve = branch_unit.resolve
    mdp_load_dependence = mdp.load_dependence
    mdp_store_fetched = mdp.store_fetched
    mdp_store_executed = mdp.store_executed
    mdp_report_violation = mdp.report_violation
    reg_ready_get = reg_ready.get
    word_store_get = word_store.get
    oracle_replay = recovery == RecoveryMode.ORACLE_REPLAY
    fetch_all_ops = scheme is not None and not scheme.fetch_loads_only
    if scheme is not None:
        scheme_fetch_side = scheme.fetch_side
        scheme_execute_side = scheme.execute_side
        vpe_stats = scheme.vpe.stats
        # vpe.admit and vpe.record_validation, split into their halves
        # (allocate + the stat increments) so the common case is one
        # call plus inline counter updates, not three calls.
        pvt_try_allocate = scheme.vpe.pvt.try_allocate
        pvt_note_read = scheme.vpe.pvt.note_consumer_read

    instructions = trace.instructions
    for i in range(n):
        inst = instructions[i]
        op = inst.op
        pc = inst.pc

        # ---- fetch grouping --------------------------------------------
        if (
            force_new_group
            or slots_used >= fetch_width
            or prev_pc is None
            or pc != prev_pc + 4
            or (pc & fga_mask) != current_group
        ):
            fetch_cycle = max(fetch_cycle + 1, pending_redirect)
            slots_used = 0
            loads_in_group = 0
            current_group = pc & fga_mask
            force_new_group = False
        slots_used += 1
        prev_pc = pc

        # ---- structural stalls (ROB / LDQ / STQ) ------------------------
        if i >= rob_entries:
            stall = commit_cycles[i - rob_entries]
            if stall > fetch_cycle:
                fetch_cycle = stall
        if op is LOAD:
            if len(load_commits) >= ldq_entries:
                stall = load_commits[-ldq_entries]
                if stall > fetch_cycle:
                    fetch_cycle = stall
        elif op is STORE:
            if len(store_commits) >= stq_entries:
                stall = store_commits[-stq_entries]
                if stall > fetch_cycle:
                    fetch_cycle = stall

        # ---- retire committed stores into the memory image --------------
        # Retirement also prunes the in-flight store tracking: a store
        # with commit_cycle <= fetch_cycle can never again satisfy the
        # "in flight at issue" checks below (every future issue cycle is
        # > the monotone fetch_cycle), so dropping it is outcome-neutral.
        while commit_ptr < i and commit_cycles[commit_ptr] <= fetch_cycle:
            cinst = instructions[commit_ptr]
            if cinst.op is STORE:
                caddr = cinst.mem_addr
                image_write(caddr, cinst.mem_size, cinst.values[0])
                store_done.pop(commit_ptr, None)
                # _touched_words(), inlined (store sizes are >= 4).
                first = caddr >> 2
                last = (caddr + cinst.mem_size - 1) >> 2
                for word in range(first, last + 1):
                    entry = word_store_get(word)
                    if entry is not None and entry[0] == commit_ptr:
                        del word_store[word]
            commit_ptr += 1

        # ---- scheme fetch side ------------------------------------------
        load_slot: int | None = None
        if op is LOAD:
            loads += 1
            if loads_in_group < 2:
                load_slot = loads_in_group
            loads_in_group += 1
        sp = None
        if scheme is not None and (op is LOAD or fetch_all_ops):
            # Probe on the first load-store bubble after the predicted
            # address reaches the back-end (1 cycle predict + 1 cycle
            # transport).  Lane *reservations* are for future issue
            # cycles, so a bubble is essentially always available now;
            # the paper measures <0.1% of PAQ entries aging out.
            sp = scheme_fetch_side(inst, fetch_cycle, load_slot, fetch_cycle + 2)
            if traced:
                tracer.on_fetch_predict(
                    fetch_cycle, pc, load_slot,
                    sp is not None and sp.values is not None,
                )

        # ---- issue timing -----------------------------------------------
        src_ready = 0
        for reg in inst.srcs:
            ready = reg_ready_get(reg, 0)
            if ready > src_ready:
                src_ready = ready
        ready = fetch_cycle + fetch_to_execute
        if src_ready > ready:
            ready = src_ready

        acc_way = None
        if op is LOAD:
            addr = inst.mem_addr
            # MDP-predicted dependence: wait for the predicted store.
            dep_seq = mdp_load_dependence(pc)
            if dep_seq is not None and dep_seq in store_done:
                if commit_cycles[dep_seq] > ready:
                    dep_done = store_done[dep_seq]
                    if dep_done > ready:
                        ready = dep_done
            issue = ready
            count = ls_busy_get(issue, 0)
            while count >= ls_width:
                issue += 1
                count = ls_busy_get(issue, 0)
            ls_busy[issue] = count + 1
            if traced:
                # Reference demand access: behaviourally identical to
                # the inline copy below and fires on_demand_access; the
                # local demand_accesses mirror keeps the end-of-run
                # write-back consistent.
                demand_accesses += 1
                acc = hierarchy_access(pc, addr)
                acc_latency = acc.latency
                acc_way = acc.way
            else:
                # hierarchy.access(), inlined: TLB, then L1, then
                # prefetcher.
                demand_accesses += 1
                block = addr >> tlb_shift
                set_idx = block & tlb_mask
                way = tlb_where[set_idx].get(block)
                if way is not None:
                    lru = tlb_lru[set_idx]
                    if lru[0] != way:
                        lru.remove(way)
                        lru.insert(0, way)
                    tlb_stats.hits += 1
                    acc_latency = l1_latency
                else:
                    tlb_stats.misses += 1
                    tlb_fill(addr)
                    acc_latency = l1_latency + tlb_penalty
                block = addr >> l1_shift
                set_idx = block & l1_mask
                acc_way = l1_where[set_idx].get(block)
                if acc_way is not None:
                    lru = l1_lru[set_idx]
                    if lru[0] != acc_way:
                        lru.remove(acc_way)
                        lru.insert(0, acc_way)
                    l1_stats.hits += 1
                else:
                    l1_stats.misses += 1
                    acc_way = l1_fill(addr)
                    acc_latency += fill_from_below(addr)
                if prefetch_observe is not None:
                    for target in prefetch_observe(pc, addr):
                        prefetch_fill(target)
            # inst.footprint_bytes, inlined (op is LOAD here).
            nbytes = inst.mem_size * (len(inst.dests) or 1)
            first = addr >> 2
            last = (addr + (nbytes if nbytes > 0 else 1) - 1) >> 2
            if first == last:
                newest = word_store_get(first)
            else:
                newest = None
                for word in range(first, last + 1):
                    entry = word_store_get(word)
                    if entry is not None and (newest is None or entry[0] > newest[0]):
                        newest = entry
            if newest is not None and commit_cycles[newest[0]] > issue:
                # In-flight producing store: forward from the STQ.
                if newest[1] > issue and (dep_seq is None or dep_seq < newest[0]):
                    mdp_report_violation(pc, newest[2])
                done = max(issue, newest[1]) + forward_latency
            else:
                # Address generation (1 cycle) then the cache access.
                done = issue + 1 + acc_latency
        elif op is STORE:
            addr = inst.mem_addr
            mdp_store_fetched(pc, i)
            if traced:
                demand_accesses += 1
                acc_way = hierarchy_access(pc, addr, is_store=True).way
            else:
                # hierarchy.access(is_store=True), inlined: TLB then L1,
                # no prefetcher training on stores.
                demand_accesses += 1
                block = addr >> tlb_shift
                set_idx = block & tlb_mask
                way = tlb_where[set_idx].get(block)
                if way is not None:
                    lru = tlb_lru[set_idx]
                    if lru[0] != way:
                        lru.remove(way)
                        lru.insert(0, way)
                    tlb_stats.hits += 1
                else:
                    tlb_stats.misses += 1
                    tlb_fill(addr)
                block = addr >> l1_shift
                set_idx = block & l1_mask
                acc_way = l1_where[set_idx].get(block)
                if acc_way is not None:
                    lru = l1_lru[set_idx]
                    if lru[0] != acc_way:
                        lru.remove(acc_way)
                        lru.insert(0, acc_way)
                    l1_stats.hits += 1
                else:
                    l1_stats.misses += 1
                    acc_way = l1_fill(addr)
                    fill_from_below(addr)
            issue = ready
            count = ls_busy_get(issue, 0)
            while count >= ls_width:
                issue += 1
                count = ls_busy_get(issue, 0)
            ls_busy[issue] = count + 1
            done = issue + 1
            entry = (i, done, pc)
            nbytes = inst.mem_size
            first = addr >> 2
            last = (addr + (nbytes if nbytes > 0 else 1) - 1) >> 2
            if first == last:
                word_store[first] = entry
            else:
                for word in range(first, last + 1):
                    word_store[word] = entry
            store_done[i] = done
            mdp_store_executed(pc)
        elif op in ls_ops:
            issue = ready
            count = ls_busy_get(issue, 0)
            while count >= ls_width:
                issue += 1
                count = ls_busy_get(issue, 0)
            ls_busy[issue] = count + 1
            done = issue + exec_latency[op]
        else:
            issue = ready
            count = gen_busy_get(issue, 0)
            while count >= gen_width:
                issue += 1
                count = gen_busy_get(issue, 0)
            gen_busy[issue] = count + 1
            done = issue + exec_latency[op]

        # ---- branches ----------------------------------------------------
        if op in branch_ops:
            done = issue + branch_latency
            if branch_resolve(inst):
                flushes.branch += 1
                pending_redirect = done + 1
                force_new_group = True
                if scheme is not None:
                    scheme.on_branch_flush()
                if traced:
                    tracer.on_recovery(done, "branch", pc)

        # ---- value prediction resolution ---------------------------------
        value_predicted = False
        if sp is not None:
            if sp.values is not None:
                if oracle_replay and not sp.correct:
                    pass        # oracle replay: treat as never predicted
                elif pvt_try_allocate(sp.registers, fetch_cycle, done):
                    value_predicted = True
                else:
                    vpe_stats.pvt_rejections += 1
            value_correct = scheme_execute_side(inst, sp, acc_way, value_predicted)[1]
            if traced and sp.values is not None:
                tracer.on_vpe_verdict(done, pc, value_predicted, value_correct)
            if value_predicted:
                vpe_stats.value_predictions += 1
                if value_correct:
                    vpe_stats.value_correct += 1
                pvt_note_read(sp.registers)
                if value_correct:
                    ready_time = fetch_cycle + rename_depth
                    for reg in inst.dests:
                        reg_ready[reg] = ready_time
                else:
                    flushes.value += 1
                    pending_redirect = done + 1 + validation_penalty
                    force_new_group = True
                    scheme.on_value_flush()
                    if traced:
                        tracer.on_recovery(done, "value", pc)
                    for reg in inst.dests:
                        reg_ready[reg] = done
        if not value_predicted:
            for reg in inst.dests:
                reg_ready[reg] = done

        # ---- in-order commit ---------------------------------------------
        cc = done + 1
        if cc < last_commit_cycle:
            cc = last_commit_cycle
        if cc == last_commit_cycle:
            if commits_in_cycle >= commit_width:
                cc += 1
                commits_in_cycle = 1
            else:
                commits_in_cycle += 1
        else:
            commits_in_cycle = 1
        last_commit_cycle = cc
        commit_cycles[i] = cc
        if traced:
            tracer.on_commit(i, cc, op)
        if op is LOAD:
            load_commits.append(cc)
        elif op is STORE:
            store_commits.append(cc)

        # ---- bounded busy-map pruning ------------------------------------
        if not i & 1023:
            ls_ports.prune_below(fetch_cycle)
            gen_ports.prune_below(fetch_cycle)

    cycles = last_commit_cycle
    hierarchy.demand_accesses = demand_accesses

    result = _assemble_result(
        trace.name, n, cycles, scheme, hierarchy, branch_unit, flushes, loads
    )
    if traced:
        tracer.on_run_end(result)
    return result


def _assemble_result(
    trace_name: str,
    n: int,
    cycles: int,
    scheme: Scheme | None,
    hierarchy: MemoryHierarchy,
    branch_unit: BranchUnit,
    flushes: FlushStats,
    loads: int,
) -> SimResult:
    """Shared end-of-run accounting for both simulate() loops."""
    energy = EnergyEvents(
        cycles=cycles,
        instructions=n,
        l1d_accesses=hierarchy.l1d.stats.accesses,
        l1d_probes=hierarchy.l1d.stats.probe_hits + hierarchy.l1d.stats.probe_misses,
        l2_accesses=hierarchy.l2.stats.accesses,
        l3_accesses=hierarchy.l3.stats.accesses,
    )
    value_predictions = 0
    value_mispredictions = 0
    scheme_name = "baseline"
    scheme_stats = None
    if scheme is not None:
        scheme_name = scheme.name
        scheme_stats = scheme.result_stats()
        value_predictions = scheme.vpe.stats.value_predictions
        value_mispredictions = scheme.vpe.stats.value_mispredictions
        reads, writes = scheme.access_counts()
        energy.l1d_probes_way_predicted = scheme.way_predicted_probes()
        energy.predictor_reads = reads
        energy.predictor_writes = writes
        energy.predictor_bits = scheme.predictor_storage_bits()
        energy.pvt_reads = scheme.vpe.pvt.reads
        energy.pvt_writes = scheme.vpe.pvt.writes

    tlb_stats = hierarchy.tlb.stats
    tlb_miss_rate = (
        tlb_stats.misses / tlb_stats.accesses if tlb_stats.accesses else 0.0
    )
    return SimResult(
        trace_name=trace_name,
        scheme_name=scheme_name,
        instructions=n,
        cycles=cycles,
        flushes=flushes,
        branch_mispredictions=branch_unit.stats.mispredictions,
        value_predictions=value_predictions,
        value_mispredictions=value_mispredictions,
        loads=loads,
        l1d_hit_rate=hierarchy.l1d.stats.hit_rate,
        tlb_miss_rate=tlb_miss_rate,
        energy=energy,
        scheme_stats=scheme_stats,
    )


def _simulate_columnar(
    trace: ColumnarTrace,
    scheme: Scheme | None,
    core_config: CoreConfig | None,
    hierarchy_config: HierarchyConfig | None,
    recovery: RecoveryMode,
) -> SimResult:
    """The columnar fast loop: simulate() reading struct-of-arrays.

    A line-for-line twin of the object loop in :func:`simulate`, with
    every per-instruction attribute read replaced by an array index and
    opcode tests on plain integers.  Native flat-protocol schemes
    (``Scheme.flat_protocol``) are driven entirely with raw column
    scalars — ``flat_fetch``/``flat_execute`` never see an
    :class:`~repro.isa.Instruction`, and ``flat_prepare`` runs once
    before the loop so schemes can precompute chunk-level batched
    predictor keys (see :mod:`repro.pipeline.batch`).  Third-party
    object-API schemes are adapted inline, materializing one view per
    scheme call.  Outcomes are pinned bit-identical to the object path
    by the golden-equivalence suite's columnar leg.
    """
    cfg = core_config or CoreConfig()
    hierarchy = MemoryHierarchy(hierarchy_config)
    image = MemoryImage()
    branch_unit = BranchUnit()
    # TAGE history is trace-determined, so its per-table keys can be
    # precomputed in chunks (no-op without numpy; the live folded
    # registers then run exactly as in the object engine).
    tage_batch = _key_batch.tage_key_batch(trace, branch_unit.tage)
    if tage_batch is not None:
        branch_unit.tage.bind_key_batch(tage_batch)
    mdp = StoreSetsPredictor()
    if scheme is not None:
        scheme.bind(hierarchy, image, branch_unit)

    n = len(trace)
    commit_cycles = [0] * n
    ls_ports = _IssuePorts(cfg.ls_lanes)
    gen_ports = _IssuePorts(cfg.generic_lanes)
    word_store: dict[int, tuple[int, int, int]] = {}
    store_done: dict[int, int] = {}

    fetch_cycle = 0
    pending_redirect = 0
    force_new_group = True
    slots_used = 0
    current_group = -1
    prev_pc = -5                       # sentinel: never matches prev_pc + 4
    loads_in_group = 0

    commit_ptr = 0
    last_commit_cycle = 0
    commits_in_cycle = 0
    load_commits: list[int] = []
    store_commits: list[int] = []

    flushes = FlushStats()
    loads = 0

    # ---- hot-loop local aliases (columns + config + substrate) --------
    # Columns are snapshotted into plain lists: indexing an array.array
    # boxes a fresh int every read, while list indexing returns the
    # already-boxed object.  trace.snapshots() converts at C speed once
    # and memoizes on the trace, so a sweep group running several
    # schemes over one trace shares a single conversion.
    (
        pcs,
        ops,
        flags_col,
        mem_addr_col,
        mem_size_col,
        target_col,
        srcs_index,
        srcs_flat,
        dests_index,
        dests_flat,
        values_index,
        values_lo,
        values_hi,
    ) = trace.snapshots()
    inst_view = trace.instruction

    LOAD = int(OpClass.LOAD)
    STORE = int(OpClass.STORE)
    BRANCH = int(OpClass.BRANCH)
    # Opcode predicates as value-indexed lists: a list index beats a
    # frozenset probe, and op is already a small contiguous int.
    is_ls_op = [op in _LS_OPS for op in OPCLASS_BY_VALUE]
    is_br_op = [is_branch_op(op) for op in OPCLASS_BY_VALUE]
    exec_latency = [EXECUTION_LATENCY[op] for op in OPCLASS_BY_VALUE]
    # Register scoreboard as a flat list: register ids are small dense
    # ints, so list indexing replaces per-operand dict hashing.
    nregs = 1 + max(
        max(srcs_flat, default=-1),
        max(dests_flat, default=-1),
    )
    reg_ready = [0] * nregs
    fga_mask = ~(FETCH_GROUP_BYTES - 1)
    fetch_width = cfg.fetch_width
    rob_entries = cfg.rob_entries
    ldq_entries = cfg.ldq_entries
    stq_entries = cfg.stq_entries
    fetch_to_execute = cfg.fetch_to_execute
    rename_depth = cfg.rename_depth
    commit_width = cfg.commit_width
    branch_latency = cfg.branch_resolution_latency
    validation_penalty = cfg.value_validation_penalty
    forward_latency = cfg.store_forward_latency
    ls_busy = ls_ports._busy
    ls_busy_get = ls_busy.get
    ls_width = ls_ports.width
    gen_busy = gen_ports._busy
    gen_busy_get = gen_busy.get
    gen_width = gen_ports.width
    demand_accesses = hierarchy.demand_accesses
    l1_latency = hierarchy._l1_latency
    tlb_penalty = hierarchy._tlb_penalty
    tlb_shift = hierarchy._tlb_shift
    tlb_mask = hierarchy._tlb_mask
    tlb_where = hierarchy._tlb_where
    tlb_lru = hierarchy._tlb_lru
    tlb_stats = hierarchy._tlb_stats
    tlb_fill = hierarchy._tlb_array.fill
    l1_shift = hierarchy._l1_shift
    l1_mask = hierarchy._l1_mask
    l1_where = hierarchy._l1_where
    l1_lru = hierarchy._l1_lru
    l1_stats = hierarchy._l1_stats
    l1_fill = hierarchy.l1d.fill
    fill_from_below = hierarchy._fill_from_below
    prefetcher = hierarchy.prefetcher
    prefetch_fill = hierarchy.prefetch_fill
    # Stride-prefetcher observe(), inlined at the load site below:
    # table and thresholds aliased, entry construction via the class.
    pf_table = prefetcher._table if prefetcher is not None else None
    if prefetcher is not None:
        pf_entries = prefetcher.entries
        pf_threshold = prefetcher.threshold
        pf_degree = prefetcher.degree
        pf_entry_cls = _PfStrideEntry
    # Store-sets load_dependence(), inlined at the load site below (the
    # event counter and clears are shared with the store_* methods).
    mdp_ssit = mdp._ssit
    mdp_lfst = mdp._lfst
    mdp_ssit_entries = mdp.config.ssit_entries
    mdp_lfst_entries = mdp.config.lfst_entries
    mdp_clear_interval = mdp.config.clear_interval
    image_write = image.write
    branch_resolve_fields = branch_unit.resolve_fields
    branch_resolve_conditional = branch_unit.make_resolve_conditional()
    mdp_store_fetched = mdp.store_fetched
    mdp_store_executed = mdp.store_executed
    mdp_report_violation = mdp.report_violation
    word_store_get = word_store.get
    oracle_replay = recovery == RecoveryMode.ORACLE_REPLAY
    fetch_all_ops = scheme is not None and not scheme.fetch_loads_only
    flat_native = False
    if scheme is not None:
        # Native flat-protocol schemes take raw column scalars and get a
        # pre-loop hook for chunk-level batched precomputation;
        # third-party object-API schemes are adapted inline (one
        # Instruction view per scheme call).
        flat_native = scheme.flat_protocol
        if flat_native:
            scheme.flat_prepare(trace)
            scheme_flat_fetch = scheme.flat_fetch
            scheme_flat_execute = scheme.flat_execute
        else:
            scheme_fetch_side = scheme.fetch_side
            scheme_execute_side = scheme.execute_side
        vpe_stats = scheme.vpe.stats
        pvt_try_allocate = scheme.vpe.pvt.try_allocate
        pvt_note_read = scheme.vpe.pvt.note_consumer_read

    for i in range(n):
        op = ops[i]
        pc = pcs[i]

        # ---- fetch grouping --------------------------------------------
        if (
            force_new_group
            or slots_used >= fetch_width
            or pc != prev_pc + 4
            or (pc & fga_mask) != current_group
        ):
            fetch_cycle = max(fetch_cycle + 1, pending_redirect)
            slots_used = 0
            loads_in_group = 0
            current_group = pc & fga_mask
            force_new_group = False
        slots_used += 1
        prev_pc = pc

        # ---- structural stalls (ROB / LDQ / STQ) ------------------------
        if i >= rob_entries:
            stall = commit_cycles[i - rob_entries]
            if stall > fetch_cycle:
                fetch_cycle = stall
        if op == LOAD:
            if len(load_commits) >= ldq_entries:
                stall = load_commits[-ldq_entries]
                if stall > fetch_cycle:
                    fetch_cycle = stall
        elif op == STORE:
            if len(store_commits) >= stq_entries:
                stall = store_commits[-stq_entries]
                if stall > fetch_cycle:
                    fetch_cycle = stall

        # ---- retire committed stores into the memory image --------------
        while commit_ptr < i and commit_cycles[commit_ptr] <= fetch_cycle:
            if ops[commit_ptr] == STORE:
                caddr = mem_addr_col[commit_ptr]
                csize = mem_size_col[commit_ptr]
                k = values_index[commit_ptr]
                vhi = values_hi[k]
                cval = (vhi << 64) | values_lo[k] if vhi else values_lo[k]
                image_write(caddr, csize, cval)
                store_done.pop(commit_ptr, None)
                first = caddr >> 2
                last = (caddr + csize - 1) >> 2
                for word in range(first, last + 1):
                    entry = word_store_get(word)
                    if entry is not None and entry[0] == commit_ptr:
                        del word_store[word]
            commit_ptr += 1

        # ---- scheme fetch side ------------------------------------------
        load_slot = None
        if op == LOAD:
            loads += 1
            if loads_in_group < 2:
                load_slot = loads_in_group
            loads_in_group += 1
        fp = None
        if scheme is not None and (op == LOAD or fetch_all_ops):
            if flat_native:
                ndests_i = dests_index[i + 1] - dests_index[i]
                vs = values_index[i]
                ve = values_index[i + 1]
                if ve - vs == 1:
                    hv = values_hi[vs]
                    vals = ((hv << 64) | values_lo[vs] if hv else values_lo[vs],)
                elif ve == vs:
                    vals = ()
                else:
                    vals = tuple(
                        (values_hi[k] << 64) | values_lo[k]
                        if values_hi[k] else values_lo[k]
                        for k in range(vs, ve)
                    )
                fp = scheme_flat_fetch(
                    pc, op, mem_addr_col[i], mem_size_col[i], flags_col[i],
                    ndests_i, vals, fetch_cycle, load_slot, fetch_cycle + 2,
                )
            else:
                inst = inst_view(i)
                sp = scheme_fetch_side(inst, fetch_cycle, load_slot, fetch_cycle + 2)
                if sp is not None:
                    fp = (sp.values, sp.correct, sp, sp.registers)

        # ---- issue timing -----------------------------------------------
        src_ready = 0
        for k in range(srcs_index[i], srcs_index[i + 1]):
            ready = reg_ready[srcs_flat[k]]
            if ready > src_ready:
                src_ready = ready
        ready = fetch_cycle + fetch_to_execute
        if src_ready > ready:
            ready = src_ready

        acc_way = None
        if op == LOAD:
            addr = mem_addr_col[i]
            # mdp.load_dependence(pc), inlined (tick, SSIT, then LFST).
            ev = mdp._events + 1
            mdp._events = ev
            if ev % mdp_clear_interval == 0:
                mdp_ssit.clear()
                mdp_lfst.clear()
            dep_seq = None
            store_set = mdp_ssit.get((pc >> 2) % mdp_ssit_entries)
            if store_set is not None:
                dep_entry = mdp_lfst.get(store_set % mdp_lfst_entries)
                if dep_entry is not None:
                    mdp.dependencies_predicted += 1
                    dep_seq = dep_entry[1]
            if dep_seq is not None and dep_seq in store_done:
                if commit_cycles[dep_seq] > ready:
                    dep_done = store_done[dep_seq]
                    if dep_done > ready:
                        ready = dep_done
            issue = ready
            count = ls_busy_get(issue, 0)
            while count >= ls_width:
                issue += 1
                count = ls_busy_get(issue, 0)
            ls_busy[issue] = count + 1
            # hierarchy.access(), inlined: TLB, then L1, then prefetcher.
            demand_accesses += 1
            block = addr >> tlb_shift
            set_idx = block & tlb_mask
            way = tlb_where[set_idx].get(block)
            if way is not None:
                lru = tlb_lru[set_idx]
                if lru[0] != way:
                    lru.remove(way)
                    lru.insert(0, way)
                tlb_stats.hits += 1
                acc_latency = l1_latency
            else:
                tlb_stats.misses += 1
                tlb_fill(addr)
                acc_latency = l1_latency + tlb_penalty
            block = addr >> l1_shift
            set_idx = block & l1_mask
            acc_way = l1_where[set_idx].get(block)
            if acc_way is not None:
                lru = l1_lru[set_idx]
                if lru[0] != acc_way:
                    lru.remove(acc_way)
                    lru.insert(0, acc_way)
                l1_stats.hits += 1
            else:
                l1_stats.misses += 1
                acc_way = l1_fill(addr)
                acc_latency += fill_from_below(addr)
            # prefetcher.observe(pc, addr), inlined: train the stride
            # entry; issue `degree` prefetches once confident.
            if pf_table is not None:
                slot = pc % pf_entries
                pf = pf_table.get(slot)
                if pf is None:
                    pf_table[slot] = pf_entry_cls(addr)
                else:
                    stride = addr - pf.last_addr
                    if stride == pf.stride and stride != 0:
                        if pf.confidence < pf_threshold:
                            pf.confidence += 1
                    else:
                        pf.stride = stride
                        pf.confidence = 0
                    pf.last_addr = addr
                    if stride != 0 and pf.confidence >= pf_threshold:
                        prefetcher.trained += 1
                        for k in range(1, pf_degree + 1):
                            prefetch_fill(addr + stride * k)
                        prefetcher.issued += pf_degree
            ndests = dests_index[i + 1] - dests_index[i]
            nbytes = mem_size_col[i] * (ndests or 1)
            first = addr >> 2
            last = (addr + (nbytes if nbytes > 0 else 1) - 1) >> 2
            if first == last:
                newest = word_store_get(first)
            else:
                newest = None
                for word in range(first, last + 1):
                    entry = word_store_get(word)
                    if entry is not None and (newest is None or entry[0] > newest[0]):
                        newest = entry
            if newest is not None and commit_cycles[newest[0]] > issue:
                if newest[1] > issue and (dep_seq is None or dep_seq < newest[0]):
                    mdp_report_violation(pc, newest[2])
                done = max(issue, newest[1]) + forward_latency
            else:
                done = issue + 1 + acc_latency
        elif op == STORE:
            addr = mem_addr_col[i]
            mdp_store_fetched(pc, i)
            # hierarchy.access(is_store=True), inlined.
            demand_accesses += 1
            block = addr >> tlb_shift
            set_idx = block & tlb_mask
            way = tlb_where[set_idx].get(block)
            if way is not None:
                lru = tlb_lru[set_idx]
                if lru[0] != way:
                    lru.remove(way)
                    lru.insert(0, way)
                tlb_stats.hits += 1
            else:
                tlb_stats.misses += 1
                tlb_fill(addr)
            block = addr >> l1_shift
            set_idx = block & l1_mask
            acc_way = l1_where[set_idx].get(block)
            if acc_way is not None:
                lru = l1_lru[set_idx]
                if lru[0] != acc_way:
                    lru.remove(acc_way)
                    lru.insert(0, acc_way)
                l1_stats.hits += 1
            else:
                l1_stats.misses += 1
                acc_way = l1_fill(addr)
                fill_from_below(addr)
            issue = ready
            count = ls_busy_get(issue, 0)
            while count >= ls_width:
                issue += 1
                count = ls_busy_get(issue, 0)
            ls_busy[issue] = count + 1
            done = issue + 1
            entry = (i, done, pc)
            nbytes = mem_size_col[i]
            first = addr >> 2
            last = (addr + (nbytes if nbytes > 0 else 1) - 1) >> 2
            if first == last:
                word_store[first] = entry
            else:
                for word in range(first, last + 1):
                    word_store[word] = entry
            store_done[i] = done
            mdp_store_executed(pc)
        elif is_ls_op[op]:
            issue = ready
            count = ls_busy_get(issue, 0)
            while count >= ls_width:
                issue += 1
                count = ls_busy_get(issue, 0)
            ls_busy[issue] = count + 1
            done = issue + exec_latency[op]
        else:
            issue = ready
            count = gen_busy_get(issue, 0)
            while count >= gen_width:
                issue += 1
                count = gen_busy_get(issue, 0)
            gen_busy[issue] = count + 1
            done = issue + exec_latency[op]

        # ---- branches ----------------------------------------------------
        if is_br_op[op]:
            done = issue + branch_latency
            fl = flags_col[i]
            taken = bool(fl & F_TAKEN) if fl & F_TAKEN_KNOWN else None
            if op == BRANCH:
                # Conditionals dominate the control stream: the fused
                # closure collapses the resolve/update/history chain.
                mispredicted = branch_resolve_conditional(pc, taken)
            else:
                target = target_col[i] if fl & F_TARGET else None
                mispredicted = branch_resolve_fields(op, pc, taken, target)
            if mispredicted:
                flushes.branch += 1
                pending_redirect = done + 1
                force_new_group = True
                if scheme is not None:
                    scheme.on_branch_flush()

        # ---- value prediction resolution ---------------------------------
        value_predicted = False
        if fp is not None:
            fp_values = fp[0]
            if fp_values is not None:
                if oracle_replay and not fp[1]:
                    pass        # oracle replay: treat as never predicted
                elif pvt_try_allocate(fp[3], fetch_cycle, done):
                    value_predicted = True
                else:
                    vpe_stats.pvt_rejections += 1
            if flat_native:
                value_correct = scheme_flat_execute(
                    pc, op, mem_addr_col[i], mem_size_col[i], flags_col[i],
                    ndests_i, vals, fp[2], fp_values, acc_way, value_predicted,
                )[1]
            else:
                value_correct = scheme_execute_side(
                    inst, fp[2], acc_way, value_predicted
                )[1]
            if value_predicted:
                vpe_stats.value_predictions += 1
                if value_correct:
                    vpe_stats.value_correct += 1
                pvt_note_read(fp[3])
                if value_correct:
                    ready_time = fetch_cycle + rename_depth
                    for k in range(dests_index[i], dests_index[i + 1]):
                        reg_ready[dests_flat[k]] = ready_time
                else:
                    flushes.value += 1
                    pending_redirect = done + 1 + validation_penalty
                    force_new_group = True
                    scheme.on_value_flush()
                    for k in range(dests_index[i], dests_index[i + 1]):
                        reg_ready[dests_flat[k]] = done
        if not value_predicted:
            for k in range(dests_index[i], dests_index[i + 1]):
                reg_ready[dests_flat[k]] = done

        # ---- in-order commit ---------------------------------------------
        cc = done + 1
        if cc < last_commit_cycle:
            cc = last_commit_cycle
        if cc == last_commit_cycle:
            if commits_in_cycle >= commit_width:
                cc += 1
                commits_in_cycle = 1
            else:
                commits_in_cycle += 1
        else:
            commits_in_cycle = 1
        last_commit_cycle = cc
        commit_cycles[i] = cc
        if op == LOAD:
            load_commits.append(cc)
        elif op == STORE:
            store_commits.append(cc)

        # ---- bounded busy-map pruning ------------------------------------
        if not i & 1023:
            ls_ports.prune_below(fetch_cycle)
            gen_ports.prune_below(fetch_cycle)

    cycles = last_commit_cycle
    hierarchy.demand_accesses = demand_accesses
    return _assemble_result(
        trace.name, n, cycles, scheme, hierarchy, branch_unit, flushes, loads
    )
