"""Baseline core configuration (Table 4)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CoreConfig:
    """Parameters of the modelled core, Skylake-like per the paper."""

    fetch_width: int = 4              # fetch through rename: 4 instr/cycle
    issue_width: int = 8              # issue through commit: 8 instr/cycle
    ls_lanes: int = 2                 # execution lanes supporting load-store
    generic_lanes: int = 6
    rob_entries: int = 224
    iq_entries: int = 97
    ldq_entries: int = 72
    stq_entries: int = 56
    physical_registers: int = 348
    fetch_to_execute: int = 13        # cycles from fetch to earliest execute
    rename_depth: int = 10            # fetch -> rename (predicted values must
                                      # reach the VPE by this point)
    commit_width: int = 8
    branch_resolution_latency: int = 1
    value_validation_penalty: int = 1  # exposed only on a value mispredict
    store_forward_latency: int = 1

    def __post_init__(self) -> None:
        if self.fetch_width <= 0 or self.issue_width <= 0:
            raise ValueError("pipeline widths must be positive")
        if self.rename_depth >= self.fetch_to_execute:
            raise ValueError("rename must precede earliest execute")
        if self.ls_lanes + self.generic_lanes != self.issue_width:
            raise ValueError("execution lanes must sum to the issue width")
