"""Trace-driven out-of-order core timing model.

The model follows the paper's baseline (Table 4): a 4-wide in-order
front-end, an 8-wide out-of-order engine with 2 load-store and 6
generic execution lanes, a 224-entry ROB (and 72/56-entry LDQ/STQ),
13-cycle fetch-to-execute depth, TAGE/ITTAGE/RAS branch prediction, a
store-sets MDP and a three-level cache hierarchy with stride
prefetchers.

It is a dependency-driven scheduler over a sliding instruction window —
not RTL — chosen so that the first-order effects value prediction
trades in (load-use chains, flush costs, lane/width/window contention,
in-flight-store conflicts) are modelled while whole-suite sweeps remain
tractable in Python.
"""

from repro.pipeline.config import CoreConfig
from repro.pipeline.recovery import RecoveryMode
from repro.pipeline.stats import SimResult
from repro.pipeline.schemes import (
    Scheme,
    SchemePrediction,
    DlvpScheme,
    DvtageScheme,
    VtageScheme,
    TournamentScheme,
)
from repro.pipeline.core_model import simulate

__all__ = [
    "CoreConfig",
    "RecoveryMode",
    "SimResult",
    "Scheme",
    "SchemePrediction",
    "DlvpScheme",
    "DvtageScheme",
    "VtageScheme",
    "TournamentScheme",
    "simulate",
]
