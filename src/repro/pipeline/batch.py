"""numpy-batched predictor key precomputation for the columnar loop.

The columnar ``simulate()`` twin executes loads strictly in trace
order, so any per-load quantity that is a pure function of the *trace*
(rather than of mutable predictor state) can be computed for a whole
chunk of loads at once.  DLVP's APT keys are exactly that: the
load-path history register receives one bit — ``(pc >> 2) & 1`` — per
dynamic load, unconditionally (LSCD-blocked and beyond-slot-limit loads
push too, and pipeline flushes never roll the register back), so the
folded history seen by load *j* depends only on the PCs of loads
``0..j-1``.  :class:`PapKeyBatch` vectorizes the whole chain — history
window, XOR-folds, index/tag hash, both fetch-group slots — with numpy
and hands the engine plain Python lists to index on the hot path.

The table *reads* (APT entries, confidence banks) stay sequential:
they depend on training performed by earlier loads, and reordering
them would break the bit-identical contract with the object engine.

numpy is an optional dependency (the ``fast`` extra).  When it is
missing — or ``REPRO_NO_NUMPY=1`` disables it, which is how the
fallback is exercised on machines that do have numpy — every consumer
falls back to the incremental per-load fold updates, which the golden
suite pins to the same bits.
"""

from __future__ import annotations

import os

np = None
if os.environ.get("REPRO_NO_NUMPY") != "1":
    try:
        import numpy as _np

        np = _np
    except ImportError:  # pragma: no cover - exercised via monkeypatch
        np = None


def numpy_available() -> bool:
    """True when the batched key path can run."""
    return np is not None


def _fold_columns(h, source_bits: int, target_bits: int):
    """Vectorized :func:`repro.branch.history.fold_history`.

    XOR-folds the low ``source_bits`` of every element of ``h`` (a
    uint64 array of packed history windows) down to ``target_bits``.
    """
    if target_bits <= 0:
        return np.zeros_like(h)
    mask = np.uint64((1 << target_bits) - 1)
    folded = np.zeros_like(h)
    v = h.copy()
    for _ in range((source_bits + target_bits - 1) // target_bits):
        folded ^= v & mask
        v >>= np.uint64(target_bits)
    return folded


class PapKeyBatch:
    """Chunked APT (index, tag) keys for every dynamic load of a trace.

    One instance serves one simulation run.  ``next_chunk()`` yields
    ``(start, idx0, tag0, idx1, tag1)``: the keys of loads
    ``start .. start+len-1`` (in dynamic trace order) for fetch-group
    slot 0 and slot 1.  Both slots are precomputed because the slot a
    load lands in depends on run-time fetch grouping, which the batch
    deliberately knows nothing about.

    The load-path history window carried across chunk boundaries keeps
    the computation exact: load *j*'s window is the last
    ``history_bits`` path bits pushed before it, bit 0 the most recent
    — precisely the state of the live shift register at its fetch.
    """

    __slots__ = (
        "_pcs", "_next", "_carry", "_chunk", "_history_bits",
        "_index_bits", "_index_mask", "_tag_bits", "_tag_mask",
        "_tag_shift", "_fga_mask", "loads",
    )

    def __init__(
        self,
        trace,
        *,
        load_op: int,
        history_bits: int,
        index_bits: int,
        tag_bits: int,
        tag_shift: int,
        fetch_group_bytes: int,
        chunk_loads: int = 65536,
    ) -> None:
        if np is None:
            raise RuntimeError("PapKeyBatch requires numpy")
        if not 0 < history_bits <= 64:
            raise ValueError("PapKeyBatch supports 1..64 history bits")
        ops = np.frombuffer(trace.op, dtype=np.uint8)
        pcs = np.frombuffer(trace.pc, dtype=np.uint64)
        self._pcs = pcs[ops == load_op]
        self.loads = int(self._pcs.shape[0])
        self._next = 0
        self._carry = np.zeros(history_bits, dtype=np.uint64)
        self._chunk = chunk_loads
        self._history_bits = history_bits
        self._index_bits = index_bits
        self._index_mask = (1 << index_bits) - 1
        self._tag_bits = tag_bits
        self._tag_mask = (1 << tag_bits) - 1
        self._tag_shift = tag_shift
        # ~(FETCH_GROUP_BYTES - 1) in 64-bit two's complement.
        self._fga_mask = (1 << 64) - fetch_group_bytes

    def next_chunk(self):
        """Keys for the next chunk of loads, as plain Python lists."""
        start = self._next
        pcs = self._pcs[start:start + self._chunk]
        n = int(pcs.shape[0])
        if n == 0:
            raise RuntimeError("PapKeyBatch exhausted: more loads consumed "
                               "than the trace contains")
        self._next = start + n

        # Path bits, then each load's packed history window: bit k-1 of
        # window j is the path bit of the k-th most recent prior load.
        bits = (pcs >> np.uint64(2)) & np.uint64(1)
        hb = self._history_bits
        ext = np.concatenate((self._carry, bits))
        self._carry = ext[-hb:].copy()
        h = np.zeros(n, dtype=np.uint64)
        for k in range(1, hb + 1):
            h |= ext[hb - k:hb - k + n] << np.uint64(k - 1)

        idx_fold = _fold_columns(h, hb, self._index_bits)
        tag_fold = _fold_columns(h, hb, self._tag_bits)

        fga = pcs & np.uint64(self._fga_mask)
        ib = np.uint64(self._index_bits)
        ib2 = np.uint64(2 * self._index_bits)
        index_mask = np.uint64(self._index_mask)
        tag_mask = np.uint64(self._tag_mask)
        tag_shift = np.uint64(self._tag_shift)
        out = []
        for slot_bits in (0, 4):
            # PapPredictor.compute_key of FGA | (slot << 2), vectorized.
            key_pc = fga | np.uint64(slot_bits)
            word = key_pc >> np.uint64(2)
            index = (word ^ (word >> ib) ^ (word >> ib2) ^ idx_fold) & index_mask
            tag = (word ^ (key_pc >> tag_shift) ^ tag_fold) & tag_mask
            out.append(index.tolist())
            out.append(tag.tolist())
        return start, out[0], out[1], out[2], out[3]


class TageKeyBatch:
    """Chunked TAGE (index, tag) key sets for every conditional branch.

    The TAGE global history is as trace-determined as the load-path
    history: every resolved conditional pushes its *actual* outcome
    (the trace's taken bit), every call pushes 1, and nothing else
    touches the register — the model trains on resolved branches in
    program order and never rewinds it.  The per-table index/tag hashes
    a branch sees therefore depend only on the PCs/outcomes of earlier
    control instructions, so the whole folded-history pipeline can be
    computed chunk-at-a-time with numpy.  While a batch is bound the
    live :class:`~repro.branch.history.FoldedHistory` registers are not
    maintained at all (``push_light``), which is where the savings come
    from: 18 incremental fold updates per control-flow event become a
    handful of vector ops per chunk.

    ``next_chunk()`` returns ``(start, keys)`` where ``keys[j]`` is the
    ready-to-use ``Tage._key_cache`` value (one (index, tag) pair per
    tagged table) for conditional branch ``start + j`` in dynamic trace
    order.  History windows longer than 64 bits (the shipped config
    folds up to 128) are carried in a lo/hi pair of uint64 columns; the
    hi half's fold is rotated by ``64 mod target`` before XOR, which is
    exactly where its bits land in :func:`fold_history`'s chunking.
    """

    __slots__ = (
        "_bits", "_is_lookup", "_pcs", "_next", "_branches_done", "_carry",
        "_chunk", "_hist", "_lengths", "_index_bits", "_entries_mask",
        "_tag_bits", "_tag_mask", "branches",
    )

    def __init__(
        self,
        trace,
        *,
        branch_op: int,
        call_op: int,
        taken_flag: int,
        history_lengths: tuple[int, ...],
        max_history: int,
        index_bits: int,
        entries_mask: int,
        tag_bits: int,
        chunk_events: int = 65536,
    ) -> None:
        if np is None:
            raise RuntimeError("TageKeyBatch requires numpy")
        if not 0 < max_history <= 128:
            raise ValueError("TageKeyBatch supports 1..128 history bits")
        ops = np.frombuffer(trace.op, dtype=np.uint8)
        pcs = np.frombuffer(trace.pc, dtype=np.uint64)
        flags = np.frombuffer(trace.flags, dtype=np.uint8)
        is_branch = ops == branch_op
        push_sel = is_branch | (ops == call_op)
        self._is_lookup = is_branch[push_sel]
        bits = np.ones(int(self._is_lookup.shape[0]), dtype=np.uint64)
        taken = (flags[is_branch] & taken_flag) != 0
        bits[self._is_lookup] = taken
        self._bits = bits
        self._pcs = pcs[is_branch]
        self.branches = int(self._pcs.shape[0])
        self._next = 0
        self._branches_done = 0
        self._carry = np.zeros(max_history, dtype=np.uint64)
        self._chunk = chunk_events
        self._hist = max_history
        self._lengths = tuple(history_lengths)
        self._index_bits = index_bits
        self._entries_mask = entries_mask
        self._tag_bits = tag_bits
        self._tag_mask = (1 << tag_bits) - 1

    def _fold(self, lo, hi, source_bits: int, target_bits: int):
        """Fold a (lo, hi) pair of 64-bit window columns to target_bits."""
        if target_bits <= 0:
            return np.zeros_like(lo)
        if source_bits <= 64:
            h = lo if source_bits == 64 else lo & np.uint64((1 << source_bits) - 1)
            return _fold_columns(h, source_bits, target_bits)
        rem = source_bits - 64
        h_hi = hi if rem == 64 else hi & np.uint64((1 << rem) - 1)
        folded = _fold_columns(lo, 64, target_bits)
        folded_hi = _fold_columns(h_hi, rem, target_bits)
        shift = 64 % target_bits
        if shift:
            # Bit i of the hi word sits at history position 64 + i, so
            # its fold contribution lands rotated by 64 mod target.
            tmask = np.uint64((1 << target_bits) - 1)
            folded_hi = (
                (folded_hi << np.uint64(shift))
                | (folded_hi >> np.uint64(target_bits - shift))
            ) & tmask
        return folded ^ folded_hi

    def next_chunk(self):
        """Key sets for the next chunk of conditional branches.

        Returns ``(start, keys)``; ``keys`` may be empty when the chunk
        of control-flow events contained only calls.
        """
        s = self._next
        bits = self._bits[s:s + self._chunk]
        n = int(bits.shape[0])
        if n == 0:
            raise RuntimeError("TageKeyBatch exhausted: more branches "
                               "resolved than the trace contains")
        self._next = s + n

        hist = self._hist
        ext = np.concatenate((self._carry, bits))
        self._carry = ext[-hist:].copy()
        lookup = self._is_lookup[s:s + n]
        # Window before event j: bit k-1 is the k-th most recent pushed
        # outcome.  Events past bit 63 go into a second (hi) column.
        lo = np.zeros(n, dtype=np.uint64)
        for k in range(1, min(hist, 64) + 1):
            lo |= ext[hist - k:hist - k + n] << np.uint64(k - 1)
        if hist > 64:
            hi = np.zeros(n, dtype=np.uint64)
            for k in range(65, hist + 1):
                hi |= ext[hist - k:hist - k + n] << np.uint64(k - 65)
            hi = hi[lookup]
        else:
            hi = None
        lo = lo[lookup]

        m = int(lo.shape[0])
        start = self._branches_done
        self._branches_done = start + m
        if m == 0:
            return start, []
        bpcs = self._pcs[start:start + m]
        pc_tag = bpcs >> np.uint64(2)
        pc_idx = pc_tag ^ (bpcs >> np.uint64(2 + self._index_bits))
        entries_mask = np.uint64(self._entries_mask)
        tag_mask = np.uint64(self._tag_mask)
        cols = []
        for table, length in enumerate(self._lengths):
            # Tage._keys, vectorized: one index fold plus two tag folds.
            f_idx = self._fold(lo, hi, length, self._index_bits)
            f_tag = self._fold(lo, hi, length, self._tag_bits)
            f_tag2 = self._fold(lo, hi, length, self._tag_bits - 1)
            index = (pc_idx ^ f_idx ^ np.uint64(table)) & entries_mask
            tag = (pc_tag ^ f_tag ^ (f_tag2 << np.uint64(1))) & tag_mask
            cols.append(list(zip(index.tolist(), tag.tolist())))
        return start, list(zip(*cols))


def tage_key_batch(trace, tage):
    """Build a :class:`TageKeyBatch` for ``tage``, or None if unsupported.

    Requires numpy, a power-of-two tagged-table geometry (the key hash
    reduces to a mask), histories foldable from two 64-bit words, and a
    fresh predictor (the batch assumes the history register starts
    empty, which a just-constructed BranchUnit guarantees).
    """
    if np is None:
        return None
    cfg = tage.config
    if (
        tage._entries_mask is None
        or cfg.max_history > 128
        or tage.history.value != 0
        or tage.predictions
    ):
        return None
    from repro.isa import OpClass
    from repro.trace.columnar import F_TAKEN

    return TageKeyBatch(
        trace,
        branch_op=int(OpClass.BRANCH),
        call_op=int(OpClass.CALL),
        taken_flag=F_TAKEN,
        history_lengths=cfg.history_lengths,
        max_history=cfg.max_history,
        index_bits=tage._idx_bits,
        entries_mask=tage._entries_mask,
        tag_bits=cfg.tag_bits,
    )
