"""Value-prediction schemes as the pipeline sees them.

A scheme is the glue between the timing model and the predictors: the
pipeline asks the scheme for a prediction at fetch (``fetch_side``),
decides admission (PVT capacity, recovery mode), and reports back at
execute (``execute_side``) so the scheme can train.  Three schemes
reproduce the paper's three value predictors — DLVP (PAP-based), the
CAP variant of DLVP, and VTAGE — plus the DLVP+VTAGE tournament of
Figure 8.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.branch import BranchUnit
from repro.core import DlvpConfig, DlvpEngine, ValuePredictionEngine
from repro.isa import Instruction, OpClass
from repro.isa.fetch import FETCH_GROUP_BYTES
from repro.memory import MemoryHierarchy, MemoryImage
from repro.predictors.cap import CapConfig, CapPredictor
from repro.pipeline import batch as _key_batch
from repro.pipeline.stats import register_stats_type
from repro.predictors.tournament import ChooserStats, TournamentChooser
from repro.predictors.vtage import VtageConfig, VtageHandle, VtagePredictor
from repro.trace.columnar import F_VECTOR

_MASK64 = (1 << 64) - 1
_LOAD = int(OpClass.LOAD)

# ChooserStats lives in repro.predictors (import-order-safe to register here;
# predictors cannot depend on the pipeline package).
register_stats_type(ChooserStats)


class SchemePrediction:
    """Fetch-side result for one instruction.

    ``__slots__`` plain class: allocated once per fetched instruction on
    the simulate() hot path.
    """

    __slots__ = ("values", "correct", "handle", "registers")

    def __init__(
        self,
        values: tuple[int, ...] | None,    # None: no value prediction available
        correct: bool,                     # trace-known correctness of ``values``
        handle: object,                    # scheme-private state for execute_side
        registers: int,                    # PVT entries the prediction would need
    ) -> None:
        self.values = values
        self.correct = correct
        self.handle = handle
        self.registers = registers


class Scheme(abc.ABC):
    """Base class for value-prediction schemes driven by the pipeline."""

    name: str = "scheme"

    # True when fetch_side() is a guaranteed no-op for non-load
    # instructions (no prediction AND no side effects).  The timing
    # model uses it to skip the call entirely on the hot path; schemes
    # that predict non-loads (e.g. VTAGE with loads_only=False) must
    # leave it False.
    fetch_loads_only: bool = False

    def __init__(self, pvt_entries: int = 32) -> None:
        self.vpe = ValuePredictionEngine(pvt_entries=pvt_entries)

    def bind(
        self,
        hierarchy: MemoryHierarchy,
        image: MemoryImage,
        branch_unit: BranchUnit,
    ) -> None:
        """Attach per-run substrate objects before simulation starts."""
        self.hierarchy = hierarchy
        self.image = image
        self.branch_unit = branch_unit

    def attach_tracer(self, tracer) -> None:
        """Propagate a tracer to this scheme's components (after bind).

        The base implementation covers the VPE/PVT every scheme owns;
        schemes with more machinery (DLVP's engine, the tournament's
        sub-schemes) extend it.
        """
        self.vpe.attach_tracer(tracer)

    @abc.abstractmethod
    def fetch_side(
        self,
        inst: Instruction,
        fetch_cycle: int,
        load_slot: int | None,
        probe_cycle: int,
    ) -> SchemePrediction | None:
        """Attempt a prediction as the instruction is fetched.

        ``load_slot`` is 0/1 for the first two loads of a fetch group
        and None beyond that (the per-cycle prediction limit).
        Returns None when this scheme has nothing to do for ``inst``.
        """

    @abc.abstractmethod
    def execute_side(
        self,
        inst: Instruction,
        sp: SchemePrediction,
        way: int | None,
        value_predicted: bool,
    ) -> tuple[bool, bool]:
        """Validate and train once the instruction executes.

        ``way`` is the L1 way the block occupies after the demand access
        (None for non-memory instructions); returns ``(value_predicted,
        value_correct)`` as a plain tuple — one is produced per
        predicted instruction on the simulate() hot path, so no result
        object is allocated.
        """

    # -- flattened dispatch (columnar simulate() path) -------------------
    #
    # Schemes that set ``flat_protocol = True`` speak a raw-scalar tuple
    # protocol to the columnar loop: ``flat_fetch(pc, op, mem_addr,
    # mem_size, flags, ndests, values, fetch_cycle, load_slot,
    # probe_cycle)`` returns ``(values, correct, handle, registers)`` (or
    # None), and ``flat_execute(pc, op, mem_addr, mem_size, flags,
    # ndests, values, handle, predicted, way, value_predicted)`` returns
    # ``(value_predicted, value_correct)`` — no Instruction view or
    # SchemePrediction is ever materialized.  ``values`` are the
    # architectural (trace) values; ``predicted`` is what flat_fetch
    # returned.  Third-party schemes leave ``flat_protocol`` False and
    # the columnar loop adapts their object API (one Instruction view
    # per call).  Outcomes are pinned to the object path by the golden
    # suite.  ``flat_prepare`` runs once per columnar simulation, after
    # bind(), with the full trace — the hook for chunk-level batched
    # precomputation (see repro.pipeline.batch).

    flat_protocol = False

    def flat_prepare(self, trace) -> None:
        """Per-run hook before the columnar loop starts (no-op default)."""

    def on_value_flush(self) -> None:
        """A value misprediction flushed the pipeline."""
        self.vpe.flush()

    def on_branch_flush(self) -> None:
        """A branch misprediction flushed the pipeline front-end."""

    def way_predicted_probes(self) -> int:
        """L1 probes issued as single-way (way-predicted) reads.

        Feeds :attr:`EnergyEvents.l1d_probes_way_predicted`; schemes
        without a probing engine report zero.
        """
        return 0

    @abc.abstractmethod
    def result_stats(self) -> object:
        """Scheme-shaped statistics for :class:`SimResult`."""

    @abc.abstractmethod
    def predictor_storage_bits(self) -> int:
        """Prediction-table budget (energy model input)."""

    @abc.abstractmethod
    def access_counts(self) -> tuple[int, int]:
        """Approximate (reads, writes) of the prediction tables."""


def _masked_values(inst: Instruction, size: int | None = None) -> tuple[int, ...]:
    """The architecturally loaded values masked to the access width."""
    nbytes = size if size is not None else inst.mem_size
    mask = (1 << (8 * nbytes)) - 1
    values = inst.values
    if len(values) == 1:
        return (values[0] & mask,)
    return tuple(v & mask for v in values)


class DlvpScheme(Scheme):
    """DLVP proper (PAP), or the paper's "CAP" comparison point when
    constructed with ``use_cap=True``."""

    fetch_loads_only = True
    flat_protocol = True

    def __init__(
        self,
        config: DlvpConfig | None = None,
        use_cap: bool = False,
        cap_config: CapConfig | None = None,
    ) -> None:
        super().__init__(pvt_entries=(config or DlvpConfig()).pvt_entries)
        self.config = config or DlvpConfig()
        self.use_cap = use_cap
        self.cap_config = cap_config
        self.name = "cap" if use_cap else "dlvp"
        self.engine: DlvpEngine | None = None

    def bind(self, hierarchy, image, branch_unit) -> None:
        super().bind(hierarchy, image, branch_unit)
        address_predictor = (
            CapPredictor(self.cap_config or CapConfig(confidence_threshold=24))
            if self.use_cap
            else None
        )
        self.engine = DlvpEngine(
            config=self.config,
            hierarchy=hierarchy,
            image=image,
            address_predictor=address_predictor,
        )
        # Bound-method aliases for the two per-load calls (hot path).
        self._fetch_probe_predict = self.engine.fetch_probe_predict
        self._execute_train = self.engine.execute_train
        self._on_unpredicted = self.engine.on_load_fetch_unpredicted
        self._flat_fetch_engine = self.engine.flat_fetch_probe_predict
        self._flat_execute_engine = self.engine.flat_execute_train
        self._flat_unpredicted = self.engine.flat_load_unpredicted
        # Drop fused closures from any previous run: they captured the
        # previous engine.  flat_prepare() rebuilds them for this one.
        self.__dict__.pop("flat_fetch", None)
        self.__dict__.pop("flat_execute", None)

    def flat_prepare(self, trace) -> None:
        """Precompute batched APT keys and build the fused fast path.

        Without numpy (or for CAP, or APT histories wider than the
        64-bit batch fold), the engine falls back to live incremental
        folds — same bits, pinned by the golden suite.  Either way the
        per-run flat_fetch/flat_execute instance closures (with every
        hot attribute captured as a cell) shadow the layered class
        methods for the columnar loop.
        """
        engine = self.engine
        engine.bind_key_batch(None)
        if engine._is_pap and _key_batch.np is not None:
            predictor = engine.predictor
            history_bits = predictor.config.history_bits
            if history_bits <= 64:   # batch folds pack windows into uint64
                engine.bind_key_batch(
                    _key_batch.PapKeyBatch(
                        trace,
                        load_op=_LOAD,
                        history_bits=history_bits,
                        index_bits=predictor._index_bits,
                        tag_bits=predictor.config.tag_bits,
                        tag_shift=predictor._tag_shift,
                        fetch_group_bytes=FETCH_GROUP_BYTES,
                    )
                )
        self.flat_fetch = engine.make_flat_fetch()
        self.flat_execute = engine.make_flat_execute()

    def attach_tracer(self, tracer) -> None:
        super().attach_tracer(tracer)
        if self.engine is not None:
            self.engine.attach_tracer(tracer)

    def fetch_side(self, inst, fetch_cycle, load_slot, probe_cycle):
        if inst.op != OpClass.LOAD:
            return None
        if load_slot is None:
            self._on_unpredicted(inst)
            return None
        handle, values = self._fetch_probe_predict(
            inst, fetch_cycle, load_slot, probe_cycle
        )
        correct = values is not None and values == _masked_values(inst)
        return SchemePrediction(values, correct, handle, len(inst.dests))

    def execute_side(self, inst, sp, way, value_predicted):
        return self._execute_train(
            sp.handle,
            inst,
            way,
            value_predicted,
            sp.values if value_predicted else None,
        )

    def flat_fetch(
        self, pc, op, mem_addr, mem_size, flags, ndests, values,
        fetch_cycle, load_slot, probe_cycle,
    ):
        if op != _LOAD:
            return None
        if load_slot is None:
            self._flat_unpredicted(pc)
            return None
        handle, pred = self._flat_fetch_engine(
            pc, mem_size, ndests, fetch_cycle, load_slot, probe_cycle
        )
        if pred is None:
            return (None, False, handle, ndests)
        # _masked_values(), flattened.
        mask = (1 << (8 * mem_size)) - 1
        if len(values) == 1:
            correct = pred == (values[0] & mask,)
        else:
            correct = pred == tuple(v & mask for v in values)
        return (pred, correct, handle, ndests)

    def flat_execute(
        self, pc, op, mem_addr, mem_size, flags, ndests, values,
        handle, predicted, way, value_predicted,
    ):
        return self._flat_execute_engine(
            handle, pc, mem_addr, mem_size, values, way, value_predicted,
            predicted if value_predicted else None,
        )

    def on_value_flush(self) -> None:
        super().on_value_flush()
        assert self.engine is not None
        self.engine.paq.flush()

    def on_branch_flush(self) -> None:
        assert self.engine is not None
        self.engine.paq.flush()

    def way_predicted_probes(self) -> int:
        assert self.engine is not None
        return self.engine.stats.probes_way_predicted

    def result_stats(self):
        assert self.engine is not None
        # The PAQ keeps its own flush counter; mirror it into the
        # result-facing stats so cached/serialized runs carry it.
        self.engine.stats.paq_flushed = self.engine.paq.flushed
        return self.engine.stats

    def predictor_storage_bits(self) -> int:
        assert self.engine is not None
        predictor = self.engine.predictor
        if isinstance(predictor, CapPredictor):
            return predictor.storage_bits()
        return predictor.storage_bits(include_way=self.config.way_prediction)

    def access_counts(self) -> tuple[int, int]:
        assert self.engine is not None
        loads = self.engine.stats.loads_seen
        return loads, loads


class VtageScheme(Scheme):
    """VTAGE driven by the core's global branch history."""

    flat_protocol = True

    def __init__(self, config: VtageConfig | None = None) -> None:
        super().__init__()
        self.config = config or VtageConfig()
        self.name = "vtage"
        self.predictor = VtagePredictor(self.config)
        self.fetch_loads_only = self.config.loads_only

    def bind(self, hierarchy, image, branch_unit) -> None:
        super().bind(hierarchy, image, branch_unit)
        # Hot-path aliases: the history object outlives the run and the
        # per-load flat calls read only its .value.
        self._history = branch_unit.global_history
        self._loads_only = self.config.loads_only

    def fetch_side(self, inst, fetch_cycle, load_slot, probe_cycle):
        if not inst.dests or not inst.values:
            return None
        if self.config.loads_only and inst.op != OpClass.LOAD:
            return None
        handle = self.predictor.begin(inst, self.branch_unit.global_history.value)
        if handle is None:
            return None
        values = handle.prediction
        if inst.op == OpClass.LOAD and load_slot is None:
            values = None              # per-cycle prediction-port limit
        correct = values is not None and values == tuple(
            v & _MASK64 if not inst.is_vector else v for v in inst.values
        )
        return SchemePrediction(
            values=values,
            correct=correct,
            handle=handle,
            registers=inst.value_prediction_slots(),
        )

    def execute_side(self, inst, sp, way, value_predicted):
        correct = self.predictor.finish(sp.handle, inst)
        return value_predicted, correct

    def flat_fetch(
        self, pc, op, mem_addr, mem_size, flags, ndests, values,
        fetch_cycle, load_slot, probe_cycle,
    ):
        if not ndests or not values:
            return None
        if self._loads_only and op != _LOAD:
            return None
        is_vector = bool(flags & F_VECTOR)
        handle = self.predictor.begin_flat(
            pc, op, ndests, is_vector, values, self._history.value
        )
        if handle is None:
            return None
        vals_pred = handle.prediction
        if op == _LOAD and load_slot is None:
            vals_pred = None           # per-cycle prediction-port limit
        correct = vals_pred is not None and vals_pred == (
            values if is_vector else tuple(v & _MASK64 for v in values)
        )
        registers = (2 * ndests) if is_vector else ndests
        return (vals_pred, correct, handle, registers)

    def flat_execute(
        self, pc, op, mem_addr, mem_size, flags, ndests, values,
        handle, predicted, way, value_predicted,
    ):
        return value_predicted, self.predictor.finish_flat(
            handle, op, ndests, bool(flags & F_VECTOR), values
        )

    def result_stats(self):
        return self.predictor.stats

    def predictor_storage_bits(self) -> int:
        return self.predictor.storage_bits()

    def access_counts(self) -> tuple[int, int]:
        loads = self.predictor.stats.loads_seen
        tables = len(self.config.history_lengths)
        return tables * loads, loads


class DvtageScheme(Scheme):
    """D-VTAGE (differential VTAGE) driven by the global branch history.

    An extension beyond the paper's evaluated set: Section 2.1 discusses
    D-VTAGE's trade-offs (adder on the critical path, speculative
    last-value window) without evaluating it; this scheme lets the
    benchmarks quantify them on the same workloads.
    """

    fetch_loads_only = True
    flat_protocol = True

    def __init__(self, config: "DvtageConfig | None" = None) -> None:
        super().__init__()
        from repro.predictors.dvtage import DvtageConfig
        self.config = config or DvtageConfig()
        self.name = "dvtage"
        from repro.predictors.dvtage import DvtagePredictor
        self.predictor = DvtagePredictor(self.config)

    def bind(self, hierarchy, image, branch_unit) -> None:
        super().bind(hierarchy, image, branch_unit)
        self._history = branch_unit.global_history

    def fetch_side(self, inst, fetch_cycle, load_slot, probe_cycle):
        if inst.op != OpClass.LOAD:
            return None
        history = self.branch_unit.global_history.value
        prediction = self.predictor.predict(inst, history)
        if load_slot is None:
            prediction = None
        correct = (
            prediction is not None
            and (prediction,) == tuple(v & _MASK64 for v in inst.values)
        )
        return SchemePrediction(
            values=(prediction,) if prediction is not None else None,
            correct=correct,
            handle=history,
            registers=len(inst.dests),
        )

    def execute_side(self, inst, sp, way, value_predicted):
        history = sp.handle
        prediction = self.predictor.train(inst, history)
        correct = prediction is not None and (prediction,) == tuple(
            v & _MASK64 for v in inst.values
        )
        return value_predicted, correct

    def flat_fetch(
        self, pc, op, mem_addr, mem_size, flags, ndests, values,
        fetch_cycle, load_slot, probe_cycle,
    ):
        if op != _LOAD:
            return None
        history = self._history.value
        prediction = self.predictor.predict_flat(
            pc, op, ndests, bool(flags & F_VECTOR), history
        )
        if load_slot is None:
            prediction = None
        correct = (
            prediction is not None
            and (prediction,) == tuple(v & _MASK64 for v in values)
        )
        return (
            (prediction,) if prediction is not None else None,
            correct,
            history,
            ndests,
        )

    def flat_execute(
        self, pc, op, mem_addr, mem_size, flags, ndests, values,
        handle, predicted, way, value_predicted,
    ):
        prediction = self.predictor.train_flat(
            pc, op, ndests, bool(flags & F_VECTOR), values, handle
        )
        correct = prediction is not None and (prediction,) == tuple(
            v & _MASK64 for v in values
        )
        return value_predicted, correct

    def result_stats(self):
        return self.predictor.stats

    def predictor_storage_bits(self) -> int:
        return self.predictor.storage_bits()

    def access_counts(self) -> tuple[int, int]:
        loads = self.predictor.stats.loads_seen
        tables = 1 + len(self.config.history_lengths)
        return tables * loads, loads


@register_stats_type
@dataclass
class TournamentStats:
    """Figure 8 material."""

    loads: int = 0
    final_predictions: int = 0
    final_by_dlvp: int = 0
    final_by_vtage: int = 0

    @property
    def coverage(self) -> float:
        return self.final_predictions / self.loads if self.loads else 0.0

    @property
    def dlvp_share(self) -> float:
        """Fraction of loads whose final prediction came from DLVP."""
        return self.final_by_dlvp / self.loads if self.loads else 0.0

    @property
    def vtage_share(self) -> float:
        return self.final_by_vtage / self.loads if self.loads else 0.0


@dataclass
class _TournamentHandle:
    sp_dlvp: SchemePrediction | None
    sp_vtage: SchemePrediction | None
    final_is_dlvp: bool


class TournamentScheme(Scheme):
    """DLVP and VTAGE running concurrently with a 2-bit chooser."""

    fetch_loads_only = True
    flat_protocol = True

    def __init__(
        self,
        dlvp_config: DlvpConfig | None = None,
        vtage_config: VtageConfig | None = None,
        chooser_entries: int = 1024,
    ) -> None:
        super().__init__()
        self.name = "tournament"
        self.dlvp = DlvpScheme(dlvp_config)
        self.vtage = VtageScheme(vtage_config)
        self.chooser = TournamentChooser(entries=chooser_entries)
        self.stats = TournamentStats()

    def bind(self, hierarchy, image, branch_unit) -> None:
        super().bind(hierarchy, image, branch_unit)
        self.dlvp.bind(hierarchy, image, branch_unit)
        self.vtage.bind(hierarchy, image, branch_unit)
        # Sub-scheme flat entry points, aliased for the per-load calls.
        self._dlvp_flat_fetch = self.dlvp.flat_fetch
        self._dlvp_flat_execute = self.dlvp.flat_execute
        self._vtage_flat_fetch = self.vtage.flat_fetch
        self._vtage_flat_execute = self.vtage.flat_execute

    def flat_prepare(self, trace) -> None:
        self.dlvp.flat_prepare(trace)
        # flat_prepare installs per-run fused closures on the DLVP side;
        # re-alias so the tournament dispatch picks them up.
        self._dlvp_flat_fetch = self.dlvp.flat_fetch
        self._dlvp_flat_execute = self.dlvp.flat_execute

    def attach_tracer(self, tracer) -> None:
        super().attach_tracer(tracer)
        self.dlvp.attach_tracer(tracer)
        self.vtage.attach_tracer(tracer)

    def fetch_side(self, inst, fetch_cycle, load_slot, probe_cycle):
        if inst.op != OpClass.LOAD:
            return None
        sp_d = self.dlvp.fetch_side(inst, fetch_cycle, load_slot, probe_cycle)
        sp_v = self.vtage.fetch_side(inst, fetch_cycle, load_slot, probe_cycle)
        self.stats.loads += 1

        prefer_dlvp = self.chooser.choose_a(inst.pc)
        candidates: list[tuple[bool, SchemePrediction]] = []
        if sp_d is not None and sp_d.values is not None:
            candidates.append((True, sp_d))
        if sp_v is not None and sp_v.values is not None:
            candidates.append((False, sp_v))
        if not candidates:
            return SchemePrediction(
                values=None,
                correct=False,
                handle=_TournamentHandle(sp_d, sp_v, prefer_dlvp),
                registers=len(inst.dests),
            )
        final_is_dlvp, chosen = candidates[0]
        for is_dlvp, sp in candidates:
            if is_dlvp == prefer_dlvp:
                final_is_dlvp, chosen = is_dlvp, sp
                break
        self.chooser.record_choice(final_is_dlvp)
        self.stats.final_predictions += 1
        if final_is_dlvp:
            self.stats.final_by_dlvp += 1
        else:
            self.stats.final_by_vtage += 1
        return SchemePrediction(
            values=chosen.values,
            correct=chosen.correct,
            handle=_TournamentHandle(sp_d, sp_v, final_is_dlvp),
            registers=chosen.registers,
        )

    def execute_side(self, inst, sp, way, value_predicted):
        handle = sp.handle
        assert isinstance(handle, _TournamentHandle)
        a_correct: bool | None = None
        b_correct: bool | None = None
        value_correct = False
        if handle.sp_dlvp is not None:
            dlvp_used = value_predicted and handle.final_is_dlvp
            _, d_correct = self.dlvp.execute_side(inst, handle.sp_dlvp, way, dlvp_used)
            if handle.sp_dlvp.values is not None:
                a_correct = handle.sp_dlvp.correct
            if dlvp_used:
                value_correct = d_correct
        if handle.sp_vtage is not None:
            _, v_correct = self.vtage.execute_side(inst, handle.sp_vtage, way, False)
            if handle.sp_vtage.values is not None:
                b_correct = handle.sp_vtage.correct
            if value_predicted and not handle.final_is_dlvp:
                value_correct = v_correct
        self.chooser.update(inst.pc, a_correct, b_correct)
        return value_predicted, value_correct

    def flat_fetch(
        self, pc, op, mem_addr, mem_size, flags, ndests, values,
        fetch_cycle, load_slot, probe_cycle,
    ):
        if op != _LOAD:
            return None
        d = self._dlvp_flat_fetch(
            pc, op, mem_addr, mem_size, flags, ndests, values,
            fetch_cycle, load_slot, probe_cycle,
        )
        v = self._vtage_flat_fetch(
            pc, op, mem_addr, mem_size, flags, ndests, values,
            fetch_cycle, load_slot, probe_cycle,
        )
        self.stats.loads += 1

        prefer_dlvp = self.chooser.choose_a(pc)
        d_values = d[0] if d is not None else None
        v_values = v[0] if v is not None else None
        if d_values is None and v_values is None:
            return (None, False, (d, v, prefer_dlvp), ndests)
        # Candidate preference, flattened: the chooser's pick when that
        # side predicted, else whichever side did (DLVP first — the
        # same order the object path's candidate list encodes).
        if d_values is not None and (prefer_dlvp or v_values is None):
            final_is_dlvp, chosen = True, d
        else:
            final_is_dlvp, chosen = False, v
        self.chooser.record_choice(final_is_dlvp)
        self.stats.final_predictions += 1
        if final_is_dlvp:
            self.stats.final_by_dlvp += 1
        else:
            self.stats.final_by_vtage += 1
        return (chosen[0], chosen[1], (d, v, final_is_dlvp), chosen[3])

    def flat_execute(
        self, pc, op, mem_addr, mem_size, flags, ndests, values,
        handle, predicted, way, value_predicted,
    ):
        d, v, final_is_dlvp = handle
        a_correct: bool | None = None
        b_correct: bool | None = None
        value_correct = False
        if d is not None:
            d_values = d[0]
            dlvp_used = value_predicted and final_is_dlvp
            _, d_correct = self._dlvp_flat_execute(
                pc, op, mem_addr, mem_size, flags, ndests, values,
                d[2], d_values, way, dlvp_used,
            )
            if d_values is not None:
                a_correct = d[1]
            if dlvp_used:
                value_correct = d_correct
        if v is not None:
            v_values = v[0]
            _, v_correct = self._vtage_flat_execute(
                pc, op, mem_addr, mem_size, flags, ndests, values,
                v[2], v_values, way, False,
            )
            if v_values is not None:
                b_correct = v[1]
            if value_predicted and not final_is_dlvp:
                value_correct = v_correct
        self.chooser.update(pc, a_correct, b_correct)
        return value_predicted, value_correct

    def on_value_flush(self) -> None:
        super().on_value_flush()
        self.dlvp.on_value_flush()
        self.vtage.on_value_flush()

    def on_branch_flush(self) -> None:
        self.dlvp.on_branch_flush()

    def way_predicted_probes(self) -> int:
        return self.dlvp.way_predicted_probes()

    def result_stats(self):
        return {
            "tournament": self.stats,
            "dlvp": self.dlvp.result_stats(),
            "vtage": self.vtage.result_stats(),
            "chooser": self.chooser.stats,
        }

    def predictor_storage_bits(self) -> int:
        return (
            self.dlvp.predictor_storage_bits()
            + self.vtage.predictor_storage_bits()
            + self.chooser.storage_bits()
        )

    def access_counts(self) -> tuple[int, int]:
        dr, dw = self.dlvp.access_counts()
        vr, vw = self.vtage.access_counts()
        return dr + vr, dw + vw
