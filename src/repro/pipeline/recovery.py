"""Value-misprediction recovery models (Section 5.2.4).

* ``FLUSH`` — the paper's default: a value misprediction squashes
  everything younger than the load and refetches, after a 1-cycle
  validation penalty.
* ``ORACLE_REPLAY`` — the paper's idealised replay approximation: a
  value misprediction is accounted as if the load had never been
  predicted at all (consumers simply wait for the real value; no flush,
  no penalty).  Real replay hardware would fall between the two.
"""

from __future__ import annotations

import enum


class RecoveryMode(enum.Enum):
    """Value-misprediction recovery model (see module docstring)."""

    FLUSH = "flush"
    ORACLE_REPLAY = "oracle_replay"
