"""Per-run results of the timing model.

:class:`SimResult` is also the unit of exchange for the runtime layer:
results round-trip through :meth:`SimResult.to_dict` /
:meth:`SimResult.from_dict` as schema-versioned, JSON-safe dicts so the
on-disk cache (:mod:`repro.runtime.cache`) never needs pickles.
Scheme-shaped ``scheme_stats`` payloads are serialized as tagged dicts;
stats dataclasses register themselves via :func:`register_stats_type`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.core.dlvp import DlvpStats
from repro.predictors.base import PredictorStats

RESULT_SCHEMA_VERSION = 3

# Older schemas this build can still read.  v1 payloads predate the
# way-predicted-probe energy split and the PAQ flush counter; both load
# as zero via dataclass defaults, which matches the old accounting.
# v2 payloads predate the optional ``intervals`` field (interval
# metrics from traced runs), which loads as ``None``.
_COMPATIBLE_SCHEMA_VERSIONS = frozenset({1, 2, RESULT_SCHEMA_VERSION})

_STATS_TYPES: dict[str, type] = {}


def register_stats_type(cls: type) -> type:
    """Register a stats dataclass for tagged (de)serialization.

    Any dataclass a scheme returns from ``result_stats()`` must be
    registered here (directly or as a dict value) for cached results to
    round-trip.  Returns ``cls`` so it can be used as a decorator.
    """
    _STATS_TYPES[cls.__name__] = cls
    return cls


def stats_to_dict(stats: object | None) -> object | None:
    """Serialize a ``scheme_stats`` payload to a JSON-safe tagged value."""
    if stats is None:
        return None
    if isinstance(stats, dict):
        return {
            "__kind__": "dict",
            "items": {str(k): stats_to_dict(v) for k, v in stats.items()},
        }
    cls = type(stats)
    if cls.__name__ not in _STATS_TYPES or not dataclasses.is_dataclass(stats):
        raise TypeError(
            f"cannot serialize scheme stats of type {cls.__name__}; "
            "register a dataclass via repro.pipeline.stats.register_stats_type"
        )
    payload = {f.name: getattr(stats, f.name) for f in dataclasses.fields(stats)}
    payload["__kind__"] = cls.__name__
    return payload


def stats_from_dict(data: object | None) -> object | None:
    """Inverse of :func:`stats_to_dict`."""
    if data is None:
        return None
    if not isinstance(data, dict) or "__kind__" not in data:
        raise ValueError(f"malformed scheme stats payload: {data!r}")
    kind = data["__kind__"]
    if kind == "dict":
        return {k: stats_from_dict(v) for k, v in data["items"].items()}
    try:
        cls = _STATS_TYPES[kind]
    except KeyError:
        raise ValueError(f"unknown scheme stats type: {kind!r}") from None
    fields = {k: v for k, v in data.items() if k != "__kind__"}
    return cls(**fields)


@dataclass
class FlushStats:
    branch: int = 0
    value: int = 0

    @property
    def total(self) -> int:
        return self.branch + self.value


@dataclass
class EnergyEvents:
    """Raw event counts the energy model converts to joules-equivalents."""

    cycles: int = 0
    instructions: int = 0
    l1d_accesses: int = 0
    l1d_probes: int = 0
    l1d_probes_way_predicted: int = 0
    l2_accesses: int = 0
    l3_accesses: int = 0
    predictor_reads: int = 0
    predictor_writes: int = 0
    predictor_bits: int = 0
    pvt_reads: int = 0
    pvt_writes: int = 0


@dataclass
class SimResult:
    """Everything a simulation run reports.

    ``scheme_stats`` is scheme-shaped: a :class:`DlvpStats` for DLVP
    runs, a :class:`PredictorStats` for VTAGE runs, a dict for
    tournaments, ``None`` for the baseline.
    """

    trace_name: str
    scheme_name: str
    instructions: int
    cycles: int
    flushes: FlushStats = field(default_factory=FlushStats)
    branch_mispredictions: int = 0
    value_predictions: int = 0
    value_mispredictions: int = 0
    loads: int = 0
    l1d_hit_rate: float = 0.0
    tlb_miss_rate: float = 0.0
    energy: EnergyEvents = field(default_factory=EnergyEvents)
    scheme_stats: object | None = None
    # Per-interval metric rows (list of JSON-safe dicts) filled in by
    # the interval-metrics tracer backend; ``None`` for untraced runs.
    intervals: list | None = None

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def speedup_over(self, baseline: "SimResult") -> float:
        """Relative speedup vs a baseline run of the same trace."""
        if baseline.trace_name != self.trace_name:
            raise ValueError(
                f"speedup across different traces: {baseline.trace_name} vs {self.trace_name}"
            )
        if not self.cycles:
            return 0.0
        return baseline.cycles / self.cycles - 1.0

    @property
    def value_coverage(self) -> float:
        """Fraction of dynamic loads that were value predicted."""
        return self.value_predictions / self.loads if self.loads else 0.0

    @property
    def value_accuracy(self) -> float:
        if not self.value_predictions:
            return 1.0
        return 1.0 - self.value_mispredictions / self.value_predictions

    def to_dict(self) -> dict:
        """JSON-safe, schema-versioned representation of this result."""
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "trace_name": self.trace_name,
            "scheme_name": self.scheme_name,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "flushes": {"branch": self.flushes.branch, "value": self.flushes.value},
            "branch_mispredictions": self.branch_mispredictions,
            "value_predictions": self.value_predictions,
            "value_mispredictions": self.value_mispredictions,
            "loads": self.loads,
            "l1d_hit_rate": self.l1d_hit_rate,
            "tlb_miss_rate": self.tlb_miss_rate,
            "energy": dataclasses.asdict(self.energy),
            "scheme_stats": stats_to_dict(self.scheme_stats),
            "intervals": self.intervals,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        """Rebuild a result serialized by :meth:`to_dict`."""
        schema = data.get("schema")
        if schema not in _COMPATIBLE_SCHEMA_VERSIONS:
            raise ValueError(
                f"unsupported SimResult schema {schema!r} "
                f"(compatible: {sorted(_COMPATIBLE_SCHEMA_VERSIONS)})"
            )
        return cls(
            trace_name=data["trace_name"],
            scheme_name=data["scheme_name"],
            instructions=data["instructions"],
            cycles=data["cycles"],
            flushes=FlushStats(**data["flushes"]),
            branch_mispredictions=data["branch_mispredictions"],
            value_predictions=data["value_predictions"],
            value_mispredictions=data["value_mispredictions"],
            loads=data["loads"],
            l1d_hit_rate=data["l1d_hit_rate"],
            tlb_miss_rate=data["tlb_miss_rate"],
            energy=EnergyEvents(**data["energy"]),
            scheme_stats=stats_from_dict(data["scheme_stats"]),
            intervals=data.get("intervals"),
        )


register_stats_type(DlvpStats)
register_stats_type(PredictorStats)
