"""Per-run results of the timing model."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dlvp import DlvpStats
from repro.predictors.base import PredictorStats


@dataclass
class FlushStats:
    branch: int = 0
    value: int = 0

    @property
    def total(self) -> int:
        return self.branch + self.value


@dataclass
class EnergyEvents:
    """Raw event counts the energy model converts to joules-equivalents."""

    cycles: int = 0
    instructions: int = 0
    l1d_accesses: int = 0
    l1d_probes: int = 0
    l1d_probes_way_predicted: int = 0
    l2_accesses: int = 0
    l3_accesses: int = 0
    predictor_reads: int = 0
    predictor_writes: int = 0
    predictor_bits: int = 0
    pvt_reads: int = 0
    pvt_writes: int = 0


@dataclass
class SimResult:
    """Everything a simulation run reports.

    ``scheme_stats`` is scheme-shaped: a :class:`DlvpStats` for DLVP
    runs, a :class:`PredictorStats` for VTAGE runs, a dict for
    tournaments, ``None`` for the baseline.
    """

    trace_name: str
    scheme_name: str
    instructions: int
    cycles: int
    flushes: FlushStats = field(default_factory=FlushStats)
    branch_mispredictions: int = 0
    value_predictions: int = 0
    value_mispredictions: int = 0
    loads: int = 0
    l1d_hit_rate: float = 0.0
    tlb_miss_rate: float = 0.0
    energy: EnergyEvents = field(default_factory=EnergyEvents)
    scheme_stats: object | None = None

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def speedup_over(self, baseline: "SimResult") -> float:
        """Relative speedup vs a baseline run of the same trace."""
        if baseline.trace_name != self.trace_name:
            raise ValueError(
                f"speedup across different traces: {baseline.trace_name} vs {self.trace_name}"
            )
        if not self.cycles:
            return 0.0
        return baseline.cycles / self.cycles - 1.0

    @property
    def value_coverage(self) -> float:
        """Fraction of dynamic loads that were value predicted."""
        return self.value_predictions / self.loads if self.loads else 0.0

    @property
    def value_accuracy(self) -> float:
        if not self.value_predictions:
            return 1.0
        return 1.0 - self.value_mispredictions / self.value_predictions
