"""Three-level memory hierarchy with TLB and stride prefetching.

Latency model: an access that misses at level N pays N's latency and
continues downward; the total is the sum of latencies down to the first
hitting level (memory on a full miss).  Fills propagate back up so the
block is resident at every level afterwards — an inclusive hierarchy,
the simplest arrangement consistent with the paper's configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.cache import Cache, CacheConfig
from repro.memory.prefetcher import StridePrefetcher
from repro.memory.tlb import Tlb, TlbConfig


@dataclass(frozen=True)
class HierarchyConfig:
    """Table 4 memory-hierarchy parameters."""

    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="l1d", size_bytes=64 * 1024, associativity=4, block_bytes=64, latency=2
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="l2", size_bytes=512 * 1024, associativity=8, block_bytes=128, latency=16
        )
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="l3", size_bytes=8 * 1024 * 1024, associativity=16, block_bytes=128, latency=32
        )
    )
    memory_latency: int = 200
    tlb: TlbConfig = field(default_factory=TlbConfig)
    prefetch: bool = True


class AccessResult:
    """Outcome of one demand access.

    A ``__slots__`` plain class rather than a dataclass: one is built
    per demand access on the simulator hot path.
    """

    __slots__ = ("latency", "l1_hit", "tlb_hit", "way")

    def __init__(self, latency: int, l1_hit: bool, tlb_hit: bool, way: int) -> None:
        self.latency = latency
        self.l1_hit = l1_hit
        self.tlb_hit = tlb_hit
        self.way = way


class MemoryHierarchy:
    """L1D + L2 + L3 + memory, with TLB and an L1 stride prefetcher."""

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config or HierarchyConfig()
        self.l1d = Cache(self.config.l1d)
        self.l2 = Cache(self.config.l2)
        self.l3 = Cache(self.config.l3)
        self.tlb = Tlb(self.config.tlb)
        self.prefetcher = StridePrefetcher() if self.config.prefetch else None
        self.demand_accesses = 0
        self.prefetch_fills = 0
        self._tracer = None
        self._l1_latency = self.config.l1d.latency
        # The TLB's backing cache array and miss penalty, resolved once:
        # every demand access and every DLVP probe translates, so the
        # Tlb.access wrapper call was pure hot-path overhead.  The cache
        # internals aliased below are created once by Cache.__init__ and
        # only ever mutated in place, so the references stay valid.
        self._tlb_array = self.tlb._array
        self._tlb_penalty = self.tlb.config.miss_penalty
        tlb_array = self._tlb_array
        self._tlb_shift = tlb_array._set_shift
        self._tlb_mask = tlb_array._set_mask
        self._tlb_where = tlb_array._where
        self._tlb_lru = tlb_array._lru
        self._tlb_stats = tlb_array.stats
        l1 = self.l1d
        self._l1_shift = l1._set_shift
        self._l1_mask = l1._set_mask
        self._l1_where = l1._where
        self._l1_lru = l1._lru
        self._l1_stats = l1.stats

    def access(self, pc: int, addr: int, is_store: bool = False) -> AccessResult:
        """Demand load/store; returns latency and placement information.

        The TLB and L1 hit paths are inlined copies of
        :meth:`Cache.access` — one demand access per memory instruction
        makes this the hottest hierarchy entry point.
        """
        self.demand_accesses += 1
        block = addr >> self._tlb_shift
        set_idx = block & self._tlb_mask
        way = self._tlb_where[set_idx].get(block)
        if way is not None:
            lru = self._tlb_lru[set_idx]
            if lru[0] != way:
                lru.remove(way)
                lru.insert(0, way)
            self._tlb_stats.hits += 1
            tlb_hit = True
            latency = self._l1_latency
        else:
            self._tlb_stats.misses += 1
            self._tlb_array.fill(addr)
            tlb_hit = False
            latency = self._l1_latency + self._tlb_penalty
        block = addr >> self._l1_shift
        set_idx = block & self._l1_mask
        way = self._l1_where[set_idx].get(block)
        if way is not None:
            lru = self._l1_lru[set_idx]
            if lru[0] != way:
                lru.remove(way)
                lru.insert(0, way)
            self._l1_stats.hits += 1
            l1_hit = True
        else:
            self._l1_stats.misses += 1
            way = self.l1d.fill(addr)
            l1_hit = False
            latency += self._fill_from_below(addr)
        if self.prefetcher is not None and not is_store:
            for target in self.prefetcher.observe(pc, addr):
                self.prefetch_fill(target)
        if self._tracer is not None:
            self._tracer.on_demand_access(
                pc, addr, is_store, latency, l1_hit, tlb_hit
            )
        return AccessResult(latency, l1_hit, tlb_hit, way)

    def attach_tracer(self, tracer) -> None:
        """Opt into per-event instrumentation (see :mod:`repro.observe`).

        Only :meth:`access` emits events; the timing model's inlined
        demand-access fast path routes through this method when (and
        only when) a tracer is attached.
        """
        self._tracer = tracer

    def probe_l1(self, addr: int) -> tuple[bool, int | None]:
        """DLVP speculative probe: L1 residency check, non-allocating
        for the cache but translated through the TLB — probing twice per
        predicted load perturbs TLB contents, the second-order effect
        behind the paper's Figure 9 bzip2/avmshell anomalies.

        TLB access and L1 probe bodies inlined, as in :meth:`access`.
        """
        block = addr >> self._tlb_shift
        set_idx = block & self._tlb_mask
        way = self._tlb_where[set_idx].get(block)
        if way is not None:
            lru = self._tlb_lru[set_idx]
            if lru[0] != way:
                lru.remove(way)
                lru.insert(0, way)
            self._tlb_stats.hits += 1
        else:
            self._tlb_stats.misses += 1
            self._tlb_array.fill(addr)
        block = addr >> self._l1_shift
        way = self._l1_where[block & self._l1_mask].get(block)
        if way is not None:
            self._l1_stats.probe_hits += 1
            return True, way
        self._l1_stats.probe_misses += 1
        return False, None

    def prefetch_fill(self, addr: int) -> None:
        """Bring ``addr`` into L1 (checking L1 first, as the paper's
        L1 prefetcher does) without counting as a demand access."""
        hit, _ = self.l1d.probe(addr)
        if hit:
            return
        self._fill_from_below(addr)
        self.prefetch_fills += 1

    def _fill_from_below(self, addr: int) -> int:
        """Walk L2 -> L3 -> memory; fill upward.  Returns added latency."""
        latency = self.config.l2.latency
        l2_hit, _ = self.l2.access(addr)
        if not l2_hit:
            latency += self.config.l3.latency
            l3_hit, _ = self.l3.access(addr)
            if not l3_hit:
                latency += self.config.memory_latency
        self.l1d.fill(addr)
        return latency
