"""Three-level memory hierarchy with TLB and stride prefetching.

Latency model: an access that misses at level N pays N's latency and
continues downward; the total is the sum of latencies down to the first
hitting level (memory on a full miss).  Fills propagate back up so the
block is resident at every level afterwards — an inclusive hierarchy,
the simplest arrangement consistent with the paper's configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.cache import Cache, CacheConfig
from repro.memory.prefetcher import StridePrefetcher
from repro.memory.tlb import Tlb, TlbConfig


@dataclass(frozen=True)
class HierarchyConfig:
    """Table 4 memory-hierarchy parameters."""

    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="l1d", size_bytes=64 * 1024, associativity=4, block_bytes=64, latency=2
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="l2", size_bytes=512 * 1024, associativity=8, block_bytes=128, latency=16
        )
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="l3", size_bytes=8 * 1024 * 1024, associativity=16, block_bytes=128, latency=32
        )
    )
    memory_latency: int = 200
    tlb: TlbConfig = field(default_factory=TlbConfig)
    prefetch: bool = True


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one demand access."""

    latency: int
    l1_hit: bool
    tlb_hit: bool
    way: int


class MemoryHierarchy:
    """L1D + L2 + L3 + memory, with TLB and an L1 stride prefetcher."""

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config or HierarchyConfig()
        self.l1d = Cache(self.config.l1d)
        self.l2 = Cache(self.config.l2)
        self.l3 = Cache(self.config.l3)
        self.tlb = Tlb(self.config.tlb)
        self.prefetcher = StridePrefetcher() if self.config.prefetch else None
        self.demand_accesses = 0
        self.prefetch_fills = 0

    def access(self, pc: int, addr: int, is_store: bool = False) -> AccessResult:
        """Demand load/store; returns latency and placement information."""
        self.demand_accesses += 1
        tlb_hit, tlb_penalty = self.tlb.access(addr)
        latency = self.config.l1d.latency + tlb_penalty
        l1_hit, way = self.l1d.access(addr)
        if not l1_hit:
            latency += self._fill_from_below(addr)
            _, way = self.l1d.lookup(addr, update_lru=False)
            assert way is not None
        if self.prefetcher is not None and not is_store:
            for target in self.prefetcher.observe(pc, addr):
                self.prefetch_fill(target)
        return AccessResult(latency=latency, l1_hit=l1_hit, tlb_hit=tlb_hit, way=way)

    def probe_l1(self, addr: int) -> tuple[bool, int | None]:
        """DLVP speculative probe: L1 residency check, non-allocating
        for the cache but translated through the TLB — probing twice per
        predicted load perturbs TLB contents, the second-order effect
        behind the paper's Figure 9 bzip2/avmshell anomalies."""
        self.tlb.access(addr)
        return self.l1d.probe(addr)

    def prefetch_fill(self, addr: int) -> None:
        """Bring ``addr`` into L1 (checking L1 first, as the paper's
        L1 prefetcher does) without counting as a demand access."""
        hit, _ = self.l1d.probe(addr)
        if hit:
            return
        self._fill_from_below(addr)
        self.prefetch_fills += 1

    def _fill_from_below(self, addr: int) -> int:
        """Walk L2 -> L3 -> memory; fill upward.  Returns added latency."""
        latency = self.config.l2.latency
        l2_hit, _ = self.l2.access(addr)
        if not l2_hit:
            latency += self.config.l3.latency
            l3_hit, _ = self.l3.access(addr)
            if not l3_hit:
                latency += self.config.memory_latency
        self.l1d.fill(addr)
        return latency
