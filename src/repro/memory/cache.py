"""Set-associative cache with true-LRU replacement and way tracking.

DLVP's way-prediction optimization (Section 3.2.2, "Power Optimization")
needs to know *which way* a block occupies and whether that way changes
when a block is evicted and later refilled, so :meth:`Cache.lookup` and
:meth:`Cache.fill` report way numbers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    block_bytes: int
    latency: int

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.block_bytes):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"assoc*block ({self.associativity}*{self.block_bytes})"
            )
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{self.name}: number of sets must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.block_bytes)


@dataclass
class CacheStats:
    """Access counters for one cache level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    probe_hits: int = 0
    probe_misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """One level of set-associative cache.

    Each set is an ordered list of block tags, most-recently-used first.
    Way numbers are stable per block: a block keeps its way until
    evicted.  This matches hardware, where LRU state is metadata and
    blocks do not migrate between ways.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        num_sets = config.num_sets
        self._set_shift = config.block_bytes.bit_length() - 1
        self._set_mask = num_sets - 1
        # Per set: way -> block address (None = invalid), plus LRU order
        # of occupied ways (MRU first), plus a block -> way index so the
        # residency check on the simulator hot path is one dict probe
        # instead of an associativity-wide scan.
        self._ways: list[list[int | None]] = [
            [None] * config.associativity for _ in range(num_sets)
        ]
        self._lru: list[list[int]] = [[] for _ in range(num_sets)]
        self._where: list[dict[int, int]] = [{} for _ in range(num_sets)]

    def _set_index(self, addr: int) -> int:
        return (addr >> self._set_shift) & self._set_mask

    def _block_addr(self, addr: int) -> int:
        return addr >> self._set_shift

    def lookup(self, addr: int, update_lru: bool = True) -> tuple[bool, int | None]:
        """Check residency without allocating.

        Returns:
            ``(hit, way)`` — ``way`` is the occupied way on a hit, else
            ``None``.
        """
        block = addr >> self._set_shift
        set_idx = block & self._set_mask
        way = self._where[set_idx].get(block)
        if way is None:
            return False, None
        if update_lru:
            lru = self._lru[set_idx]
            if lru[0] != way:
                lru.remove(way)
                lru.insert(0, way)
        return True, way

    def access(self, addr: int) -> tuple[bool, int]:
        """Demand access: hit updates LRU; miss fills (evicting LRU).

        Returns ``(hit, way)`` where ``way`` is the block's way after the
        access completes.  The residency check is inlined (rather than
        delegating to :meth:`lookup`) — this is the hot path.
        """
        block = addr >> self._set_shift
        set_idx = block & self._set_mask
        way = self._where[set_idx].get(block)
        if way is not None:
            lru = self._lru[set_idx]
            if lru[0] != way:
                lru.remove(way)
                lru.insert(0, way)
            self.stats.hits += 1
            return True, way
        self.stats.misses += 1
        return False, self.fill(addr)

    def probe(self, addr: int) -> tuple[bool, int | None]:
        """Speculative (DLVP-style) probe: never allocates or reorders LRU."""
        block = addr >> self._set_shift
        way = self._where[block & self._set_mask].get(block)
        if way is not None:
            self.stats.probe_hits += 1
            return True, way
        self.stats.probe_misses += 1
        return False, None

    def fill(self, addr: int) -> int:
        """Insert the block for ``addr``; returns the way it landed in.

        Filling an already-resident block just refreshes its LRU
        position.
        """
        hit, way = self.lookup(addr)
        if hit:
            assert way is not None
            return way
        set_idx = self._set_index(addr)
        block = self._block_addr(addr)
        ways = self._ways[set_idx]
        lru = self._lru[set_idx]
        where = self._where[set_idx]
        for candidate, resident in enumerate(ways):
            if resident is None:
                ways[candidate] = block
                where[block] = candidate
                lru.insert(0, candidate)
                return candidate
        victim = lru.pop()
        evicted = ways[victim]
        assert evicted is not None
        del where[evicted]
        ways[victim] = block
        where[block] = victim
        lru.insert(0, victim)
        self.stats.evictions += 1
        return victim

    def invalidate(self, addr: int) -> bool:
        """Drop the block for ``addr`` if resident; True if it was."""
        set_idx = self._set_index(addr)
        block = self._block_addr(addr)
        way = self._where[set_idx].pop(block, None)
        if way is None:
            return False
        self._ways[set_idx][way] = None
        self._lru[set_idx].remove(way)
        return True

    def resident_blocks(self) -> int:
        """Number of valid blocks (for tests and occupancy reporting)."""
        return sum(
            1 for ways in self._ways for resident in ways if resident is not None
        )
