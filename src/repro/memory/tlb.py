"""Translation lookaside buffer.

Table 4: 512-entry, 8-way set-associative.  The TLB matters to the
reproduction because Figure 9's bzip2/avmshell anomalies are second-order
TLB effects of DLVP probing the data cache twice per predicted load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import Cache, CacheConfig


@dataclass(frozen=True)
class TlbConfig:
    entries: int = 512
    associativity: int = 8
    page_bytes: int = 4096
    miss_penalty: int = 30


class Tlb:
    """Set-associative TLB reusing the cache array machinery."""

    def __init__(self, config: TlbConfig | None = None) -> None:
        self.config = config or TlbConfig()
        cfg = self.config
        self._array = Cache(
            CacheConfig(
                name="tlb",
                size_bytes=cfg.entries * cfg.page_bytes,
                associativity=cfg.associativity,
                block_bytes=cfg.page_bytes,
                latency=0,
            )
        )

    def access(self, addr: int) -> tuple[bool, int]:
        """Translate ``addr``; returns ``(hit, extra_latency)``."""
        hit, _ = self._array.access(addr)
        return hit, 0 if hit else self.config.miss_penalty

    def probe(self, addr: int) -> bool:
        """Non-allocating residency check (used by speculative probes)."""
        hit, _ = self._array.probe(addr)
        return hit

    @property
    def stats(self):
        return self._array.stats
