"""Committed architectural memory contents.

The image stores values at 4-byte-word granularity.  Reads of words that
were never written return a deterministic pseudo-random "background"
value derived from the word index, so that probing a *wrong* address
yields a stable value that essentially never coincides with the correct
one (mirroring real memory holding unrelated data).
"""

from __future__ import annotations

_WORD_BYTES = 4
_WORD_MASK = (1 << 32) - 1
_VALUE_MASK = (1 << 64) - 1


def _background(word_index: int) -> int:
    """Deterministic filler contents for never-written words.

    Real process images are zero-heavy (bss, calloc'd heaps, padding),
    so a quarter of the background words read as zero; the rest get a
    SplitMix64-style mix of their index.  The zero mass matters to the
    Figure 2 reproduction: repeated *values* across distinct addresses
    are what give value predictors their slight repeatability edge.
    """
    z = (word_index * 0x9E3779B97F4A7C15) & _VALUE_MASK
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _VALUE_MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _VALUE_MASK
    z = (z ^ (z >> 31)) & _WORD_MASK
    if z & 0b11 == 0:
        return 0
    return z


class MemoryImage:
    """Sparse word-granular memory with deterministic background."""

    def __init__(self) -> None:
        self._words: dict[int, int] = {}
        # Union view: explicit writes plus memoized _background() values
        # (recomputing the SplitMix64 mix for every probed never-written
        # word was a measurable slice of the simulate() hot path).  One
        # dict probe resolves a word; writes update both maps.  Bounded
        # by the workload's address footprint, not trace length.
        self._all: dict[int, int] = {}

    def write(self, addr: int, size: int, value: int) -> None:
        """Store ``size`` bytes of ``value`` at ``addr``.

        ``size`` must be a positive multiple of 4 and ``addr`` 4-byte
        aligned; the workload generators only emit aligned accesses,
        matching the paper's compiled ARM binaries.
        """
        if size <= 0 or size % _WORD_BYTES:
            raise ValueError(f"size must be a positive multiple of 4, got {size}")
        if addr % _WORD_BYTES:
            raise ValueError(f"address must be 4-byte aligned, got {addr:#x}")
        word = addr // _WORD_BYTES
        words = self._words
        all_words = self._all
        for i in range(size // _WORD_BYTES):
            chunk = (value >> (32 * i)) & _WORD_MASK
            words[word + i] = chunk
            all_words[word + i] = chunk

    def read(self, addr: int, size: int) -> int:
        """Read ``size`` bytes at ``addr`` as a little-endian integer."""
        all_words = self._all
        if size == 4 and not addr & 3:
            # Fast path: single-word read, the overwhelmingly common case.
            word = addr >> 2
            chunk = all_words.get(word)
            if chunk is None:
                chunk = all_words[word] = _background(word)
            return chunk
        if size <= 0 or size % _WORD_BYTES:
            raise ValueError(f"size must be a positive multiple of 4, got {size}")
        if addr % _WORD_BYTES:
            raise ValueError(f"address must be 4-byte aligned, got {addr:#x}")
        word = addr // _WORD_BYTES
        # Accumulate high word to low: each 32-bit chunk shifts the
        # running value once, avoiding a per-word variable shift amount.
        value = 0
        for w in range(word + size // _WORD_BYTES - 1, word - 1, -1):
            chunk = all_words.get(w)
            if chunk is None:
                chunk = all_words[w] = _background(w)
            value = (value << 32) | chunk
        return value

    def is_written(self, addr: int, size: int) -> bool:
        """True if every word in the range has been explicitly written."""
        word = addr // _WORD_BYTES
        return all(word + i in self._words for i in range(max(1, size // _WORD_BYTES)))

    def __len__(self) -> int:
        return len(self._words)
