"""Memory-system substrate: caches, TLB, prefetcher, memory image.

The paper's baseline hierarchy (Table 4): split 64KB 4-way L1 (1/2-cycle
I/D), private 512KB 8-way L2 (16 cycles), shared 8MB 16-way L3 (32
cycles), 200-cycle memory, 64B L1 blocks / 128B L2-L3 blocks, 512-entry
8-way TLB, stride prefetchers.

Two distinct roles are served here:

* *Timing*: :class:`MemoryHierarchy` answers "how many cycles does this
  access take" and tracks way placement so DLVP's way prediction can be
  evaluated.
* *Values*: :class:`MemoryImage` models committed architectural memory
  contents.  DLVP's speculative cache probes read it, so a probe sees
  committed stores but not in-flight ones — the precise hazard the LSCD
  filter exists for.
"""

from repro.memory.memory_image import MemoryImage
from repro.memory.cache import Cache, CacheConfig, CacheStats
from repro.memory.tlb import Tlb, TlbConfig
from repro.memory.prefetcher import StridePrefetcher
from repro.memory.hierarchy import (
    AccessResult,
    HierarchyConfig,
    MemoryHierarchy,
)

__all__ = [
    "MemoryImage",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "Tlb",
    "TlbConfig",
    "StridePrefetcher",
    "AccessResult",
    "HierarchyConfig",
    "MemoryHierarchy",
]
