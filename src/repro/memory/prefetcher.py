"""Per-PC stride prefetcher (the baseline's "stride-based prefetchers")."""

from __future__ import annotations


class _StrideEntry:
    __slots__ = ("last_addr", "stride", "confidence")

    def __init__(self, last_addr: int, stride: int = 0, confidence: int = 0) -> None:
        self.last_addr = last_addr
        self.stride = stride
        self.confidence = confidence


class StridePrefetcher:
    """Classic reference-prediction-table stride prefetcher.

    Trains on the (PC, address) stream of demand loads; once a stride
    repeats ``threshold`` times it emits prefetch addresses
    ``degree`` strides ahead.
    """

    def __init__(self, entries: int = 256, threshold: int = 2, degree: int = 2) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self.threshold = threshold
        self.degree = degree
        self._table: dict[int, _StrideEntry] = {}
        self.trained = 0
        self.issued = 0

    def observe(self, pc: int, addr: int) -> tuple[int, ...] | list[int]:
        """Record a demand access; return prefetch addresses to issue.

        The empty result is a shared tuple, not a fresh list — observe()
        runs once per demand load and almost always returns nothing.
        """
        slot = pc % self.entries
        entry = self._table.get(slot)
        if entry is None:
            self._table[slot] = _StrideEntry(addr)
            return ()
        stride = addr - entry.last_addr
        if stride == entry.stride and stride != 0:
            if entry.confidence < self.threshold:
                entry.confidence += 1
        else:
            entry.stride = stride
            entry.confidence = 0
        entry.last_addr = addr
        if entry.confidence < self.threshold or stride == 0:
            return ()
        self.trained += 1
        prefetches = [addr + stride * (i + 1) for i in range(self.degree)]
        self.issued += len(prefetches)
        return prefetches
