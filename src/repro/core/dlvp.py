"""The DLVP engine: address-predict at fetch, probe, value-predict,
train at execute (Section 3.2.2, Figure 3).

The engine is deliberately decoupled from the timing model: the
pipeline decides *when* things happen (fetch cycle, probe cycle,
execute cycle) and the engine decides *what* happens (predictions,
probes, training, LSCD filtering), so the same engine drives both the
full pipeline simulations and standalone analyses.

Probe semantics: the probe reads the *committed* memory image — the
simulator applies stores to the image only when they commit, so an
in-flight store is invisible to the probe exactly as it is invisible to
the real L1 data array.  A correctly predicted address can therefore
still yield a wrong value; that outcome trains the LSCD.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import Instruction, OpClass, fetch_group_address
from repro.isa.fetch import FETCH_GROUP_BYTES
from repro.memory import MemoryHierarchy, MemoryImage
from repro.predictors.base import AddressPrediction
from repro.predictors.cap import CapPredictor
from repro.predictors.pap import PapPredictor, _SIZE_FROM_CODE
from repro.core.config import DlvpConfig
from repro.core.lscd import LoadStoreConflictDetector
from repro.core.paq import PaqEntry, PredictedAddressQueue

_PROBE_BYTES = 32      # captures LDM footprints up to 4 x 8B / VLD 2 x 16B
_FGA_MASK = ~(FETCH_GROUP_BYTES - 1)      # fetch_group_address(), inlined
_LOAD_INT = int(OpClass.LOAD)

# Flat-protocol handle for an LSCD-blocked load.  Identity-checked in
# flat_execute_train, so one shared tuple serves every blocked load
# (the flat twin of DlvpFetchHandle.lscd_blocked).  The -1 fields keep
# it distinct from every real handle: CPython merges equal constant
# tuples across a module, so a (0, 0, None) literal elsewhere would BE
# this object and turn ordinary unpredicted loads into blocked ones.
_FLAT_BLOCKED = (-1, -1, None)


@dataclass
class DlvpStats:
    """Everything the evaluation reads off a DLVP run."""

    loads_seen: int = 0
    lscd_blocked: int = 0
    address_predictions: int = 0
    address_correct: int = 0
    value_predictions: int = 0
    value_correct: int = 0
    probes: int = 0
    probe_hits: int = 0
    probe_misses: int = 0
    probes_way_predicted: int = 0    # probes that read a single predicted way
    way_mispredictions: int = 0
    prefetches: int = 0
    inflight_conflicts: int = 0      # addr right, value wrong -> LSCD insert
    paq_flushed: int = 0             # PAQ entries cleared by pipeline flushes

    @property
    def coverage(self) -> float:
        """Value-prediction coverage (Figure 6b's definition)."""
        return self.value_predictions / self.loads_seen if self.loads_seen else 0.0

    @property
    def address_accuracy(self) -> float:
        if not self.address_predictions:
            return 1.0
        return self.address_correct / self.address_predictions

    @property
    def value_accuracy(self) -> float:
        if not self.value_predictions:
            return 1.0
        return self.value_correct / self.value_predictions

    @property
    def prefetch_fraction(self) -> float:
        """Fraction of loads for which DLVP generated a prefetch (Fig 5)."""
        return self.prefetches / self.loads_seen if self.loads_seen else 0.0


class DlvpFetchHandle:
    """Per-load state carried from fetch to execute.

    A ``__slots__`` plain class, not a dataclass: one is allocated per
    predicted load on the simulate() hot path.
    """

    __slots__ = (
        "load_pc", "apt_index", "apt_tag", "prediction", "lscd_blocked",
        "probed", "probe_hit", "raw_probe_value", "dropped",
    )

    def __init__(
        self,
        load_pc: int,
        apt_index: int = 0,
        apt_tag: int = 0,
        prediction: AddressPrediction | None = None,
        lscd_blocked: bool = False,
        probed: bool = False,
        probe_hit: bool = False,
        raw_probe_value: int | None = None,
        dropped: bool = False,
    ) -> None:
        self.load_pc = load_pc
        self.apt_index = apt_index
        self.apt_tag = apt_tag
        self.prediction = prediction
        self.lscd_blocked = lscd_blocked
        self.probed = probed
        self.probe_hit = probe_hit
        self.raw_probe_value = raw_probe_value     # _PROBE_BYTES bytes at predicted addr
        self.dropped = dropped


class DlvpOutcome:
    """What the pipeline needs to know after a load executes."""

    __slots__ = ("value_predicted", "value_correct", "address_predicted", "address_correct")

    def __init__(
        self,
        value_predicted: bool,
        value_correct: bool,
        address_predicted: bool,
        address_correct: bool,
    ) -> None:
        self.value_predicted = value_predicted
        self.value_correct = value_correct
        self.address_predicted = address_predicted
        self.address_correct = address_correct


class DlvpEngine:
    """DLVP with a pluggable address predictor (PAP, or CAP for the
    paper's "CAP" value-prediction comparison point)."""

    def __init__(
        self,
        config: DlvpConfig | None = None,
        hierarchy: MemoryHierarchy | None = None,
        image: MemoryImage | None = None,
        address_predictor: PapPredictor | CapPredictor | None = None,
    ) -> None:
        self.config = config if config is not None else DlvpConfig()
        self.hierarchy = hierarchy if hierarchy is not None else MemoryHierarchy()
        # NB: ``image or MemoryImage()`` would be wrong — an empty image
        # is falsy (it has __len__) and must still be shared by reference.
        self.image = image if image is not None else MemoryImage()
        self.predictor = (
            address_predictor
            if address_predictor is not None
            else PapPredictor(self.config.pap)
        )
        self.paq = PredictedAddressQueue(
            entries=self.config.paq_entries, drop_cycles=self.config.paq_drop_cycles
        )
        # lscd_entries == 0 disables the filter entirely (ablation).
        self._lscd_enabled = self.config.lscd_entries > 0
        self.lscd = LoadStoreConflictDetector(max(1, self.config.lscd_entries))
        self.stats = DlvpStats()
        self._tracer = None
        # Resolved once: the isinstance check sat on the per-load path.
        self._is_pap = isinstance(self.predictor, PapPredictor)
        # Fetch-side hot-path aliases consumed by fetch_probe_predict().
        self._way_pred_enabled = self.config.way_prediction
        self._prefetch_on_miss = self.config.prefetch_on_miss
        self._lscd_pcs = self.lscd._pcs
        if self._is_pap:
            p = self.predictor
            self._path_push = p.history._history.push
            self._compute_key = p.compute_key
            self._apt_predict = p.predict
            # APT internals for the inlined key/predict in
            # fetch_probe_predict (created once, mutated in place).
            self._apt_idx_fold = p._idx_fold
            self._apt_tag_fold = p._tag_fold
            self._apt_index_bits = p._index_bits
            self._apt_index_mask = p._index_mask
            self._apt_tag_mask = p._tag_mask
            self._apt_tag_shift = p._tag_shift
            self._apt_entries = p._entries
            self._apt_conf_max = p._conf_max
            self._apt_use_way = p._use_way
        else:
            self._path_push = None
            self._compute_key = None
            self._apt_predict = None
        # Optional per-run batched APT keys (columnar loop only); see
        # bind_key_batch().
        self._kb = None
        self._kb_pos = 0
        self._kb_start = 0
        self._kb_end = 0
        self._kb_idx0: list[int] = []
        self._kb_tag0: list[int] = []
        self._kb_idx1: list[int] = []
        self._kb_tag1: list[int] = []

    @property
    def _uses_pap(self) -> bool:
        return self._is_pap

    def bind_key_batch(self, batch) -> None:
        """Attach (or detach, with None) a per-run APT key batch.

        ``batch`` is a :class:`repro.pipeline.batch.PapKeyBatch` built
        over the exact trace this engine is about to consume.  With a
        batch bound, the flat fetch path reads precomputed (index, tag)
        keys by load ordinal instead of hashing the live folded history —
        and therefore skips the live history pushes entirely; the batch
        already accounts for every dynamic load's path bit, and nothing
        else reads the load-path history at run time.  Blocked and
        beyond-slot-limit loads advance the cursor without reading keys.
        """
        self._kb = batch
        self._kb_pos = self._kb_start = self._kb_end = 0
        self._kb_idx0 = []
        self._kb_tag0 = []
        self._kb_idx1 = []
        self._kb_tag1 = []

    def _kb_refill(self, pos: int) -> None:
        """Pull batch chunks until the cursor position is in range.

        A single next_chunk() is not always enough: blocked and
        unpredicted loads advance the cursor without touching the key
        lists, so ``pos`` may have moved past a whole chunk of loads
        whose keys were never read.
        """
        while pos >= self._kb_end:
            start, idx0, tag0, idx1, tag1 = self._kb.next_chunk()
            self._kb_start = start
            self._kb_end = start + len(idx0)
            self._kb_idx0 = idx0
            self._kb_tag0 = tag0
            self._kb_idx1 = idx1
            self._kb_tag1 = tag1

    def attach_tracer(self, tracer) -> None:
        """Opt into per-event instrumentation (see :mod:`repro.observe`).

        With a tracer attached, the fetch/execute fast paths dispatch to
        the reference implementations (:meth:`on_load_fetch`,
        :meth:`probe`, :meth:`predicted_values`, :meth:`on_load_execute`)
        so every component hook fires; with none attached (the default)
        the inlined fast paths run with zero added work.
        """
        self._tracer = tracer
        self.paq.attach_tracer(tracer)
        self.lscd.attach_tracer(tracer)

    # -- fetch ----------------------------------------------------------

    def on_load_fetch(self, inst: Instruction, fetch_cycle: int, slot: int) -> DlvpFetchHandle:
        """Address-predict one load in the first fetch stage.

        Args:
            inst: The dynamic load (the model peeks at its PC; its
                address/values are only consulted at execute).
            fetch_cycle: Cycle the fetch group entered the pipeline.
            slot: Which predicted load of the fetch group this is (0 or
                1); PAP keys the APT with FGA + slot, the paper's
                "fetch group PC and fetch group PC plus one".
        """
        pc = inst.pc
        predictor = self.predictor
        is_pap = self._is_pap
        handle = DlvpFetchHandle(pc)

        if self._lscd_enabled and self.lscd.blocks(pc):
            handle.lscd_blocked = True
            if is_pap:
                predictor.history.push_load(pc)
            return handle

        if is_pap:
            # "Fetch group PC and fetch group PC plus one" (Section
            # 3.1.1): the slot number must land in bits the key hash
            # actually uses, so it is placed at the instruction-index
            # granularity (bit 2).
            key_pc = fetch_group_address(pc) | (slot << 2)
            index, tag = predictor.compute_key(key_pc)
            handle.apt_index, handle.apt_tag = index, tag
            prediction = handle.prediction = predictor.predict(index, tag)
            predictor.history.push_load(pc)
        else:
            prediction = handle.prediction = predictor.predict_pc(pc)

        if prediction is not None:
            accepted = self.paq.push(
                PaqEntry(prediction.addr, prediction.size, prediction.way, fetch_cycle)
            )
            if not accepted:
                handle.prediction = None       # PAQ full: no value prediction
        return handle

    def on_load_fetch_unpredicted(self, inst: Instruction) -> None:
        """A load beyond the per-group prediction limit (Section 3.1.1).

        Fewer than 2% of fetch groups carry more than two loads; the
        extras still walk the load path (history update) and count
        toward coverage denominators, but are neither predicted nor
        trained.
        """
        self.stats.loads_seen += 1
        self._push_history(inst.pc)

    def _push_history(self, load_pc: int) -> None:
        if self._is_pap:
            self.predictor.history.push_load(load_pc)

    # -- probe ------------------------------------------------------------

    def probe(self, handle: DlvpFetchHandle, probe_cycle: int) -> None:
        """Speculatively probe the L1 with the queued predicted address.

        Fills ``handle.raw_probe_value`` on an L1 hit; launches a
        prefetch on a miss when enabled.  Way prediction: with a stale
        or absent way, the one-way probe misses even though the block is
        resident (counted, and the paper reports it almost never
        happens).
        """
        if handle.prediction is None or handle.lscd_blocked:
            return
        entry = self.paq.service(probe_cycle)
        if entry is None:
            handle.dropped = True
            handle.prediction = None
            return
        handle.probed = True
        stats = self.stats
        stats.probes += 1
        way_predicted = self.config.way_prediction and entry.way is not None
        if way_predicted:
            # A one-way probe: reads a single predicted data way instead
            # of the full set (the paper's ~1/4-energy probe).
            stats.probes_way_predicted += 1
        hit, actual_way = self.hierarchy.probe_l1(entry.addr)
        if hit and way_predicted and entry.way != actual_way:
            stats.way_mispredictions += 1
            hit = False
        if hit:
            stats.probe_hits += 1
            handle.probe_hit = True
            handle.raw_probe_value = self.image.read(entry.addr, _PROBE_BYTES)
        else:
            stats.probe_misses += 1
            if self.config.prefetch_on_miss:
                self.hierarchy.prefetch_fill(entry.addr)
                stats.prefetches += 1
        if self._tracer is not None:
            self._tracer.on_probe(
                probe_cycle,
                handle.load_pc,
                entry.addr,
                hit,
                way_predicted,
                way_predicted and not hit and actual_way is not None,
            )

    def fetch_probe_predict(
        self, inst: Instruction, fetch_cycle: int, slot: int, probe_cycle: int
    ) -> tuple[DlvpFetchHandle, tuple[int, ...] | None]:
        """Fetch-side fast path: on_load_fetch + probe + predicted_values.

        The fetch, PAQ push/service, probe and value-extraction bodies
        are all inlined here (one method dispatch instead of several per
        load on the simulate() hot path); behaviourally identical to
        calling :meth:`on_load_fetch`, :meth:`probe` and
        :meth:`predicted_values` in sequence — those remain the
        reference implementations.
        """
        if self._tracer is not None:
            # Traced runs take the reference path so every component
            # hook (LSCD, PAQ, probe) fires; the `is None` check is the
            # only cost the disabled case pays.
            handle = self.on_load_fetch(inst, fetch_cycle, slot)
            self.probe(handle, probe_cycle)
            return handle, self.predicted_values(handle, inst)
        pc = inst.pc
        handle = DlvpFetchHandle(pc)
        is_pap = self._is_pap

        if self._lscd_enabled and pc in self._lscd_pcs:    # lscd.blocks(), inlined
            self.lscd.filtered += 1
            handle.lscd_blocked = True
            if is_pap:
                self._path_push((pc >> 2) & 1)    # path_history_bit(pc)
            return handle, None

        if is_pap:
            # PapPredictor.compute_key + .predict, inlined.
            key_pc = (pc & _FGA_MASK) | (slot << 2)
            word = key_pc >> 2
            index_bits = self._apt_index_bits
            index = (
                word ^ (word >> index_bits) ^ (word >> (2 * index_bits))
                ^ self._apt_idx_fold.value
            ) & self._apt_index_mask
            tag = (
                word ^ (key_pc >> self._apt_tag_shift) ^ self._apt_tag_fold.value
            ) & self._apt_tag_mask
            handle.apt_index = index
            handle.apt_tag = tag
            entry = self._apt_entries[index]
            if entry is None or entry.tag != tag or entry.confidence < self._apt_conf_max:
                prediction = None
            else:
                prediction = AddressPrediction(
                    entry.addr,
                    _SIZE_FROM_CODE[entry.size_code],
                    entry.way if self._apt_use_way else None,
                    index,
                    tag,
                )
            handle.prediction = prediction
            self._path_push((pc >> 2) & 1)        # path_history_bit(pc)
        else:
            prediction = handle.prediction = self.predictor.predict_pc(pc)

        if prediction is None:
            return handle, None

        # PAQ push (inlined PredictedAddressQueue.push).
        paq = self.paq
        queue = paq._queue
        if len(queue) >= paq.capacity:
            paq.rejected_full += 1
            handle.prediction = None
            return handle, None
        queue.append(
            PaqEntry(
                prediction.addr, prediction.size, prediction.way, fetch_cycle,
                bypass=not queue,
            )
        )
        paq.enqueued += 1

        # PAQ drain (inlined PredictedAddressQueue.service).
        drop_cycles = paq.drop_cycles
        entry = None
        while queue:
            candidate = queue.popleft()
            if probe_cycle - candidate.allocated_cycle > drop_cycles:
                paq.dropped += 1
                continue
            paq.serviced += 1
            if candidate.bypass:
                paq.bypassed += 1
            entry = candidate
            break
        if entry is None:
            handle.dropped = True
            handle.prediction = None
            return handle, None
        handle.probed = True
        stats = self.stats
        stats.probes += 1
        way_predicted = self._way_pred_enabled and entry.way is not None
        if way_predicted:
            stats.probes_way_predicted += 1
        hit, actual_way = self.hierarchy.probe_l1(entry.addr)
        if hit and way_predicted and entry.way != actual_way:
            stats.way_mispredictions += 1
            hit = False
        if hit:
            stats.probe_hits += 1
            handle.probe_hit = True
            raw = handle.raw_probe_value = self.image.read(entry.addr, _PROBE_BYTES)
            size = inst.mem_size
            if len(inst.dests) == 1 and size <= _PROBE_BYTES:
                return handle, (raw & ((1 << (8 * size)) - 1),)
            return handle, self.predicted_values(handle, inst)
        stats.probe_misses += 1
        if self._prefetch_on_miss:
            self.hierarchy.prefetch_fill(entry.addr)
            stats.prefetches += 1
        return handle, None

    # -- flat fetch/execute (columnar simulate() path) ----------------------
    #
    # Scalar twins of fetch_probe_predict / execute_train /
    # on_load_fetch_unpredicted: no Instruction view, no DlvpFetchHandle
    # allocation — the handle is a plain ``(apt_index, apt_tag,
    # predicted_addr)`` tuple (``predicted_addr`` None when the load was
    # not address-predicted or its PAQ entry was rejected/dropped), or
    # the shared _FLAT_BLOCKED sentinel.  The columnar loop never runs
    # with a tracer attached, so these carry no reference-path dispatch.
    # Outcomes are pinned to the object path by the golden suite.

    def flat_load_unpredicted(self, pc: int) -> None:
        """Flat twin of :meth:`on_load_fetch_unpredicted`."""
        self.stats.loads_seen += 1
        if self._is_pap:
            if self._kb is not None:
                self._kb_pos += 1
            else:
                self._path_push((pc >> 2) & 1)    # path_history_bit(pc)

    def flat_fetch_probe_predict(
        self,
        pc: int,
        mem_size: int,
        ndests: int,
        fetch_cycle: int,
        slot: int,
        probe_cycle: int,
    ) -> tuple[tuple, tuple[int, ...] | None]:
        """Flat twin of :meth:`fetch_probe_predict`; returns
        ``(handle_tuple, predicted_values | None)``."""
        if self._lscd_enabled and pc in self._lscd_pcs:    # lscd.blocks(), inlined
            self.lscd.filtered += 1
            if self._is_pap:
                if self._kb is not None:
                    self._kb_pos += 1
                else:
                    self._path_push((pc >> 2) & 1)
            return _FLAT_BLOCKED, None

        if self._is_pap:
            if self._kb is not None:
                pos = self._kb_pos
                self._kb_pos = pos + 1
                if pos >= self._kb_end:
                    self._kb_refill(pos)
                j = pos - self._kb_start
                if slot:
                    index = self._kb_idx1[j]
                    tag = self._kb_tag1[j]
                else:
                    index = self._kb_idx0[j]
                    tag = self._kb_tag0[j]
            else:
                # PapPredictor.compute_key, inlined (live folded history).
                key_pc = (pc & _FGA_MASK) | (slot << 2)
                word = key_pc >> 2
                index_bits = self._apt_index_bits
                index = (
                    word ^ (word >> index_bits) ^ (word >> (2 * index_bits))
                    ^ self._apt_idx_fold.value
                ) & self._apt_index_mask
                tag = (
                    word ^ (key_pc >> self._apt_tag_shift) ^ self._apt_tag_fold.value
                ) & self._apt_tag_mask
                self._path_push((pc >> 2) & 1)    # path_history_bit(pc)
            entry = self._apt_entries[index]
            if entry is None or entry.tag != tag or entry.confidence < self._apt_conf_max:
                return (index, tag, None), None
            pred_addr = entry.addr
            pred_size = _SIZE_FROM_CODE[entry.size_code]
            pred_way = entry.way if self._apt_use_way else None
        else:
            index = tag = 0
            prediction = self.predictor.predict_pc(pc)
            if prediction is None:
                return (0, 0, None), None
            pred_addr = prediction.addr
            pred_size = prediction.size
            pred_way = prediction.way

        # PAQ push (inlined PredictedAddressQueue.push).
        paq = self.paq
        queue = paq._queue
        if len(queue) >= paq.capacity:
            paq.rejected_full += 1
            return (index, tag, None), None
        queue.append(
            PaqEntry(pred_addr, pred_size, pred_way, fetch_cycle, bypass=not queue)
        )
        paq.enqueued += 1

        # PAQ drain (inlined PredictedAddressQueue.service).
        drop_cycles = paq.drop_cycles
        entry = None
        while queue:
            candidate = queue.popleft()
            if probe_cycle - candidate.allocated_cycle > drop_cycles:
                paq.dropped += 1
                continue
            paq.serviced += 1
            if candidate.bypass:
                paq.bypassed += 1
            entry = candidate
            break
        if entry is None:
            return (index, tag, None), None

        handle = (index, tag, pred_addr)
        stats = self.stats
        stats.probes += 1
        way_predicted = self._way_pred_enabled and entry.way is not None
        if way_predicted:
            stats.probes_way_predicted += 1
        hit, actual_way = self.hierarchy.probe_l1(entry.addr)
        if hit and way_predicted and entry.way != actual_way:
            stats.way_mispredictions += 1
            hit = False
        if hit:
            stats.probe_hits += 1
            if ndests == 1:
                if mem_size > _PROBE_BYTES:
                    return handle, None
                # Word-granular footprints read exactly what the load
                # covers: read() is pure, so reading mem_size bytes is
                # bit-identical to masking a _PROBE_BYTES read down —
                # and hits the single-word fast path for 4-byte loads.
                if mem_size and not mem_size & 3:
                    return handle, (self.image.read(entry.addr, mem_size),)
                raw = self.image.read(entry.addr, _PROBE_BYTES)
                return handle, (raw & ((1 << (8 * mem_size)) - 1),)
            raw = self.image.read(entry.addr, _PROBE_BYTES)
            # predicted_values(), inlined for the multi-destination case.
            if mem_size * (ndests or 1) > _PROBE_BYTES:
                return handle, None
            mask = (1 << (8 * mem_size)) - 1
            return handle, tuple(
                (raw >> (8 * mem_size * k)) & mask for k in range(ndests)
            )
        stats.probe_misses += 1
        if self._prefetch_on_miss:
            self.hierarchy.prefetch_fill(entry.addr)
            stats.prefetches += 1
        return handle, None

    def flat_execute_train(
        self,
        handle: tuple,
        pc: int,
        mem_addr: int,
        mem_size: int,
        values: tuple[int, ...],
        actual_way: int | None,
        value_predicted: bool,
        predicted: tuple[int, ...] | None,
    ) -> tuple[bool, bool]:
        """Flat twin of :meth:`execute_train`."""
        stats = self.stats
        stats.loads_seen += 1

        if handle is _FLAT_BLOCKED:
            stats.lscd_blocked += 1
            return False, False

        pred_addr = handle[2]
        addr_correct = pred_addr is not None and pred_addr == mem_addr
        if pred_addr is not None:
            stats.address_predictions += 1
            if addr_correct:
                stats.address_correct += 1

        if self._is_pap:
            self.predictor.train(handle[0], handle[1], mem_addr, mem_size, actual_way)
        else:
            self.predictor.train(pc, mem_addr)

        value_correct = False
        if value_predicted:
            mask = (1 << (8 * mem_size)) - 1
            if len(values) == 1:
                value_correct = predicted == (values[0] & mask,)
            else:
                value_correct = predicted == tuple(v & mask for v in values)
            stats.value_predictions += 1
            if value_correct:
                stats.value_correct += 1
            elif addr_correct:
                stats.inflight_conflicts += 1
                if self._lscd_enabled:
                    self.lscd.insert(pc)

        return value_predicted, value_correct

    # -- fused columnar fast path ----------------------------------------

    def make_flat_fetch(self):
        """Build the fused per-load fetch closure for the columnar loop.

        A drop-in for ``DlvpScheme.flat_fetch`` (same signature and
        return contract): the scheme wrapper, flat_fetch_probe_predict,
        the PAQ push/drain and ``hierarchy.probe_l1`` collapsed into a
        single call with every hot attribute captured as a closure cell
        — per-load attribute chasing was the dominant scheme-side cost.
        Must be rebuilt per run (``flat_prepare``) because the closure
        owns the batched-key cursor.  Outcome equivalence with the
        layered methods is pinned by the golden suite.
        """
        lscd_enabled = self._lscd_enabled
        lscd_pcs = self._lscd_pcs
        lscd = self.lscd
        stats = self.stats
        is_pap = self._is_pap
        path_push = self._path_push
        kb = self._kb
        kb_pos = 0
        kb_end = 0
        kb_start = 0
        kb_idx0: list = []
        kb_tag0: list = []
        kb_idx1: list = []
        kb_tag1: list = []
        if is_pap:
            apt_idx_fold = self._apt_idx_fold
            apt_tag_fold = self._apt_tag_fold
            index_bits = self._apt_index_bits
            index_bits2 = 2 * self._apt_index_bits
            index_mask = self._apt_index_mask
            tag_mask = self._apt_tag_mask
            tag_shift = self._apt_tag_shift
            apt_entries = self._apt_entries
            conf_max = self._apt_conf_max
            use_way = self._apt_use_way
            predict_pc = None
        else:
            predict_pc = self.predictor.predict_pc
        paq = self.paq
        queue = paq._queue
        paq_capacity = paq.capacity
        drop_cycles = paq.drop_cycles
        way_pred_enabled = self._way_pred_enabled
        prefetch_on_miss = self._prefetch_on_miss
        hierarchy = self.hierarchy
        tlb_shift = hierarchy._tlb_shift
        tlb_mask = hierarchy._tlb_mask
        tlb_where = hierarchy._tlb_where
        tlb_lru = hierarchy._tlb_lru
        tlb_stats = hierarchy._tlb_stats
        tlb_fill = hierarchy._tlb_array.fill
        l1_shift = hierarchy._l1_shift
        l1_mask = hierarchy._l1_mask
        l1_where = hierarchy._l1_where
        l1_stats = hierarchy._l1_stats
        prefetch_fill = hierarchy.prefetch_fill
        image_read = self.image.read
        size_from_code = _SIZE_FROM_CODE

        def flat_fetch(
            pc, op, mem_addr, mem_size, flags, ndests, values,
            fetch_cycle, load_slot, probe_cycle,
        ):
            nonlocal kb_pos, kb_start, kb_end, kb_idx0, kb_tag0, kb_idx1, kb_tag1
            if op != _LOAD_INT:
                return None
            if load_slot is None:
                # on_load_fetch_unpredicted: count, advance the history.
                stats.loads_seen += 1
                if is_pap:
                    if kb is not None:
                        kb_pos += 1
                    else:
                        path_push((pc >> 2) & 1)
                return None
            if lscd_enabled and pc in lscd_pcs:       # lscd.blocks(), inlined
                lscd.filtered += 1
                if is_pap:
                    if kb is not None:
                        kb_pos += 1
                    else:
                        path_push((pc >> 2) & 1)
                return (None, False, _FLAT_BLOCKED, ndests)

            if is_pap:
                if kb is not None:
                    pos = kb_pos
                    kb_pos = pos + 1
                    if pos >= kb_end:
                        while pos >= kb_end:
                            kb_start, kb_idx0, kb_tag0, kb_idx1, kb_tag1 = (
                                kb.next_chunk()
                            )
                            kb_end = kb_start + len(kb_idx0)
                    j = pos - kb_start
                    if load_slot:
                        index = kb_idx1[j]
                        tag = kb_tag1[j]
                    else:
                        index = kb_idx0[j]
                        tag = kb_tag0[j]
                else:
                    # PapPredictor.compute_key, inlined (live folds).
                    key_pc = (pc & _FGA_MASK) | (load_slot << 2)
                    word = key_pc >> 2
                    index = (
                        word ^ (word >> index_bits) ^ (word >> index_bits2)
                        ^ apt_idx_fold.value
                    ) & index_mask
                    tag = (
                        word ^ (key_pc >> tag_shift) ^ apt_tag_fold.value
                    ) & tag_mask
                    path_push((pc >> 2) & 1)
                entry = apt_entries[index]
                if entry is None or entry.tag != tag or entry.confidence < conf_max:
                    return (None, False, (index, tag, None), ndests)
                pred_addr = entry.addr
                pred_way = entry.way if use_way else None
            else:
                index = tag = 0
                prediction = predict_pc(pc)
                if prediction is None:
                    return (None, False, (0, 0, None), ndests)
                pred_addr = prediction.addr
                pred_way = prediction.way

            # PAQ push + drain.  The queue is almost always empty, in
            # which case the pushed entry is immediately drained again
            # (bypass) — no PaqEntry, no deque traffic.
            if not queue and paq_capacity:
                paq.enqueued += 1
                if probe_cycle - fetch_cycle > drop_cycles:
                    paq.dropped += 1
                    return (None, False, (index, tag, None), ndests)
                paq.serviced += 1
                paq.bypassed += 1
                entry_addr = pred_addr
                entry_way = pred_way
            else:
                if len(queue) >= paq_capacity:
                    paq.rejected_full += 1
                    return (None, False, (index, tag, None), ndests)
                pred_size = (
                    size_from_code[entry.size_code] if is_pap else prediction.size
                )
                queue.append(
                    PaqEntry(pred_addr, pred_size, pred_way, fetch_cycle,
                             bypass=not queue)
                )
                paq.enqueued += 1
                drained = None
                while queue:
                    candidate = queue.popleft()
                    if probe_cycle - candidate.allocated_cycle > drop_cycles:
                        paq.dropped += 1
                        continue
                    paq.serviced += 1
                    if candidate.bypass:
                        paq.bypassed += 1
                    drained = candidate
                    break
                if drained is None:
                    return (None, False, (index, tag, None), ndests)
                entry_addr = drained.addr
                entry_way = drained.way

            handle = (index, tag, pred_addr)
            stats.probes += 1
            way_predicted = way_pred_enabled and entry_way is not None
            if way_predicted:
                stats.probes_way_predicted += 1
            # hierarchy.probe_l1, inlined: TLB translate, L1 residency.
            block = entry_addr >> tlb_shift
            set_idx = block & tlb_mask
            way = tlb_where[set_idx].get(block)
            if way is not None:
                lru = tlb_lru[set_idx]
                if lru[0] != way:
                    lru.remove(way)
                    lru.insert(0, way)
                tlb_stats.hits += 1
            else:
                tlb_stats.misses += 1
                tlb_fill(entry_addr)
            block = entry_addr >> l1_shift
            actual_way = l1_where[block & l1_mask].get(block)
            if actual_way is not None:
                l1_stats.probe_hits += 1
                hit = True
                if way_predicted and entry_way != actual_way:
                    stats.way_mispredictions += 1
                    hit = False
            else:
                l1_stats.probe_misses += 1
                hit = False
            if hit:
                stats.probe_hits += 1
                mask = (1 << (8 * mem_size)) - 1
                if ndests == 1:
                    if mem_size > _PROBE_BYTES:
                        return (None, False, handle, ndests)
                    if mem_size and not mem_size & 3:
                        v = image_read(entry_addr, mem_size)
                    else:
                        v = image_read(entry_addr, _PROBE_BYTES) & mask
                    # _masked_values compare, flattened (scheme wrapper).
                    if len(values) == 1:
                        correct = v == (values[0] & mask)
                    else:
                        correct = (v,) == tuple(x & mask for x in values)
                    return ((v,), correct, handle, ndests)
                if mem_size * (ndests or 1) > _PROBE_BYTES:
                    return (None, False, handle, ndests)
                raw = image_read(entry_addr, _PROBE_BYTES)
                pred = tuple(
                    (raw >> (8 * mem_size * k)) & mask for k in range(ndests)
                )
                correct = pred == tuple(x & mask for x in values)
                return (pred, correct, handle, ndests)
            stats.probe_misses += 1
            if prefetch_on_miss:
                prefetch_fill(entry_addr)
                stats.prefetches += 1
            return (None, False, handle, ndests)

        return flat_fetch

    def make_flat_execute(self):
        """Fused execute-side twin of :meth:`make_flat_fetch`.

        Drop-in for ``DlvpScheme.flat_execute``: the scheme wrapper and
        :meth:`flat_execute_train` as one closure.
        """
        stats = self.stats
        is_pap = self._is_pap
        train = self.predictor.train
        lscd_enabled = self._lscd_enabled
        lscd_insert = self.lscd.insert

        def flat_execute(
            pc, op, mem_addr, mem_size, flags, ndests, values,
            handle, predicted, way, value_predicted,
        ):
            stats.loads_seen += 1
            if handle is _FLAT_BLOCKED:
                stats.lscd_blocked += 1
                return False, False

            pred_addr = handle[2]
            if pred_addr is not None:
                addr_correct = pred_addr == mem_addr
                stats.address_predictions += 1
                if addr_correct:
                    stats.address_correct += 1
            else:
                addr_correct = False

            if is_pap:
                train(handle[0], handle[1], mem_addr, mem_size, way)
            else:
                train(pc, mem_addr)

            value_correct = False
            if value_predicted:
                mask = (1 << (8 * mem_size)) - 1
                if len(values) == 1:
                    value_correct = predicted == (values[0] & mask,)
                else:
                    value_correct = predicted == tuple(v & mask for v in values)
                stats.value_predictions += 1
                if value_correct:
                    stats.value_correct += 1
                elif addr_correct:
                    stats.inflight_conflicts += 1
                    if lscd_enabled:
                        lscd_insert(pc)

            return value_predicted, value_correct

        return flat_execute

    # -- value extraction ---------------------------------------------------

    def predicted_values(self, handle: DlvpFetchHandle, inst: Instruction) -> tuple[int, ...] | None:
        """Assemble per-destination values from the probed bytes.

        Returns None when no usable probe data exists or the load's
        footprint exceeds what the probe captured.
        """
        raw = handle.raw_probe_value
        if raw is None:
            return None
        size = inst.mem_size
        ndests = len(inst.dests)
        if ndests == 1:
            # Single-destination fast path (the overwhelming majority).
            if size > _PROBE_BYTES:
                return None
            return (raw & ((1 << (8 * size)) - 1),)
        if size * max(1, ndests) > _PROBE_BYTES:
            return None
        mask = (1 << (8 * size)) - 1
        return tuple((raw >> (8 * size * k)) & mask for k in range(ndests))

    # -- execute --------------------------------------------------------

    def on_load_execute(
        self,
        handle: DlvpFetchHandle,
        inst: Instruction,
        actual_way: int | None,
        value_predicted: bool,
        predicted: tuple[int, ...] | None,
    ) -> DlvpOutcome:
        """Validate the prediction and train the predictor (Section 3.1.2).

        Args:
            handle: The fetch-time handle.
            inst: The executing load, with its computed address/values.
            actual_way: L1 way the block occupies after the demand
                access (trains way prediction).
            value_predicted: Whether the pipeline actually consumed a
                value prediction (it may have declined, e.g. PVT full).
            predicted: The values that were predicted, if any.
        """
        mem_addr = inst.mem_addr
        assert mem_addr is not None
        stats = self.stats
        stats.loads_seen += 1

        if handle.lscd_blocked:
            stats.lscd_blocked += 1
            return DlvpOutcome(False, False, False, False)

        prediction = handle.prediction
        addr_predicted = prediction is not None
        addr_correct = addr_predicted and prediction.addr == mem_addr
        if addr_predicted:
            stats.address_predictions += 1
            if addr_correct:
                stats.address_correct += 1

        # Train the address predictor with the executed load.
        if self._is_pap:
            train_outcome = self.predictor.train(
                handle.apt_index,
                handle.apt_tag,
                mem_addr,
                inst.mem_size,
                actual_way,
            )
            if self._tracer is not None:
                self._tracer.on_apt_train(
                    inst.pc, handle.apt_index, handle.apt_tag, train_outcome
                )
        else:
            self.predictor.train(inst.pc, mem_addr)

        value_correct = False
        if value_predicted:
            assert predicted is not None
            mask = (1 << (8 * inst.mem_size)) - 1
            masked_actual = tuple(v & mask for v in inst.values)
            value_correct = predicted == masked_actual
            stats.value_predictions += 1
            if value_correct:
                stats.value_correct += 1
            elif addr_correct:
                # An in-flight store changed the location between the
                # probe and execution: exactly what LSCD filters.
                stats.inflight_conflicts += 1
                if self._lscd_enabled:
                    self.lscd.insert(inst.pc)

        return DlvpOutcome(value_predicted, value_correct, addr_predicted, addr_correct)

    def execute_train(
        self,
        handle: DlvpFetchHandle,
        inst: Instruction,
        actual_way: int | None,
        value_predicted: bool,
        predicted: tuple[int, ...] | None,
    ) -> tuple[bool, bool]:
        """Execute-side fast path: :meth:`on_load_execute` without the
        :class:`DlvpOutcome` allocation.

        Returns ``(value_predicted, value_correct)`` — the two fields
        the timing model consumes per load; behaviourally identical to
        :meth:`on_load_execute`, which remains the reference
        implementation (and the entry point for callers that want the
        address-prediction outcome too).
        """
        if self._tracer is not None:
            outcome = self.on_load_execute(
                handle, inst, actual_way, value_predicted, predicted
            )
            return outcome.value_predicted, outcome.value_correct
        mem_addr = inst.mem_addr
        stats = self.stats
        stats.loads_seen += 1

        if handle.lscd_blocked:
            stats.lscd_blocked += 1
            return False, False

        prediction = handle.prediction
        addr_correct = prediction is not None and prediction.addr == mem_addr
        if prediction is not None:
            stats.address_predictions += 1
            if addr_correct:
                stats.address_correct += 1

        if self._is_pap:
            self.predictor.train(
                handle.apt_index, handle.apt_tag, mem_addr, inst.mem_size, actual_way
            )
        else:
            self.predictor.train(inst.pc, mem_addr)

        value_correct = False
        if value_predicted:
            mask = (1 << (8 * inst.mem_size)) - 1
            values = inst.values
            if len(values) == 1:
                value_correct = predicted == (values[0] & mask,)
            else:
                value_correct = predicted == tuple(v & mask for v in values)
            stats.value_predictions += 1
            if value_correct:
                stats.value_correct += 1
            elif addr_correct:
                stats.inflight_conflicts += 1
                if self._lscd_enabled:
                    self.lscd.insert(inst.pc)

        return value_predicted, value_correct
