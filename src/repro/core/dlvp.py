"""The DLVP engine: address-predict at fetch, probe, value-predict,
train at execute (Section 3.2.2, Figure 3).

The engine is deliberately decoupled from the timing model: the
pipeline decides *when* things happen (fetch cycle, probe cycle,
execute cycle) and the engine decides *what* happens (predictions,
probes, training, LSCD filtering), so the same engine drives both the
full pipeline simulations and standalone analyses.

Probe semantics: the probe reads the *committed* memory image — the
simulator applies stores to the image only when they commit, so an
in-flight store is invisible to the probe exactly as it is invisible to
the real L1 data array.  A correctly predicted address can therefore
still yield a wrong value; that outcome trains the LSCD.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import Instruction, fetch_group_address
from repro.memory import MemoryHierarchy, MemoryImage
from repro.predictors.base import AddressPrediction
from repro.predictors.cap import CapPredictor
from repro.predictors.pap import PapPredictor
from repro.core.config import DlvpConfig
from repro.core.lscd import LoadStoreConflictDetector
from repro.core.paq import PaqEntry, PredictedAddressQueue

_PROBE_BYTES = 32      # captures LDM footprints up to 4 x 8B / VLD 2 x 16B


@dataclass
class DlvpStats:
    """Everything the evaluation reads off a DLVP run."""

    loads_seen: int = 0
    lscd_blocked: int = 0
    address_predictions: int = 0
    address_correct: int = 0
    value_predictions: int = 0
    value_correct: int = 0
    probes: int = 0
    probe_hits: int = 0
    probe_misses: int = 0
    way_mispredictions: int = 0
    prefetches: int = 0
    inflight_conflicts: int = 0      # addr right, value wrong -> LSCD insert

    @property
    def coverage(self) -> float:
        """Value-prediction coverage (Figure 6b's definition)."""
        return self.value_predictions / self.loads_seen if self.loads_seen else 0.0

    @property
    def address_accuracy(self) -> float:
        if not self.address_predictions:
            return 1.0
        return self.address_correct / self.address_predictions

    @property
    def value_accuracy(self) -> float:
        if not self.value_predictions:
            return 1.0
        return self.value_correct / self.value_predictions

    @property
    def prefetch_fraction(self) -> float:
        """Fraction of loads for which DLVP generated a prefetch (Fig 5)."""
        return self.prefetches / self.loads_seen if self.loads_seen else 0.0


@dataclass
class DlvpFetchHandle:
    """Per-load state carried from fetch to execute."""

    load_pc: int
    apt_index: int = 0
    apt_tag: int = 0
    prediction: AddressPrediction | None = None
    lscd_blocked: bool = False
    probed: bool = False
    probe_hit: bool = False
    raw_probe_value: int | None = None     # _PROBE_BYTES bytes at predicted addr
    dropped: bool = False


@dataclass
class DlvpOutcome:
    """What the pipeline needs to know after a load executes."""

    value_predicted: bool
    value_correct: bool
    address_predicted: bool
    address_correct: bool


class DlvpEngine:
    """DLVP with a pluggable address predictor (PAP, or CAP for the
    paper's "CAP" value-prediction comparison point)."""

    def __init__(
        self,
        config: DlvpConfig | None = None,
        hierarchy: MemoryHierarchy | None = None,
        image: MemoryImage | None = None,
        address_predictor: PapPredictor | CapPredictor | None = None,
    ) -> None:
        self.config = config if config is not None else DlvpConfig()
        self.hierarchy = hierarchy if hierarchy is not None else MemoryHierarchy()
        # NB: ``image or MemoryImage()`` would be wrong — an empty image
        # is falsy (it has __len__) and must still be shared by reference.
        self.image = image if image is not None else MemoryImage()
        self.predictor = (
            address_predictor
            if address_predictor is not None
            else PapPredictor(self.config.pap)
        )
        self.paq = PredictedAddressQueue(
            entries=self.config.paq_entries, drop_cycles=self.config.paq_drop_cycles
        )
        # lscd_entries == 0 disables the filter entirely (ablation).
        self._lscd_enabled = self.config.lscd_entries > 0
        self.lscd = LoadStoreConflictDetector(max(1, self.config.lscd_entries))
        self.stats = DlvpStats()

    @property
    def _uses_pap(self) -> bool:
        return isinstance(self.predictor, PapPredictor)

    # -- fetch ----------------------------------------------------------

    def on_load_fetch(self, inst: Instruction, fetch_cycle: int, slot: int) -> DlvpFetchHandle:
        """Address-predict one load in the first fetch stage.

        Args:
            inst: The dynamic load (the model peeks at its PC; its
                address/values are only consulted at execute).
            fetch_cycle: Cycle the fetch group entered the pipeline.
            slot: Which predicted load of the fetch group this is (0 or
                1); PAP keys the APT with FGA + slot, the paper's
                "fetch group PC and fetch group PC plus one".
        """
        handle = DlvpFetchHandle(load_pc=inst.pc)

        if self._lscd_enabled and self.lscd.blocks(inst.pc):
            handle.lscd_blocked = True
            self._push_history(inst.pc)
            return handle

        if self._uses_pap:
            # "Fetch group PC and fetch group PC plus one" (Section
            # 3.1.1): the slot number must land in bits the key hash
            # actually uses, so it is placed at the instruction-index
            # granularity (bit 2).
            key_pc = fetch_group_address(inst.pc) | (slot << 2)
            index, tag = self.predictor.compute_key(key_pc)
            handle.apt_index, handle.apt_tag = index, tag
            handle.prediction = self.predictor.predict(index, tag)
        else:
            handle.prediction = self.predictor.predict_pc(inst.pc)

        self._push_history(inst.pc)

        if handle.prediction is not None:
            accepted = self.paq.push(
                PaqEntry(
                    addr=handle.prediction.addr,
                    size=handle.prediction.size,
                    way=handle.prediction.way,
                    allocated_cycle=fetch_cycle,
                )
            )
            if not accepted:
                handle.prediction = None       # PAQ full: no value prediction
        return handle

    def on_load_fetch_unpredicted(self, inst: Instruction) -> None:
        """A load beyond the per-group prediction limit (Section 3.1.1).

        Fewer than 2% of fetch groups carry more than two loads; the
        extras still walk the load path (history update) and count
        toward coverage denominators, but are neither predicted nor
        trained.
        """
        self.stats.loads_seen += 1
        self._push_history(inst.pc)

    def _push_history(self, load_pc: int) -> None:
        if self._uses_pap:
            self.predictor.history.push_load(load_pc)

    # -- probe ------------------------------------------------------------

    def probe(self, handle: DlvpFetchHandle, probe_cycle: int) -> None:
        """Speculatively probe the L1 with the queued predicted address.

        Fills ``handle.raw_probe_value`` on an L1 hit; launches a
        prefetch on a miss when enabled.  Way prediction: with a stale
        or absent way, the one-way probe misses even though the block is
        resident (counted, and the paper reports it almost never
        happens).
        """
        if handle.prediction is None or handle.lscd_blocked:
            return
        entry = self.paq.service(probe_cycle)
        if entry is None:
            handle.dropped = True
            handle.prediction = None
            return
        handle.probed = True
        self.stats.probes += 1
        hit, actual_way = self.hierarchy.probe_l1(entry.addr)
        if hit and self.config.way_prediction and entry.way is not None:
            if entry.way != actual_way:
                self.stats.way_mispredictions += 1
                hit = False
        if hit:
            self.stats.probe_hits += 1
            handle.probe_hit = True
            handle.raw_probe_value = self.image.read(entry.addr, _PROBE_BYTES)
        else:
            self.stats.probe_misses += 1
            if self.config.prefetch_on_miss:
                self.hierarchy.prefetch_fill(entry.addr)
                self.stats.prefetches += 1

    # -- value extraction ---------------------------------------------------

    def predicted_values(self, handle: DlvpFetchHandle, inst: Instruction) -> tuple[int, ...] | None:
        """Assemble per-destination values from the probed bytes.

        Returns None when no usable probe data exists or the load's
        footprint exceeds what the probe captured.
        """
        if handle.raw_probe_value is None:
            return None
        size = inst.mem_size
        if size * max(1, len(inst.dests)) > _PROBE_BYTES:
            return None
        mask = (1 << (8 * size)) - 1
        return tuple(
            (handle.raw_probe_value >> (8 * size * k)) & mask
            for k in range(len(inst.dests))
        )

    # -- execute --------------------------------------------------------

    def on_load_execute(
        self,
        handle: DlvpFetchHandle,
        inst: Instruction,
        actual_way: int | None,
        value_predicted: bool,
        predicted: tuple[int, ...] | None,
    ) -> DlvpOutcome:
        """Validate the prediction and train the predictor (Section 3.1.2).

        Args:
            handle: The fetch-time handle.
            inst: The executing load, with its computed address/values.
            actual_way: L1 way the block occupies after the demand
                access (trains way prediction).
            value_predicted: Whether the pipeline actually consumed a
                value prediction (it may have declined, e.g. PVT full).
            predicted: The values that were predicted, if any.
        """
        assert inst.mem_addr is not None
        self.stats.loads_seen += 1

        if handle.lscd_blocked:
            self.stats.lscd_blocked += 1
            return DlvpOutcome(
                value_predicted=False,
                value_correct=False,
                address_predicted=False,
                address_correct=False,
            )

        addr_predicted = handle.prediction is not None
        addr_correct = addr_predicted and handle.prediction.addr == inst.mem_addr
        if addr_predicted:
            self.stats.address_predictions += 1
            if addr_correct:
                self.stats.address_correct += 1

        # Train the address predictor with the executed load.
        if self._uses_pap:
            self.predictor.train(
                handle.apt_index,
                handle.apt_tag,
                inst.mem_addr,
                inst.mem_size,
                actual_way,
            )
        else:
            self.predictor.train(inst.pc, inst.mem_addr)

        value_correct = False
        if value_predicted:
            assert predicted is not None
            masked_actual = tuple(v & ((1 << (8 * inst.mem_size)) - 1) for v in inst.values)
            value_correct = predicted == masked_actual
            self.stats.value_predictions += 1
            if value_correct:
                self.stats.value_correct += 1
            elif addr_correct:
                # An in-flight store changed the location between the
                # probe and execution: exactly what LSCD filters.
                self.stats.inflight_conflicts += 1
                if self._lscd_enabled:
                    self.lscd.insert(inst.pc)

        return DlvpOutcome(
            value_predicted=value_predicted,
            value_correct=value_correct,
            address_predicted=addr_predicted,
            address_correct=addr_correct,
        )
