"""PAQ — the Predicted Address Queue.

Predicted addresses travel from the front-end into this FIFO in the
out-of-order engine; probes drain it opportunistically on load-store
lane bubbles.  An entry not serviced within ``drop_cycles`` of its
allocation is dropped — it can no longer deliver its value before the
load reaches rename, so probing would be wasted work.  A request may
bypass the queue entirely when it is empty (Section 3.2.2).
"""

from __future__ import annotations

from collections import deque


class PaqEntry:
    """One queued predicted address.

    ``bypass`` marks an entry that entered an *empty* queue: if it is
    subsequently serviced, its probe went straight through without
    waiting behind older predictions — the Section 3.2.2 bypass.  The
    flag is set by :meth:`PredictedAddressQueue.push` and only counted
    when the entry is actually serviced; an empty-queue entry that ages
    out or is flushed never bypassed anything.
    """

    __slots__ = ("addr", "size", "way", "allocated_cycle", "bypass")

    def __init__(
        self,
        addr: int,
        size: int,
        way: int | None,
        allocated_cycle: int,
        bypass: bool = False,
    ) -> None:
        self.addr = addr
        self.size = size
        self.way = way
        self.allocated_cycle = allocated_cycle
        self.bypass = bypass


class PredictedAddressQueue:
    """Bounded FIFO with age-based drop."""

    def __init__(self, entries: int = 32, drop_cycles: int = 4) -> None:
        if entries <= 0:
            raise ValueError("PAQ must have at least one entry")
        self.capacity = entries
        self.drop_cycles = drop_cycles
        self._queue: deque[PaqEntry] = deque()
        self.enqueued = 0
        self.dropped = 0
        self.rejected_full = 0
        self.serviced = 0
        self.bypassed = 0
        self.flushed = 0
        self._tracer = None

    def attach_tracer(self, tracer) -> None:
        """Opt into per-event instrumentation (see :mod:`repro.observe`)."""
        self._tracer = tracer

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def drop_rate(self) -> float:
        """Fraction of accepted entries that aged out (paper: <0.1%).

        Entries cleared by a pipeline flush never had the chance to be
        serviced, so they are excluded from the denominator — otherwise
        branchy workloads would artificially deflate the rate.
        """
        eligible = self.enqueued - self.flushed
        if eligible <= 0:
            return 0.0
        return self.dropped / eligible

    def push(self, entry: PaqEntry) -> bool:
        """Enqueue; returns False (and counts a rejection) when full.

        An entry entering an empty queue is only *marked* as a bypass
        candidate; ``bypassed`` is counted by :meth:`service` when the
        entry's probe actually issues, so entries that age out or are
        flushed before servicing never inflate the bypass count.
        """
        if len(self._queue) >= self.capacity:
            self.rejected_full += 1
            if self._tracer is not None:
                self._tracer.on_paq_reject(entry.allocated_cycle, entry.addr)
            return False
        entry.bypass = not self._queue
        self._queue.append(entry)
        self.enqueued += 1
        if self._tracer is not None:
            self._tracer.on_paq_enqueue(
                entry.allocated_cycle, entry.addr, len(self._queue)
            )
        return True

    def service(self, cycle: int) -> PaqEntry | None:
        """Pop the next serviceable entry at ``cycle``.

        Entries older than ``drop_cycles`` are discarded first; returns
        ``None`` when nothing remains to probe.
        """
        while self._queue:
            entry = self._queue.popleft()
            if cycle - entry.allocated_cycle > self.drop_cycles:
                self.dropped += 1
                if self._tracer is not None:
                    self._tracer.on_paq_drop(
                        cycle, entry.addr, cycle - entry.allocated_cycle
                    )
                continue
            self.serviced += 1
            if entry.bypass:
                self.bypassed += 1
            if self._tracer is not None:
                self._tracer.on_paq_service(cycle, entry.addr, entry.bypass)
            return entry
        return None

    def flush(self) -> None:
        """Drop everything (pipeline flush).

        Flushed entries are accounted separately from age-based drops so
        ``serviced + dropped + flushed + len(queue) == enqueued`` always
        holds.
        """
        cleared = len(self._queue)
        self.flushed += cleared
        self._queue.clear()
        if cleared and self._tracer is not None:
            self._tracer.on_paq_flush(cleared)
