"""VPE — Value Prediction Engine and the Predicted Values Table.

Section 3.2.1: rather than arbitrating for PRF write ports (Design #1)
or widening the PRF (Design #2), predicted values live in a small
dedicated 32-entry cache — the PVT — tagged by physical register number
(Design #3, the paper's choice).  A predicted bit per rename-map-table
entry steers consumers to the PVT; entries free when the predicted
instruction executes and validates.  A full PVT turns a prediction into
a no-prediction, which the paper reports "is almost never encountered".
"""

from __future__ import annotations

from dataclasses import dataclass


class PredictedValuesTable:
    """Occupancy model of the 32-entry PVT.

    The timing model allocates one entry per value-predicted destination
    register and tells us when the owning load executes; entries whose
    load has executed are reclaimed lazily as time advances.
    """

    def __init__(self, entries: int = 32, read_ports: int = 2, write_ports: int = 2) -> None:
        if entries <= 0:
            raise ValueError("PVT must have at least one entry")
        self.capacity = entries
        self.read_ports = read_ports
        self.write_ports = write_ports
        # (free_cycle, registers) pairs; plain tuples — one is created
        # per admitted prediction on the simulate() hot path.
        self._allocations: list[tuple[int, int]] = []
        self._occupied = 0
        self.writes = 0
        self.reads = 0
        self.allocation_failures = 0
        self.peak_occupancy = 0
        self._tracer = None

    def attach_tracer(self, tracer) -> None:
        """Opt into per-event instrumentation (see :mod:`repro.observe`)."""
        self._tracer = tracer

    def _reclaim(self, cycle: int) -> None:
        allocations = self._allocations
        if not allocations:
            return
        freed = 0
        for alloc in allocations:
            if alloc[0] <= cycle:
                freed += alloc[1]
        if freed:
            self._allocations = [a for a in allocations if a[0] > cycle]
            self._occupied -= freed

    def try_allocate(self, registers: int, cycle: int, free_cycle: int) -> bool:
        """Reserve ``registers`` entries from ``cycle`` until ``free_cycle``.

        Returns False (prediction becomes no-prediction) when the PVT
        cannot hold them.
        """
        if registers <= 0:
            raise ValueError("must allocate at least one register")
        self._reclaim(cycle)
        if self._occupied + registers > self.capacity:
            self.allocation_failures += 1
            if self._tracer is not None:
                self._tracer.on_pvt_reject(cycle, registers, self._occupied)
            return False
        occupied = self._occupied + registers
        self._occupied = occupied
        if occupied > self.peak_occupancy:
            self.peak_occupancy = occupied
        self._allocations.append((free_cycle, registers))
        self.writes += registers
        return True

    def note_consumer_read(self, registers: int = 1) -> None:
        """A consumer read predicted value(s) from the PVT."""
        self.reads += registers

    def occupancy(self, cycle: int) -> int:
        self._reclaim(cycle)
        return self._occupied

    def flush(self) -> None:
        """Pipeline flush deallocates everything speculative."""
        self._allocations.clear()
        self._occupied = 0


@dataclass
class VpeStats:
    value_predictions: int = 0
    value_correct: int = 0
    pvt_rejections: int = 0

    @property
    def value_mispredictions(self) -> int:
        return self.value_predictions - self.value_correct

    @property
    def value_accuracy(self) -> float:
        if not self.value_predictions:
            return 1.0
        return self.value_correct / self.value_predictions


class ValuePredictionEngine:
    """Bookkeeping shared by every value-prediction scheme.

    Owns the PVT and the per-run value-prediction outcome counters; the
    timing model funnels every scheme (DLVP, VTAGE, CAP-based DLVP,
    tournament) through one of these so accounting is uniform.
    """

    def __init__(self, pvt_entries: int = 32) -> None:
        self.pvt = PredictedValuesTable(entries=pvt_entries)
        self.stats = VpeStats()

    def attach_tracer(self, tracer) -> None:
        """Opt into per-event instrumentation (see :mod:`repro.observe`)."""
        self.pvt.attach_tracer(tracer)

    def admit(self, registers: int, cycle: int, free_cycle: int) -> bool:
        """Try to accept a value prediction into the PVT."""
        if self.pvt.try_allocate(registers, cycle, free_cycle):
            return True
        self.stats.pvt_rejections += 1
        return False

    def record_validation(self, correct: bool) -> None:
        self.stats.value_predictions += 1
        if correct:
            self.stats.value_correct += 1

    def flush(self) -> None:
        self.pvt.flush()
