"""DLVP configuration knobs (Sections 3.2.2 and 4.2)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.predictors.pap import PapConfig


@dataclass(frozen=True)
class DlvpConfig:
    """Everything DLVP-specific in one place.

    Attributes:
        pap: The PAP/APT configuration (Table 4: 1k entries, 16-bit
            load-path history).
        paq_entries: Predicted Address Queue capacity (Table 4: 32).
        paq_drop_cycles: N — a PAQ entry is dropped if not serviced
            within N cycles of allocation.  The paper derives N = 4 from
            a Cortex-A72-like front-end (fetch 5 + decode 3 cycles,
            minus 1 cycle each for prediction, transport and the
            way-predicted cache read); pipeline stalls only add slack.
        lscd_entries: Load-Store Conflict Detector capacity (4).
        pvt_entries: Predicted Values Table capacity (32).
        max_predictions_per_cycle: Address predictions per fetch group
            (2 — FGA and FGA+1; >98% of groups have at most 2 loads).
        prefetch_on_miss: Issue a prefetch when the probe misses L1.
        way_prediction: Probe only the predicted way (energy
            optimisation); a way mispredict is treated as a probe miss.
    """

    pap: PapConfig = field(default_factory=PapConfig)
    paq_entries: int = 32
    paq_drop_cycles: int = 4
    lscd_entries: int = 4
    pvt_entries: int = 32
    max_predictions_per_cycle: int = 2
    prefetch_on_miss: bool = True
    way_prediction: bool = True
