"""DLVP — Decoupled Load Value Prediction (Section 3.2.2).

The paper's microarchitecture: PAP predicts load addresses in the first
fetch stage; predicted addresses travel to the out-of-order engine
through the Predicted Address Queue (PAQ); on load-store lane bubbles
the L1 data cache is speculatively probed; a hit delivers the value(s)
to the Value Prediction Engine (VPE) by rename, a miss can launch a
prefetch.  The Load-Store Conflict Detector (LSCD) keeps loads that
race in-flight stores out of the scheme, and way prediction keeps the
probe's energy to one cache way.
"""

from repro.core.config import DlvpConfig
from repro.core.paq import PredictedAddressQueue, PaqEntry
from repro.core.lscd import LoadStoreConflictDetector
from repro.core.vpe import PredictedValuesTable, ValuePredictionEngine
from repro.core.dlvp import DlvpEngine, DlvpFetchHandle, DlvpStats

__all__ = [
    "DlvpConfig",
    "PredictedAddressQueue",
    "PaqEntry",
    "LoadStoreConflictDetector",
    "PredictedValuesTable",
    "ValuePredictionEngine",
    "DlvpEngine",
    "DlvpFetchHandle",
    "DlvpStats",
]
