"""LSCD — Load-Store Conflict Detector (Section 3.2.2).

A 4-entry FIFO filter of load PCs that were *address*-predicted
correctly yet *value*-mispredicted — the signature of an in-flight
store updating the location after the speculative probe.  Captured
loads are barred from being predicted and from updating the APT, so
their APT entries age out naturally.  LSCD is the special-purpose stand
-in for the back-end MDP, which is too tightly coupled to help the
front-end (Section 2.3).
"""

from __future__ import annotations

from collections import OrderedDict


class LoadStoreConflictDetector:
    """Tiny FIFO filter of conflict-prone load PCs."""

    def __init__(self, entries: int = 4) -> None:
        if entries <= 0:
            raise ValueError("LSCD must have at least one entry")
        self.capacity = entries
        self._pcs: OrderedDict[int, None] = OrderedDict()
        self.insertions = 0
        self.filtered = 0
        self._tracer = None

    def attach_tracer(self, tracer) -> None:
        """Opt into per-event instrumentation (see :mod:`repro.observe`)."""
        self._tracer = tracer

    def __contains__(self, pc: int) -> bool:
        return pc in self._pcs

    def __len__(self) -> int:
        return len(self._pcs)

    def blocks(self, pc: int) -> bool:
        """True when the load at ``pc`` must not predict or train."""
        blocked = pc in self._pcs
        if blocked:
            self.filtered += 1
            if self._tracer is not None:
                self._tracer.on_lscd_filter(pc)
        return blocked

    def insert(self, pc: int) -> None:
        """Record a conflicting load, evicting the oldest if full.

        Re-inserting a PC already present *refreshes* it (moves it to
        the youngest FIFO slot) rather than occupying a second entry.
        """
        if pc in self._pcs:
            self._pcs.move_to_end(pc)
            if self._tracer is not None:
                self._tracer.on_lscd_insert(pc, evicted=None, refreshed=True)
            return
        evicted = None
        if len(self._pcs) >= self.capacity:
            evicted, _ = self._pcs.popitem(last=False)
        self._pcs[pc] = None
        self.insertions += 1
        if self._tracer is not None:
            self._tracer.on_lscd_insert(pc, evicted=evicted, refreshed=False)

    def storage_bits(self, pc_bits: int = 32) -> int:
        return self.capacity * pc_bits
