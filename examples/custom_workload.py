#!/usr/bin/env python3
"""Write your own workload generator and evaluate it.

The WorkloadBuilder gives you an assembler-with-machine-state: loads
read the live memory image, so store->load conflicts in your kernel are
real.  This example builds a small "ring buffer logger" kernel by hand
and checks how each predictor fares on it.

Run:
    python examples/custom_workload.py
"""

from repro import DlvpScheme, VtageScheme, simulate
from repro.workloads import WorkloadBuilder


def ring_logger(builder: WorkloadBuilder, n_instructions: int,
                slots: int = 64) -> None:
    """Append log records to a ring; a reader tails the ring far behind.

    The reader's loads have per-slot static PCs (constant addresses —
    address-predictor friendly) but the writer refreshed each slot a
    full lap earlier (committed conflicts — value-table hostile).
    """
    ring = 0x900000
    r_val, r_sum = 5, 6
    i = 0
    while not builder.full(n_instructions):
        slot = i % slots
        pc = 0x50000 + slot * 0x40
        # Writer: fresh record into this slot.
        builder.store(pc, addr=ring + slot * 16,
                      value=builder.rng.getrandbits(48), size=8)
        # Reader: tail the oldest slot — written a full lap (~250
        # instructions) ago, safely committed before this load fetches.
        tail = (slot + 1) % slots
        builder.load(pc + 4, dests=(r_val,), addr=ring + tail * 16, size=8)
        builder.alu(pc + 8, r_sum, srcs=(r_sum, r_val))
        builder.branch(pc + 12, taken=bool(i % 7), target=0x50000,
                       srcs=(r_val,))
        i += 1


def main() -> None:
    builder = WorkloadBuilder("ring_logger", seed=11)
    ring_logger(builder, 16_000)
    trace = builder.build()
    print(f"built {len(trace)} instructions, "
          f"{trace.summary().loads} loads")

    baseline = simulate(trace)
    print(f"baseline IPC: {baseline.ipc:.2f}")
    for name, factory in (("dlvp", DlvpScheme), ("vtage", VtageScheme)):
        result = simulate(trace, scheme=factory())
        print(f"{name:>6}: speedup {result.speedup_over(baseline):+6.1%}  "
              f"coverage {result.value_coverage:5.1%}  "
              f"accuracy {result.value_accuracy:.2%}")
    print("\nThe reader's values change every lap, so VTAGE's tables are "
          "permanently stale; the addresses never change, so DLVP covers "
          "the reader outright.")


if __name__ == "__main__":
    main()
