#!/usr/bin/env python3
"""Quickstart — simulate one workload with and without DLVP.

Builds the perlbmk stand-in (the paper's biggest winner), runs the
baseline core and the DLVP-equipped core, and reports the headline
numbers: speedup, coverage, accuracy and what the LSCD filtered.

Run:
    python examples/quickstart.py
"""

from repro import DlvpScheme, build_workload, simulate


def main() -> None:
    trace = build_workload("perlbmk", n_instructions=20_000)
    summary = trace.summary()
    print(f"workload: {summary.name}")
    print(f"  {summary.instructions} instructions, {summary.loads} loads "
          f"({summary.load_fraction:.0%}), {summary.branches} branches")

    baseline = simulate(trace)
    print(f"\nbaseline:  {baseline.cycles} cycles, IPC {baseline.ipc:.2f}, "
          f"{baseline.branch_mispredictions} branch mispredictions")

    dlvp = simulate(trace, scheme=DlvpScheme())
    stats = dlvp.scheme_stats
    print(f"with DLVP: {dlvp.cycles} cycles, IPC {dlvp.ipc:.2f}")
    print(f"\nspeedup:            {dlvp.speedup_over(baseline):+.1%}")
    print(f"coverage:           {dlvp.value_coverage:.1%} of loads value-predicted")
    print(f"value accuracy:     {dlvp.value_accuracy:.2%}")
    print(f"address accuracy:   {stats.address_accuracy:.2%}")
    print(f"probe hit rate:     {stats.probe_hits}/{stats.probes}")
    print(f"LSCD filtered:      {stats.lscd_blocked} loads "
          f"(after {stats.inflight_conflicts} in-flight conflicts)")
    print(f"value flushes:      {dlvp.flushes.value}")


if __name__ == "__main__":
    main()
