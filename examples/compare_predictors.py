#!/usr/bin/env python3
"""Compare the paper's value-prediction schemes on chosen workloads.

Runs baseline, CAP-based DLVP, VTAGE, DLVP and the DLVP+VTAGE
tournament on a few workloads and prints a Figure 6a-style table.

Run:
    python examples/compare_predictors.py [workload ...]
"""

import sys

from repro import (
    DlvpScheme,
    TournamentScheme,
    VtageScheme,
    build_workload,
    simulate,
)
from repro.experiments.runner import format_table
from repro.predictors import CapConfig

DEFAULT_WORKLOADS = ["perlbmk", "nat", "aifirf", "vortex", "gzip"]

SCHEMES = {
    "cap": lambda: DlvpScheme(use_cap=True,
                              cap_config=CapConfig(confidence_threshold=24)),
    "vtage": VtageScheme,
    "dlvp": DlvpScheme,
    "tournament": TournamentScheme,
}


def main() -> None:
    names = sys.argv[1:] or DEFAULT_WORKLOADS
    rows = []
    for name in names:
        trace = build_workload(name, n_instructions=16_000)
        baseline = simulate(trace)
        cells = [name]
        for factory in SCHEMES.values():
            result = simulate(trace, scheme=factory())
            cells.append(
                f"{result.speedup_over(baseline):+6.1%}/"
                f"{result.value_coverage:5.1%}"
            )
        rows.append(cells)
    print("speedup / coverage per scheme")
    print(format_table(["workload", *SCHEMES], rows))


if __name__ == "__main__":
    main()
