#!/usr/bin/env python3
"""Area/energy analysis (Table 2, Figures 6c and 6d).

Prints the PVT design comparison, the predictor cost comparison, and a
measured normalized-core-energy row for a few workloads.

Run:
    python examples/energy_report.py
"""

from repro import (
    DlvpScheme,
    VtageScheme,
    build_workload,
    normalized_core_energy,
    predictor_cost_table,
    pvt_design_table,
    simulate,
)
from repro.experiments.runner import format_table


def main() -> None:
    print("Table 2 — PVT designs (normalized to Design #1)")
    rows = [
        [d.name, f"{d.area:.2f}", f"{d.read_energy:.2f}", f"{d.write_energy:.2f}"]
        for d in pvt_design_table().values()
    ]
    print(format_table(["design", "area", "read", "write"], rows))

    print("\nFigure 6d — predictor costs (normalized to PAP)")
    rows = [
        [c.name, f"{c.storage_bits}", f"{c.area:.2f}", f"{c.read_energy:.2f}",
         f"{c.write_energy:.2f}"]
        for c in predictor_cost_table().values()
    ]
    print(format_table(["predictor", "bits", "area", "read", "write"], rows))

    print("\nFigure 6c — normalized core energy (measured)")
    rows = []
    for name in ("perlbmk", "vortex", "gzip", "nat"):
        trace = build_workload(name, n_instructions=12_000)
        baseline = simulate(trace)
        cells = [name]
        for scheme in (DlvpScheme, VtageScheme):
            result = simulate(trace, scheme=scheme())
            cells.append(f"{normalized_core_energy(result, baseline):.3f}")
        rows.append(cells)
    print(format_table(["workload", "dlvp", "vtage"], rows))
    print("\nDLVP probes the cache twice per predicted load, but the "
          "cycles it saves pay the bill — the paper's 'without increasing "
          "the core energy consumption'.")


if __name__ == "__main__":
    main()
