#!/usr/bin/env python3
"""The paper's motivating problem, end to end.

Section 1 / Figure 1: stores change memory, so a classical value
predictor's tables go stale, while DLVP reads the *current* committed
value from the data cache.  This example builds a workload dominated by
committed store->load conflicts (the flag-ring kernel behind our
perlbmk), profiles its conflicts, and shows a last-value predictor
drowning where DLVP stays accurate.

Run:
    python examples/conflicting_stores.py
"""

from repro import DlvpScheme, build_workload, simulate
from repro.predictors import LastValuePredictor
from repro.trace import load_store_conflicts


def main() -> None:
    trace = build_workload("perlbmk", n_instructions=16_000)

    # 1. Profile the conflicts (Figure 1's analysis).
    profile = load_store_conflicts(trace, window=64)
    print("load-store conflict profile:")
    print(f"  loads:               {profile.total_loads}")
    print(f"  conflicting:         {profile.fraction_conflicting:.1%}")
    print(f"  ... with committed stores: {profile.fraction_committed:.1%}")
    print(f"  ... with in-flight stores: {profile.fraction_inflight:.1%}")

    # 2. A last-value predictor on the same loads: every committed
    # conflict is a stale-table misprediction or a retrain.
    lvp = LastValuePredictor()
    for inst in trace:
        if inst.is_load:
            lvp.train(inst)
    print("\nlast-value predictor (stale tables):")
    print(f"  coverage:  {lvp.stats.coverage:.1%}")
    print(f"  accuracy:  {lvp.stats.accuracy:.2%}")
    print(f"  mispredictions: {lvp.stats.mispredictions}")

    # 3. DLVP reads the committed value from the cache instead.
    baseline = simulate(trace)
    dlvp = simulate(trace, scheme=DlvpScheme())
    print("\nDLVP (cache as the data store):")
    print(f"  coverage:  {dlvp.value_coverage:.1%}")
    print(f"  accuracy:  {dlvp.value_accuracy:.2%}")
    print(f"  speedup:   {dlvp.speedup_over(baseline):+.1%}")
    print("\nSame conflicts, opposite outcomes: the committed-store "
          "conflicts that poison value tables are invisible to a cache "
          "probe.")


if __name__ == "__main__":
    main()
