"""Tests for fetch-group arithmetic and the register model."""

import pytest

from repro.isa import (
    FETCH_GROUP_BYTES,
    FETCH_GROUP_INSTRUCTIONS,
    INSTRUCTION_BYTES,
    NUM_GENERAL_REGS,
    REG_LR,
    REG_SP,
    RegisterFile,
    fetch_group_address,
    fetch_group_slot,
    general_reg,
    vector_reg,
)
from repro.isa.fetch import path_history_bit
from repro.isa.registers import is_vector_reg


class TestFetchGroups:
    def test_group_size(self):
        assert FETCH_GROUP_BYTES == FETCH_GROUP_INSTRUCTIONS * INSTRUCTION_BYTES

    def test_aligned_pc_is_its_own_group(self):
        assert fetch_group_address(0x1000) == 0x1000

    def test_group_members_share_address(self):
        base = fetch_group_address(0x1234)
        for slot in range(FETCH_GROUP_INSTRUCTIONS):
            assert fetch_group_address(base + 4 * slot) == base

    def test_slots_enumerate(self):
        base = 0x2000
        slots = [fetch_group_slot(base + 4 * i) for i in range(4)]
        assert slots == [0, 1, 2, 3]

    def test_next_group_starts_at_slot_zero(self):
        assert fetch_group_slot(0x2000 + FETCH_GROUP_BYTES) == 0

    def test_path_history_bit_is_bit_two(self):
        assert path_history_bit(0x1000) == 0
        assert path_history_bit(0x1004) == 1
        assert path_history_bit(0x1008) == 0
        assert path_history_bit(0x100C) == 1


class TestRegisters:
    def test_general_reg_identity(self):
        assert general_reg(5) == 5

    def test_general_reg_bounds(self):
        with pytest.raises(ValueError):
            general_reg(NUM_GENERAL_REGS)
        with pytest.raises(ValueError):
            general_reg(-1)

    def test_vector_regs_disjoint_from_general(self):
        general = {general_reg(i) for i in range(NUM_GENERAL_REGS)}
        vectors = {vector_reg(i) for i in range(8)}
        assert not general & vectors

    def test_is_vector_reg(self):
        assert is_vector_reg(vector_reg(0))
        assert not is_vector_reg(general_reg(0))

    def test_special_registers_in_range(self):
        assert 0 <= REG_SP < NUM_GENERAL_REGS
        assert 0 <= REG_LR < NUM_GENERAL_REGS


class TestRegisterFile:
    def test_unwritten_reads_zero(self):
        assert RegisterFile().read(3) == 0

    def test_write_read_roundtrip(self):
        rf = RegisterFile()
        rf.write(7, 12345)
        assert rf.read(7) == 12345

    def test_values_truncated_to_64_bits(self):
        rf = RegisterFile()
        rf.write(1, 1 << 80)
        assert rf.read(1) == 0

    def test_snapshot_is_a_copy(self):
        rf = RegisterFile()
        rf.write(2, 9)
        snap = rf.snapshot()
        rf.write(2, 10)
        assert snap[2] == 9
