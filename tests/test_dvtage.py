"""Tests for the D-VTAGE differential value predictor."""

import pytest

from repro.isa import Instruction, OpClass
from repro.predictors import DvtageConfig, DvtagePredictor


def load(pc=0x1000, value=42, dests=(1,)):
    return Instruction(pc=pc, op=OpClass.LOAD, dests=dests, mem_addr=0x2000,
                       mem_size=8, values=(value,) if len(dests) == 1
                       else tuple(value for _ in dests))


def train_until(p, values, history=0):
    first = None
    for i, v in enumerate(values):
        pred = p.train(load(value=v), history)
        if pred is not None and first is None:
            first = i
    return first


class TestPrediction:
    def test_learns_constant(self):
        p = DvtagePredictor()
        first = train_until(p, [42] * 600)
        assert first is not None
        assert p.predict(load(), 0) == 42

    def test_learns_stride(self):
        """The whole point of D-VTAGE vs VTAGE: strided value sequences."""
        p = DvtagePredictor()
        values = [100 + 8 * i for i in range(600)]
        first = train_until(p, values)
        assert first is not None
        assert p.stats.accuracy == 1.0

    def test_vtage_cannot_learn_the_same_stride(self):
        from repro.predictors import VtagePredictor
        v = VtagePredictor()
        predicted = 0
        for i in range(600):
            if v.train(load(value=100 + 8 * i), 0) is not None:
                predicted += 1
        assert predicted == 0

    def test_negative_stride(self):
        p = DvtagePredictor()
        values = [100_000 - 4 * i for i in range(600)]
        assert train_until(p, values) is not None
        assert p.stats.accuracy > 0.99

    def test_wide_stride_not_representable(self):
        """Strides beyond the 16-bit field cannot be stored."""
        p = DvtagePredictor()
        values = [(1 << 40) * i for i in range(400)]
        assert train_until(p, values) is None

    def test_stride_change_resets_confidence(self):
        p = DvtagePredictor()
        train_until(p, [10 + 2 * i for i in range(500)])
        p.train(load(value=99_999), 0)
        p.train(load(value=99_999 + 7), 0)
        assert p.predict(load(value=0), 0) is None


class TestEligibility:
    def test_multi_dest_filtered(self):
        p = DvtagePredictor()
        assert not p.eligible(load(dests=(1, 2)))

    def test_loads_seen_counts_everything(self):
        p = DvtagePredictor()
        p.train(load(dests=(1, 2)), 0)
        assert p.stats.loads_seen == 1
        assert p.stats.predictions == 0

    def test_unfiltered_config(self):
        p = DvtagePredictor(DvtageConfig(static_filter=False))
        assert p.eligible(load(dests=(1, 2))) is False   # still 1-dest only


class TestConfig:
    def test_storage_budget_in_8kb_class(self):
        bits = DvtagePredictor().storage_bits()
        assert 30_000 < bits < 70_000

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            DvtageConfig(lvt_entries=100)
        with pytest.raises(ValueError):
            DvtageConfig(table_entries=100)

    def test_prediction_latency_charged(self):
        assert DvtageConfig().prediction_latency == 1


class TestHistoryContexts:
    def test_different_histories_use_different_strides(self):
        p = DvtagePredictor()
        # Context A strides by 4, context B strides by 12; the LVT is
        # shared, so the *stride* tables must disambiguate.
        value = 0
        for i in range(2000):
            if i % 2 == 0:
                value += 4
                p.train(load(value=value), history=0b10101)
            else:
                value += 12
                p.train(load(value=value), history=0b01010)
        correct = p.stats.correct
        assert p.stats.predictions > 50
        assert correct / p.stats.predictions > 0.9
