"""Tests for PAQ, LSCD and the PVT/VPE."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    LoadStoreConflictDetector,
    PaqEntry,
    PredictedAddressQueue,
    PredictedValuesTable,
    ValuePredictionEngine,
)


def entry(addr=0x1000, cycle=0):
    return PaqEntry(addr=addr, size=8, way=0, allocated_cycle=cycle)


class TestPaq:
    def test_fifo_order(self):
        paq = PredictedAddressQueue()
        paq.push(entry(addr=0x1000))
        paq.push(entry(addr=0x2000))
        assert paq.service(0).addr == 0x1000
        assert paq.service(0).addr == 0x2000

    def test_capacity_rejection(self):
        paq = PredictedAddressQueue(entries=2)
        assert paq.push(entry())
        assert paq.push(entry())
        assert not paq.push(entry())
        assert paq.rejected_full == 1

    def test_age_based_drop(self):
        paq = PredictedAddressQueue(drop_cycles=4)
        paq.push(entry(cycle=0))
        assert paq.service(10) is None
        assert paq.dropped == 1

    def test_entry_within_window_survives(self):
        paq = PredictedAddressQueue(drop_cycles=4)
        paq.push(entry(cycle=0))
        assert paq.service(4) is not None

    def test_drop_rate(self):
        paq = PredictedAddressQueue(drop_cycles=1)
        paq.push(entry(cycle=0))
        paq.push(entry(cycle=0))
        paq.service(0)
        paq.service(100)
        assert paq.drop_rate == 0.5

    def test_bypass_counted_only_when_serviced(self):
        # Regression: push() used to count `bypassed` for every enqueue
        # into an empty queue, even if the entry later aged out or was
        # flushed — a probe that never issued can't have bypassed the
        # queue.  The bypass is real only once the entry is serviced.
        paq = PredictedAddressQueue()
        paq.push(entry())
        assert paq.bypassed == 0        # not yet serviced
        paq.service(0)
        assert paq.bypassed == 1

    def test_bypass_not_counted_for_flushed_entry(self):
        paq = PredictedAddressQueue()
        paq.push(entry())               # empty-queue enqueue...
        paq.flush()                     # ...but the probe never issues
        assert paq.bypassed == 0

    def test_bypass_not_counted_for_dropped_entry(self):
        paq = PredictedAddressQueue(drop_cycles=2)
        paq.push(entry(cycle=0))
        assert paq.service(50) is None  # ages out
        assert paq.bypassed == 0

    def test_bypass_not_counted_for_non_empty_enqueue(self):
        paq = PredictedAddressQueue()
        paq.push(entry(addr=0x1000))
        paq.push(entry(addr=0x2000))    # queue non-empty: no bypass
        paq.service(0)
        paq.service(0)
        assert paq.bypassed == 1        # only the first entry

    def test_flush_empties(self):
        paq = PredictedAddressQueue()
        paq.push(entry())
        paq.flush()
        assert paq.service(0) is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PredictedAddressQueue(entries=0)

    def test_flush_counts_separately_from_drops(self):
        paq = PredictedAddressQueue()
        paq.push(entry())
        paq.push(entry())
        paq.flush()
        assert paq.flushed == 2
        assert paq.dropped == 0
        assert paq.serviced == 0

    def test_flushed_excluded_from_drop_rate(self):
        # 2 accepted, 1 serviced, 1 flushed: the flushed entry never had
        # a chance to be serviced, so the drop rate must stay 0 — the
        # old accounting would have reported 0/2 anyway, but with a
        # later age-out it skewed to dropped/(enqueued) instead of
        # dropped/(enqueued - flushed).
        paq = PredictedAddressQueue(drop_cycles=1)
        paq.push(entry(cycle=0))
        paq.service(0)
        paq.push(entry(cycle=0))
        paq.flush()
        assert paq.drop_rate == 0.0
        paq.push(entry(cycle=10))
        paq.push(entry(cycle=10))
        paq.service(10)
        paq.service(100)          # ages out -> dropped
        assert paq.drop_rate == pytest.approx(1 / 3)  # 1 of 3 eligible

    def test_conservation_invariant_after_flush(self):
        paq = PredictedAddressQueue(entries=4, drop_cycles=2)
        paq.push(entry(cycle=0))
        paq.push(entry(cycle=0))
        paq.service(1)
        paq.flush()
        paq.push(entry(cycle=5))
        paq.push(entry(cycle=5))
        paq.service(50)           # drops both stale entries, returns None
        paq.push(entry(cycle=60))
        assert (paq.serviced + paq.dropped + paq.flushed + len(paq)
                == paq.enqueued)

    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=60))
    def test_occupancy_bounded(self, cycles):
        paq = PredictedAddressQueue(entries=8)
        for c in cycles:
            paq.push(entry(cycle=c))
            assert len(paq) <= 8

    @given(st.lists(
        st.tuples(st.sampled_from(["push", "service", "flush"]),
                  st.integers(min_value=0, max_value=40)),
        max_size=80,
    ))
    def test_conservation_invariant_holds_always(self, ops):
        # serviced + dropped + flushed + len(queue) == enqueued after
        # every operation, for any interleaving of pushes, services
        # (with arbitrary cycle gaps -> age-based drops) and flushes.
        paq = PredictedAddressQueue(entries=4, drop_cycles=3)
        for op, cycle in ops:
            if op == "push":
                paq.push(entry(cycle=cycle))
            elif op == "service":
                paq.service(cycle)
            else:
                paq.flush()
            assert (paq.serviced + paq.dropped + paq.flushed + len(paq)
                    == paq.enqueued)
            # bypass accounting rides the same conservation: a bypass
            # is a *serviced* entry that entered an empty queue, so it
            # can never exceed the serviced count.
            assert 0 <= paq.bypassed <= paq.serviced


class TestLscd:
    def test_blocks_after_insert(self):
        lscd = LoadStoreConflictDetector()
        lscd.insert(0x1000)
        assert lscd.blocks(0x1000)
        assert 0x1000 in lscd

    def test_unknown_pc_not_blocked(self):
        assert not LoadStoreConflictDetector().blocks(0x1234)

    def test_fifo_eviction(self):
        lscd = LoadStoreConflictDetector(entries=2)
        lscd.insert(0x1)
        lscd.insert(0x2)
        lscd.insert(0x3)
        assert not lscd.blocks(0x1)
        assert lscd.blocks(0x2)
        assert lscd.blocks(0x3)

    def test_reinsert_refreshes(self):
        lscd = LoadStoreConflictDetector(entries=2)
        lscd.insert(0x1)
        lscd.insert(0x2)
        lscd.insert(0x1)        # refresh: 0x1 is now youngest
        lscd.insert(0x3)        # evicts 0x2
        assert lscd.blocks(0x1)
        assert not lscd.blocks(0x2)

    def test_filtered_counter(self):
        lscd = LoadStoreConflictDetector()
        lscd.insert(0x1)
        lscd.blocks(0x1)
        lscd.blocks(0x1)
        assert lscd.filtered == 2

    def test_paper_capacity_default(self):
        assert LoadStoreConflictDetector().capacity == 4

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LoadStoreConflictDetector(entries=0)

    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=80))
    def test_fifo_eviction_order_matches_model(self, pcs):
        # Reference model: an ordered list where re-insertion moves the
        # PC to the back (youngest) and overflow evicts the front
        # (oldest).  The LSCD must agree on membership after any
        # insertion sequence.
        lscd = LoadStoreConflictDetector(entries=4)
        model: list[int] = []
        for pc in pcs:
            if pc in model:
                model.remove(pc)
            elif len(model) >= 4:
                model.pop(0)
            model.append(pc)
            lscd.insert(pc)
            assert len(lscd) == len(model) <= 4
            for known in model:
                assert known in lscd
        blocked = [pc for pc in range(10) if lscd.blocks(pc)]
        assert blocked == sorted(model)

    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=80))
    def test_reinsert_never_double_occupies(self, pcs):
        lscd = LoadStoreConflictDetector(entries=4)
        for pc in pcs:
            lscd.insert(pc)
            assert len(lscd) <= 4
        # every present PC appears exactly once: refreshing an existing
        # PC must not consume a second slot
        assert len({pc for pc in range(10) if pc in lscd}) == len(lscd)

    def test_tracer_events_on_insert_and_filter(self):
        from repro.observe import Tracer

        class Recorder(Tracer):
            def __init__(self):
                self.events = []

            def emit(self, kind, **fields):
                self.events.append((kind, fields))

        rec = Recorder()
        lscd = LoadStoreConflictDetector(entries=2)
        lscd.attach_tracer(rec)
        lscd.insert(0x1)
        lscd.insert(0x2)
        lscd.insert(0x1)            # refresh
        lscd.insert(0x3)            # evicts 0x2 (0x1 was refreshed)
        lscd.blocks(0x3)
        lscd.blocks(0x999)          # not present: no event
        kinds = [k for k, _ in rec.events]
        assert kinds == ["lscd_insert"] * 4 + ["lscd_filter"]
        inserts = [f for k, f in rec.events if k == "lscd_insert"]
        assert inserts[2] == {"pc": 0x1, "evicted": None, "refreshed": True}
        assert inserts[3] == {"pc": 0x3, "evicted": 0x2, "refreshed": False}
        assert rec.events[-1] == ("lscd_filter", {"pc": 0x3})


class TestPvt:
    def test_allocate_and_reclaim(self):
        pvt = PredictedValuesTable(entries=4)
        assert pvt.try_allocate(2, cycle=0, free_cycle=10)
        assert pvt.occupancy(5) == 2
        assert pvt.occupancy(10) == 0

    def test_capacity_enforced(self):
        pvt = PredictedValuesTable(entries=4)
        assert pvt.try_allocate(3, 0, 100)
        assert not pvt.try_allocate(2, 1, 100)
        assert pvt.allocation_failures == 1

    def test_reclaim_frees_capacity(self):
        pvt = PredictedValuesTable(entries=4)
        pvt.try_allocate(4, 0, 5)
        assert pvt.try_allocate(4, 6, 20)

    def test_flush_clears(self):
        pvt = PredictedValuesTable(entries=4)
        pvt.try_allocate(4, 0, 1000)
        pvt.flush()
        assert pvt.occupancy(1) == 0

    def test_peak_occupancy_tracked(self):
        pvt = PredictedValuesTable(entries=8)
        pvt.try_allocate(3, 0, 100)
        pvt.try_allocate(4, 1, 100)
        assert pvt.peak_occupancy == 7

    def test_write_read_counters(self):
        pvt = PredictedValuesTable()
        pvt.try_allocate(2, 0, 10)
        pvt.note_consumer_read(2)
        assert pvt.writes == 2
        assert pvt.reads == 2

    def test_invalid_allocation(self):
        with pytest.raises(ValueError):
            PredictedValuesTable().try_allocate(0, 0, 1)

    def test_paper_dimensions(self):
        pvt = PredictedValuesTable()
        assert pvt.capacity == 32
        assert pvt.read_ports == 2
        assert pvt.write_ports == 2


class TestVpe:
    def test_admit_and_validate(self):
        vpe = ValuePredictionEngine()
        assert vpe.admit(1, cycle=0, free_cycle=10)
        vpe.record_validation(True)
        vpe.record_validation(False)
        assert vpe.stats.value_predictions == 2
        assert vpe.stats.value_correct == 1
        assert vpe.stats.value_mispredictions == 1
        assert vpe.stats.value_accuracy == 0.5

    def test_full_pvt_rejects(self):
        vpe = ValuePredictionEngine(pvt_entries=1)
        assert vpe.admit(1, 0, 1000)
        assert not vpe.admit(1, 1, 1000)
        assert vpe.stats.pvt_rejections == 1

    def test_flush_clears_pvt(self):
        vpe = ValuePredictionEngine(pvt_entries=1)
        vpe.admit(1, 0, 1000)
        vpe.flush()
        assert vpe.admit(1, 1, 1000)
