"""Documentation hygiene: every public module, class and function in
the library carries a docstring (the public API is the product)."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.split(".")[-1].startswith("_")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue            # re-exports are documented at home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                missing.append(name)
    assert not missing, f"{module_name}: undocumented public items {missing}"


def test_top_level_docs_exist():
    from pathlib import Path
    root = Path(repro.__file__).resolve().parents[2]
    for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = root / doc
        assert path.exists(), doc
        assert len(path.read_text()) > 1000, doc
